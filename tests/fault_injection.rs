//! End-to-end tests for the fault-injection → conformance → replay loop
//! over the X.1373 case study, driven by the *shipped* example artefacts in
//! `examples/faults/` — the same files the README walkthrough, the docs and
//! the CI `fault-matrix` job use, so these tests keep all of them honest.

use auto_csp::canoe_sim::{CaplValue, Simulation, TraceEvent};
use auto_csp::faults::conformance::{check_conformance, ConformanceVerdict};
use auto_csp::faults::replay::{counterexample_to_json, replay, ReplayConfig, ReplayFile};
use auto_csp::faults::{apply_plan, FaultPlan};
use auto_csp::fdrlite::{Checker, Verdict};
use auto_csp::{candb, capl, cspm, ota};

const NET_DBC: &str = include_str!("../examples/faults/net.dbc");
const VMG_CAN: &str = include_str!("../examples/faults/vmg.can");
const ECU_CAN: &str = include_str!("../examples/faults/ecu.can");
const ECU_HARDENED_CAN: &str = include_str!("../examples/faults/ecu_hardened.can");
const OTA_MODEL: &str = include_str!("../examples/faults/ota_model.csp");
const BASELINE_PLAN: &str = include_str!("../examples/faults/baseline.toml");
const REPLAY_ATTACK_PLAN: &str = include_str!("../examples/faults/replay_attack.toml");
const REPLAY_MODELLED_PLAN: &str = include_str!("../examples/faults/replay_attack_modelled.toml");
const CHAOS_PLAN: &str = include_str!("../examples/faults/chaos.toml");

fn plan(src: &str) -> FaultPlan {
    FaultPlan::parse(src).expect("example plan parses")
}

/// The VMG + ECU update network with a fault plan installed; runs one
/// session (plus the attack tail) and returns the simulation.
fn run_session(plan_src: &str, seed: Option<u64>) -> Simulation {
    let db = candb::parse(NET_DBC).expect("example database parses");
    let mut sim = Simulation::new(Some(db));
    sim.add_node("VMG", capl::parse(VMG_CAN).unwrap()).unwrap();
    sim.add_node("ECU", capl::parse(ECU_CAN).unwrap()).unwrap();
    apply_plan(&mut sim, &plan(plan_src), seed).unwrap();
    sim.run_for(100_000).unwrap();
    sim
}

#[test]
fn example_database_matches_the_embedded_network() {
    // The standalone `.dbc` must agree with `ota::messages::NETWORK_DBC`
    // on the update-path messages, or the examples would drift from the
    // case study the rest of the repo reasons about.
    let example = candb::parse(NET_DBC).unwrap();
    let embedded = ota::messages::database();
    for name in ["reqSw", "reqApp", "rptSw", "rptUpd"] {
        let a = example.message_by_name(name).expect(name);
        let b = embedded.message_by_name(name).expect(name);
        assert_eq!(a.id, b.id, "{name}: example/embedded id mismatch");
        assert_eq!(a.dlc, b.dlc, "{name}: example/embedded dlc mismatch");
    }
}

#[test]
fn replay_attack_applies_the_update_twice() {
    let sim = run_session(BASELINE_PLAN, None);
    assert_eq!(
        sim.node_global("ECU", "updatesApplied").unwrap(),
        Some(CaplValue::Int(1)),
        "baseline: one session applies one update"
    );

    let sim = run_session(REPLAY_ATTACK_PLAN, None);
    assert_eq!(
        sim.node_global("ECU", "updatesApplied").unwrap(),
        Some(CaplValue::Int(2)),
        "replayed reqApp must be applied again by the unprotected ECU"
    );
    // The injected fault is visible and attributable in the trace.
    assert!(
        sim.trace()
            .iter()
            .any(|e| e.event.fault_name() == Some("replay-reqApp")),
        "the fault engine must tag its action in the trace"
    );
}

#[test]
fn same_plan_and_seed_give_identical_traces() {
    // The chaos plan uses every randomness source the engine has
    // (probability triggers, delay jitter); determinism must still hold.
    let a = run_session(CHAOS_PLAN, None);
    let b = run_session(CHAOS_PLAN, None);
    assert_eq!(a.trace(), b.trace(), "same plan + seed ⇒ identical trace");

    // And the seed actually matters: an override diverges.
    let c = run_session(CHAOS_PLAN, Some(99));
    assert_ne!(a.trace(), c.trace(), "different seed ⇒ different run");
    // …but is just as deterministic.
    let d = run_session(CHAOS_PLAN, Some(99));
    assert_eq!(c.trace(), d.trace());
}

#[test]
fn conformance_passes_honest_and_flags_the_attack() {
    let loaded = cspm::Script::parse(OTA_MODEL).unwrap().load().unwrap();
    let checker = Checker::new();

    // Baseline traffic is a trace of the honest session model.
    let sim = run_session(BASELINE_PLAN, None);
    let conf = plan(BASELINE_PLAN).conformance.unwrap();
    let report = check_conformance(&loaded, &conf, sim.trace(), &checker).unwrap();
    assert!(
        report.verdict.is_conformant(),
        "baseline must conform to HONEST: {:?}",
        report.verdict
    );
    assert_eq!(
        report.events,
        ["rec.reqSw", "send.rptSw", "rec.reqApp", "send.rptUpd"],
        "lifted honest session"
    );

    // The replay attack is refuted by the honest model…
    let sim = run_session(REPLAY_ATTACK_PLAN, None);
    let conf = plan(REPLAY_ATTACK_PLAN).conformance.unwrap();
    let report = check_conformance(&loaded, &conf, sim.trace(), &checker).unwrap();
    assert!(
        matches!(report.verdict, ConformanceVerdict::Refuted(_)),
        "HONEST must refute the replayed session: {:?}",
        report.verdict
    );

    // …and admitted by the implementation-with-attacker model.
    let conf = plan(REPLAY_MODELLED_PLAN).conformance.unwrap();
    let report = check_conformance(&loaded, &conf, sim.trace(), &checker).unwrap();
    assert!(
        report.verdict.is_conformant(),
        "ATTACKED must admit the replayed session: {:?}",
        report.verdict
    );
}

#[test]
fn model_counterexample_replays_on_the_unprotected_ecu_only() {
    // Check the model: SINGLE_UPDATE [T= ATTACKED fails with the replay
    // trace as witness.
    let loaded = cspm::Script::parse(OTA_MODEL).unwrap().load().unwrap();
    let results = loaded.check(&Checker::new()).unwrap();
    let failed: Vec<_> = results
        .iter()
        .filter_map(|r| match &r.verdict {
            Verdict::Fail(cex) => Some((r.description.as_str(), cex)),
            _ => None,
        })
        .collect();
    let [(description, cex)] = failed.as_slice() else {
        panic!("expected exactly one failing assertion, got {failed:?}");
    };
    assert!(description.contains("ATTACKED"), "{description}");

    // Serialise the counterexample exactly as `autocsp check --cex-json`
    // does, and parse it back as `autocsp replay` would.
    let json = counterexample_to_json(description, cex, loaded.alphabet());
    let file = ReplayFile::parse(&json).unwrap();
    assert_eq!(file.kind, "trace-violation");
    assert_eq!(
        file.events,
        [
            "rec.reqSw",
            "send.rptSw",
            "rec.reqApp",
            "send.rptUpd",
            "rec.reqApp",
            "send.rptUpd"
        ]
    );

    // Replaying it against the unprotected ECU reproduces the violation on
    // the simulated bus: the second (replayed) reqApp is applied again.
    let db = candb::parse(NET_DBC).unwrap();
    let mut sim = Simulation::new(Some(db.clone()));
    sim.add_node("ECU", capl::parse(ECU_CAN).unwrap()).unwrap();
    let outcome = replay(&mut sim, &db, &file.events, &ReplayConfig::for_node("ECU")).unwrap();
    assert_eq!(outcome.injected, ["reqSw", "reqApp", "reqApp"]);
    assert_eq!(outcome.expected, ["rptSw", "rptUpd", "rptUpd"]);
    assert!(outcome.reproduced, "{outcome:?}");
    assert_eq!(
        sim.node_global("ECU", "updatesApplied").unwrap(),
        Some(CaplValue::Int(2))
    );

    // The hardened ECU (freshness guard standing in for the MAC check)
    // refuses the replay: the same counterexample does NOT reproduce.
    let mut sim = Simulation::new(Some(db.clone()));
    sim.add_node("ECU", capl::parse(ECU_HARDENED_CAN).unwrap())
        .unwrap();
    let outcome = replay(&mut sim, &db, &file.events, &ReplayConfig::for_node("ECU")).unwrap();
    assert!(!outcome.reproduced, "{outcome:?}");
    assert_eq!(outcome.observed, ["rptSw", "rptUpd"]);
    assert_eq!(
        sim.node_global("ECU", "updatesApplied").unwrap(),
        Some(CaplValue::Int(1))
    );
}

#[test]
fn hardened_ecu_stays_conformant_under_the_attack() {
    // Run the hardened ECU under the very same attack plan: the replayed
    // frame still reaches it (the wire cannot hide a delivery) but is
    // never acted on, so the update path stays safe.
    let db = candb::parse(NET_DBC).unwrap();
    let mut sim = Simulation::new(Some(db));
    sim.add_node("VMG", capl::parse(VMG_CAN).unwrap()).unwrap();
    sim.add_node("ECU", capl::parse(ECU_HARDENED_CAN).unwrap())
        .unwrap();
    apply_plan(&mut sim, &plan(REPLAY_ATTACK_PLAN), None).unwrap();
    sim.run_for(100_000).unwrap();
    assert_eq!(
        sim.node_global("ECU", "updatesApplied").unwrap(),
        Some(CaplValue::Int(1)),
        "hardened ECU must not re-apply the replayed update"
    );
    // No second rptUpd ever goes on the bus.
    let updates = sim
        .trace()
        .iter()
        .filter(|e| matches!(&e.event, TraceEvent::Transmit { message, .. } if message == "rptUpd"))
        .count();
    assert_eq!(updates, 1);

    // And the lifted trace (⟨…, rec.reqApp⟩ — the replayed frame is still
    // *delivered*, just never answered) conforms to the attacked model.
    let loaded = cspm::Script::parse(OTA_MODEL).unwrap().load().unwrap();
    let conf = plan(REPLAY_MODELLED_PLAN).conformance.unwrap();
    let report = check_conformance(&loaded, &conf, sim.trace(), &Checker::new()).unwrap();
    assert!(report.verdict.is_conformant(), "{:?}", report.verdict);
    assert_eq!(
        report.events.last().map(String::as_str),
        Some("rec.reqApp"),
        "the delivered-but-ignored replay is the trace's last event"
    );
}
