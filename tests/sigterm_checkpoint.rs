//! SIGTERM is a graceful wind-down, not a crash: the handler raises the
//! process-wide interrupt flag, the engine checkpoints in-flight work at its
//! next budget poll, the supervisor defers the remaining jobs, and a
//! follow-up `--resume` completes the batch to the same verdicts as an
//! undisturbed run.
#![cfg(unix)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

fn autocsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocsp"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    autocsp().args(args).output().expect("autocsp runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autocsp-sigterm-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn sigterm(pid: u32) {
    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM {pid}");
}

/// A manifest whose chaos retries (250 ms backoff, several seeded transient
/// failures) hold the run open long enough for a signal to land mid-batch.
fn slow_manifest(dir: &Path) -> String {
    let model = example("faults/ota_model.csp");
    let x1373 = example("ota_x1373.csp");
    let traces = example("faults/traces");
    let toml = format!(
        r#"
[run]
threads = 1
retries = 3
retry_base_ms = 250
retry_max_ms = 400
retry_seed = 7

[chaos]
seed = 7
transient_attempts = 1
every_nth = 2

[[job]]
name = "honest-refines"
kind = "check"
script = "{model}"
assertion = "HONEST"

[[job]]
name = "x1373-traces"
kind = "check"
script = "{x1373}"
assertion = "[T= SYSTEM"

[[job]]
name = "x1373-deadlock"
kind = "check"
script = "{x1373}"
assertion = "deadlock"

[[job]]
name = "sessions-single-update"
kind = "conform"
script = "{model}"
spec = "SINGLE_UPDATE"
corpus = "{traces}"

[[job]]
name = "analyze-ota"
kind = "analyze"
script = "{model}"

[[job]]
name = "analyze-x1373"
kind = "analyze"
script = "{x1373}"
"#,
        model = model.display(),
        x1373 = x1373.display(),
        traces = traces.display(),
    );
    let path = dir.join("jobs.toml");
    fs::write(&path, toml).expect("write manifest");
    path.to_str().unwrap().to_owned()
}

#[test]
fn sigterm_defers_remaining_jobs_and_resume_completes() {
    let dir = scratch("run");
    let path = slow_manifest(&dir);
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();

    // Every job in this manifest passes, so the undisturbed exit is 0.
    let baseline = run(&["run", &path, "--cache-dir", cache]);
    assert_eq!(baseline.status.code(), Some(0), "{baseline:?}");

    let child = autocsp()
        .args(["run", &path, "--cache-dir", cache])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    std::thread::sleep(std::time::Duration::from_millis(500));
    sigterm(child.id());
    let interrupted = child.wait_with_output().expect("wait");
    let err = String::from_utf8_lossy(&interrupted.stderr);

    // The signal either landed mid-batch (jobs deferred, exit 3) or lost
    // the race with a fast run (exit 0). Only the first case exercises the
    // wind-down path; it is overwhelmingly likely given the retry backoff.
    if interrupted.status.code() == Some(3) {
        assert!(err.contains("deferred"), "{err}");
        assert!(err.contains("--resume"), "{err}");
    } else {
        assert_eq!(interrupted.status.code(), Some(0), "{err}");
    }

    // Resume completes the batch; the verdict stream matches the
    // undisturbed run byte for byte.
    let resumed = run(&["run", &path, "--cache-dir", cache, "--resume"]);
    assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
    assert_eq!(
        String::from_utf8_lossy(&baseline.stdout),
        String::from_utf8_lossy(&resumed.stdout)
    );
}

#[test]
fn sigterm_reports_interruption_as_inconclusive_not_failure() {
    let dir = scratch("codes");
    let path = slow_manifest(&dir);

    let child = autocsp()
        .args(["run", &path])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    std::thread::sleep(std::time::Duration::from_millis(500));
    sigterm(child.id());
    let out = child.wait_with_output().expect("wait");

    // A graceful wind-down is never an infrastructure failure (4) and never
    // invents a refutation (1): everything in this manifest passes.
    let code = out.status.code();
    assert!(
        code == Some(3) || code == Some(0),
        "exit {code:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("refuted\n"), "{text}");
    assert!(!text.contains("...  failed"), "{text}");
}
