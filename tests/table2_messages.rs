//! Table II reproduction: the X.1373 message set, its directions, and its
//! realisation in all three artefacts — the CAN database, the simulated
//! network, and the extracted CSP model.

use auto_csp::ota::{messages, sources, system::OtaSystem};
use canoe_sim::Simulation;

#[test]
fn table_ii_rows_are_exactly_the_papers() {
    let rows: Vec<(&str, &str, &str, &str)> = messages::TABLE_II
        .iter()
        .map(|m| (m.class, m.id, m.from, m.to))
        .collect();
    assert_eq!(
        rows,
        vec![
            ("Diagnose", "reqSw", "VMG", "ECU"),
            ("Diagnose", "rptSw", "ECU", "VMG"),
            ("Update", "reqApp", "VMG", "ECU"),
            ("Update", "rptUpd", "ECU", "VMG"),
        ]
    );
}

#[test]
fn database_directions_match_table_ii() {
    let db = messages::database();
    for spec in messages::TABLE_II {
        let msg = db.message_by_name(spec.id).unwrap();
        assert_eq!(msg.sender, spec.from, "sender of {}", spec.id);
        assert!(
            msg.signals
                .iter()
                .any(|s| s.receivers.iter().any(|r| r == spec.to)),
            "{} should be received by {}",
            spec.id,
            spec.to
        );
    }
}

#[test]
fn simulation_exchanges_exactly_the_table_ii_messages_in_direction_order() {
    let mut sim = Simulation::new(Some(messages::database()));
    sim.add_node("VMG", capl::parse(sources::VMG_CAPL).unwrap())
        .unwrap();
    sim.add_node("ECU", capl::parse(sources::ECU_CAPL).unwrap())
        .unwrap();
    sim.run_for(100_000).unwrap();
    // Each transmit is from the sender Table II assigns.
    for entry in sim.trace() {
        if let canoe_sim::TraceEvent::Transmit { node, message, .. } = &entry.event {
            let spec = messages::TABLE_II
                .iter()
                .find(|m| m.id == message)
                .unwrap_or_else(|| panic!("unexpected message {message}"));
            assert_eq!(node, spec.from, "{message} transmitted by wrong node");
        }
    }
}

#[test]
fn model_events_cover_the_table_ii_message_set() {
    let study = OtaSystem::build().unwrap();
    // VMG→ECU messages appear on `rec`, ECU→VMG on `send` (paper §V-B).
    for spec in messages::TABLE_II {
        let channel = if spec.from == "ECU" { "send" } else { "rec" };
        let name = format!("{channel}.{}", spec.id);
        assert!(
            study.event(&name).is_some(),
            "event `{name}` missing from the model"
        );
    }
}

#[test]
fn server_messages_are_modelled_in_the_extended_system() {
    // §VIII-A scope: the server-side message classes exist in the database
    // and drive a three-node simulation.
    let db = messages::database();
    for spec in messages::SERVER_MESSAGES {
        assert!(db.message_by_name(spec.id).is_some(), "missing {}", spec.id);
    }
    let mut sim = Simulation::new(Some(db));
    sim.add_node("VMG", capl::parse(sources::VMG_FULL_CAPL).unwrap())
        .unwrap();
    sim.add_node("ECU", capl::parse(sources::ECU_CAPL).unwrap())
        .unwrap();
    sim.add_node("Server", capl::parse(sources::SERVER_CAPL).unwrap())
        .unwrap();
    sim.run_for(200_000).unwrap();
    let transmitted: Vec<&str> = sim
        .trace()
        .iter()
        .filter_map(|e| e.event.transmit_name())
        .collect();
    assert_eq!(
        transmitted,
        vec![
            "update_check",
            "update",
            "reqSw",
            "rptSw",
            "reqApp",
            "rptUpd",
            "update_report"
        ]
    );
}
