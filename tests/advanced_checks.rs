//! Advanced checker features exercised on the case-study models:
//! strong-bisimulation compression, failures-divergences refinement, and
//! the parallel decision procedure must all agree with the baseline.

use fdrlite::{Checker, CheckerBuilder};
use ota::{requirements, system::OtaSystem};

#[test]
fn compression_preserves_every_table_iii_verdict() {
    let mut study = OtaSystem::build().unwrap();
    let reqs = requirements::all(&mut study).unwrap();
    let plain = Checker::new();
    let mut b = CheckerBuilder::new();
    b.compress(true);
    let compressed = b.build();
    for req in &reqs {
        let v1 = plain
            .trace_refinement(&req.spec, &req.scoped_system, study.definitions())
            .unwrap();
        let v2 = compressed
            .trace_refinement(&req.spec, &req.scoped_system, study.definitions())
            .unwrap();
        assert_eq!(
            v1.is_pass(),
            v2.is_pass(),
            "{} differs under compression",
            req.id
        );
    }
}

#[test]
fn fd_refinement_holds_for_the_honest_system() {
    // The honest system is divergence-free, so ⊑FD coincides with ⊑F; both
    // must accept the system against the weakest failures spec over its
    // alphabet (CHAOS).
    let mut study = OtaSystem::build().unwrap();
    let comm = study.comm_set().unwrap();
    let system = study.system().clone();
    let (_, defs) = study.parts_mut();
    let chaos = fdrlite::properties::chaos(defs, "CHAOS_COMM", &comm);
    let v = Checker::new()
        .failures_divergences_refinement(&chaos, &system, study.definitions())
        .unwrap();
    assert!(v.is_pass());
}

#[test]
fn fd_refinement_rejects_a_divergent_variant() {
    // Hiding the whole exchange in a looping system diverges.
    let mut study = OtaSystem::build().unwrap();
    let comm = study.comm_set().unwrap();
    // A looping requester with the whole alphabet hidden diverges.
    let req = study.event("rec.reqSw").unwrap();
    let looping = {
        let (_, defs) = study.parts_mut();
        let d = defs.declare("LOOPY");
        defs.define(d, csp::Process::prefix(req, csp::Process::var(d)));
        csp::Process::hide(csp::Process::var(d), comm.clone())
    };
    let (_, defs) = study.parts_mut();
    let chaos = fdrlite::properties::chaos(defs, "CHAOS2", &comm);
    let v = Checker::new()
        .failures_divergences_refinement(&chaos, &looping, study.definitions())
        .unwrap();
    assert!(matches!(
        v.counterexample().unwrap().kind(),
        fdrlite::FailureKind::Divergence
    ));
}

#[test]
fn parallel_checker_agrees_on_the_case_study() {
    let mut study = OtaSystem::build().unwrap();
    let reqs = requirements::all(&mut study).unwrap();
    let checker = Checker::new();
    for req in &reqs {
        let serial = checker
            .trace_refinement(&req.spec, &req.scoped_system, study.definitions())
            .unwrap();
        let parallel = fdrlite::parallel::trace_refinement(
            &checker,
            &req.spec,
            &req.scoped_system,
            study.definitions(),
            4,
        )
        .unwrap();
        assert_eq!(serial, parallel, "{} differs in parallel mode", req.id);
    }
}

#[test]
fn interrupt_models_an_ecu_reset() {
    // The ECU's update cycle may be interrupted by a hard reset at any
    // point; after reset nothing more happens. The interrupted model still
    // trace-refines the reset-aware specification.
    let mut study = OtaSystem::build().unwrap();
    let ecu = study.ecu().clone();
    let comm: csp::EventSet = study.comm_events().unwrap().into_iter().collect();
    let (alphabet, defs) = study.parts_mut();
    let reset = alphabet.intern("ecu.reset");
    let interruptible =
        csp::Process::interrupt(ecu, csp::Process::prefix(reset, csp::Process::Stop));
    // Spec: any comm traffic until a reset, then silence.
    let universe = comm.union(&csp::EventSet::singleton(reset));
    let spec = {
        let run_comm = fdrlite::properties::recursive(defs, "RC", |me| {
            let mut branches: Vec<csp::Process> = comm
                .iter()
                .map(|e| csp::Process::prefix(e, me.clone()))
                .collect();
            branches.push(csp::Process::prefix(reset, csp::Process::Stop));
            csp::Process::external_choice_all(branches)
        });
        let _ = universe;
        run_comm
    };
    let v = Checker::new()
        .trace_refinement(&spec, &interruptible, study.definitions())
        .unwrap();
    assert!(
        v.is_pass(),
        "{:?}",
        v.counterexample()
            .map(|c| c.display(study.alphabet()).to_string())
    );
    // And the reset really can cut the exchange short.
    let lts = csp::Lts::build(interruptible, study.definitions(), 100_000).unwrap();
    let req = study.event("rec.reqSw").unwrap();
    assert!(csp::traces::has_trace(&lts, &[req, reset]));
}
