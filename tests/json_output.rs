//! Machine-readability contract for `--format json`: every subcommand that
//! supports it (`check`, `conform`, `analyze`, `run`) writes **exactly one
//! JSON object** to stdout — parseable by the repo's own `diag::json`
//! parser — while diagnostics, stats and progress notes stay on stderr.
//! Scripting against the CLI must never have to strip human chatter out of
//! stdout.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use diag::json::{self, Value};

fn autocsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocsp"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    autocsp().args(args).output().expect("autocsp runs")
}

/// A scratch directory unique to this test binary invocation.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autocsp-json-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn model() -> String {
    example("faults/ota_model.csp").to_str().unwrap().to_owned()
}

/// Parse stdout as a single JSON object, failing loudly with the raw bytes
/// when it is not valid JSON (e.g. a stray human-readable line leaked in).
fn parse_stdout(out: &Output) -> Value {
    let text = String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8");
    let trimmed = text.trim_end();
    assert!(
        !trimmed.contains('\n'),
        "expected exactly one JSON line on stdout, got:\n{text}"
    );
    json::parse(trimmed).unwrap_or_else(|e| panic!("stdout is not valid JSON ({e:?}):\n{text}"))
}

// ---------------------------------------------------------------------------
// check
// ---------------------------------------------------------------------------

#[test]
fn check_json_verdicts_parse_and_count() {
    let out = run(&["check", &model(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "ATTACKED is refuted");
    let doc = parse_stdout(&out);
    assert!(doc.get("script").and_then(Value::as_str).is_some());
    let assertions = doc
        .get("assertions")
        .and_then(Value::as_array)
        .expect("assertions array");
    assert_eq!(assertions.len(), 2);
    let mut failures = 0;
    for a in assertions {
        let verdict = a.get("verdict").and_then(Value::as_str).expect("verdict");
        match verdict {
            "pass" => assert!(a.get("counterexample").is_none()),
            "fail" => {
                failures += 1;
                let cex = a
                    .get("counterexample")
                    .and_then(Value::as_str)
                    .expect("failed assertion carries its counterexample");
                assert!(cex.contains("forbids"), "unexpected counterexample: {cex}");
            }
            other => panic!("unexpected verdict {other}"),
        }
    }
    assert_eq!(doc.get("failures").and_then(Value::as_u64), Some(failures));
    assert_eq!(doc.get("inconclusive").and_then(Value::as_u64), Some(0));
}

#[test]
fn check_json_inconclusive_carries_reason_and_resume_token() {
    let dir = scratch("check-inconclusive");
    let out = run(&[
        "check",
        &model(),
        "--format",
        "json",
        "--max-states",
        "1",
        "--cache-dir",
        dir.to_str().unwrap(),
    ]);
    let doc = parse_stdout(&out);
    let assertions = doc
        .get("assertions")
        .and_then(Value::as_array)
        .expect("assertions array");
    assert!(!assertions.is_empty());
    for a in assertions {
        assert_eq!(
            a.get("verdict").and_then(Value::as_str),
            Some("inconclusive")
        );
        let reason = a.get("reason").and_then(Value::as_str).expect("reason");
        assert!(reason.contains("budget"), "unexpected reason: {reason}");
        let resume = a
            .get("resume")
            .and_then(Value::as_str)
            .expect("resume token");
        assert!(
            resume.len() == 32 && resume.chars().all(|c| c.is_ascii_hexdigit()),
            "resume token should be a 32-hex checkpoint id, got {resume}"
        );
    }
    // The ANA307 state-space predictions and the budget note are stderr-only.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("inconclusive"),
        "summary note expected on stderr"
    );
}

#[test]
fn check_json_keeps_diagnostics_and_stats_on_stderr() {
    let out = run(&["check", &model(), "--format", "json", "--stats"]);
    parse_stdout(&out); // would panic if stats lines leaked into stdout
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("stats:"), "--stats output belongs on stderr");
}

// ---------------------------------------------------------------------------
// conform / analyze (pre-existing JSON modes, same purity contract)
// ---------------------------------------------------------------------------

#[test]
fn conform_json_is_pure_and_consistent() {
    let traces = example("faults/traces/ota_sessions.jsonl");
    let out = run(&[
        "conform",
        &model(),
        traces.to_str().unwrap(),
        "--spec",
        "HONEST",
        "--format",
        "json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = parse_stdout(&out);
    let traces = doc.get("traces").and_then(Value::as_u64).expect("traces");
    let verdicts = doc
        .get("verdicts")
        .and_then(Value::as_array)
        .expect("verdicts array");
    assert_eq!(verdicts.len() as u64, traces);
    assert_eq!(doc.get("conformant").and_then(Value::as_u64), Some(traces));
}

#[test]
fn analyze_json_is_pure_and_names_definitions() {
    let out = run(&["analyze", &model(), "--format", "json"]);
    let doc = parse_stdout(&out);
    let defs = doc
        .get("definitions")
        .and_then(Value::as_array)
        .expect("definitions array");
    assert!(
        defs.iter()
            .any(|d| d.get("name").and_then(Value::as_str) == Some("HONEST")),
        "HONEST should appear among analyzed definitions"
    );
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

#[test]
fn run_json_reports_every_job_with_status_and_lines() {
    let dir = scratch("run-json");
    let manifest = dir.join("jobs.toml");
    fs::write(
        &manifest,
        format!(
            "[[job]]\nname = \"honest\"\nkind = \"check\"\nscript = \"{model}\"\nassertion = \"HONEST\"\n\n\
             [[job]]\nname = \"attacked\"\nkind = \"check\"\nscript = \"{model}\"\nassertion = \"ATTACKED\"\n",
            model = model()
        ),
    )
    .expect("write manifest");
    let out = run(&[
        "run",
        manifest.to_str().unwrap(),
        "--format",
        "json",
        "--no-cache",
    ]);
    assert_eq!(out.status.code(), Some(1), "one refuted job");
    let doc = parse_stdout(&out);
    let jobs = doc
        .get("jobs")
        .and_then(Value::as_array)
        .expect("jobs array");
    assert_eq!(jobs.len(), 2);
    for job in jobs {
        let name = job.get("name").and_then(Value::as_str).expect("name");
        let status = job.get("status").and_then(Value::as_str).expect("status");
        let lines = job.get("lines").and_then(Value::as_array).expect("lines");
        assert!(!lines.is_empty(), "job {name} should carry verdict lines");
        match name {
            "honest" => assert_eq!(status, "passed"),
            "attacked" => assert_eq!(status, "refuted"),
            other => panic!("unexpected job {other}"),
        }
    }
    assert_eq!(doc.get("passed").and_then(Value::as_u64), Some(1));
    assert_eq!(doc.get("refuted").and_then(Value::as_u64), Some(1));
    assert_eq!(doc.get("failed").and_then(Value::as_u64), Some(0));
    assert_eq!(
        doc.get("deferred")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(0)
    );
}
