//! The Needham–Schroeder public-key protocol, the paper's own motivating
//! example (§II-B): "the security weakness was only exposed 18 years later
//! through formal analysis using CSP". This test rediscovers Lowe's attack
//! with the reproduced toolchain, and confirms Lowe's fix.
//!
//! Modelling notes: encryption is modelled by addressing — a packet on
//! `rcvN.src.dst.…` is readable only by `dst` (or the intruder when
//! `dst == mallory`). The intruder is the network: it learns nonces from
//! packets addressed to it, forwards or drops others, and constructs
//! packets from known nonces.

use auto_csp::cspm::Script;
use auto_csp::fdrlite::Checker;

/// The original protocol. `AUTH` demands that when Bob finishes a session
/// ostensibly with Alice, Alice was actually running the protocol with Bob.
const NSPK: &str = r#"
datatype AgentT = alice | bob | mallory
datatype NonceT = na | nb | ni

-- sndN: agent hands a packet to the network; rcvN: network delivers.
-- Fields: source (routing, unauthenticated), destination (= encryption
-- key), then the encrypted payload.
channel snd1, rcv1 : AgentT.AgentT.NonceT.AgentT
channel snd2, rcv2 : AgentT.AgentT.NonceT.NonceT
channel snd3, rcv3 : AgentT.AgentT.NonceT
channel running, finished : AgentT.AgentT

-- Alice initiates with some peer b: Msg1 {na, alice}pk(b); expects
-- Msg2 {na, x}pk(alice); answers Msg3 {x}pk(b).
ALICE = [] b : {bob, mallory} @
          running.alice.b ->
          snd1.alice.b.na.alice ->
          rcv2?src!alice!na?x ->
          snd3.alice.b.x ->
          finished.alice.b -> STOP

-- Bob responds: on Msg1 {n, a}pk(bob) sends Msg2 {n, nb}pk(a); on
-- Msg3 {nb}pk(bob) he believes he talked to a.
BOB = rcv1?src!bob?n?a ->
      snd2.bob.a.n.nb ->
      rcv3?src2!bob!nb ->
      finished.bob.a -> STOP

-- The Dolev-Yao network: learns payloads addressed to mallory, forwards or
-- drops the rest, and fabricates packets from known nonces.
INTRUDER(known) =
     snd1?a?b?n?a2 ->
       (if b == mallory then INTRUDER(union(known, {n}))
        else (rcv1.a.b.n.a2 -> INTRUDER(known) |~| INTRUDER(known)))
  [] snd2?a?b?n1?n2 ->
       (if b == mallory then INTRUDER(union(known, {n1, n2}))
        else (rcv2.a.b.n1.n2 -> INTRUDER(known) |~| INTRUDER(known)))
  [] snd3?a?b?n ->
       (if b == mallory then INTRUDER(union(known, {n}))
        else (rcv3.a.b.n -> INTRUDER(known) |~| INTRUDER(known)))
  [] ([] b : {alice, bob} @ [] n : known @ [] a2 : {alice, bob} @
        rcv1.mallory.b.n.a2 -> INTRUDER(known))
  [] ([] b : {alice, bob} @ [] n1 : known @ [] n2 : known @
        rcv2.mallory.b.n1.n2 -> INTRUDER(known))
  [] ([] b : {alice, bob} @ [] n : known @
        rcv3.mallory.b.n -> INTRUDER(known))

NETSET = {| snd1, snd2, snd3, rcv1, rcv2, rcv3 |}
SYSTEM = (ALICE ||| BOB) [| NETSET |] INTRUDER({ni})

RUNALL = [] e : Events @ e -> RUNALL
AUTH = running.alice.bob -> RUNALL
    [] ([] e : diff(Events, {| running.alice.bob, finished.bob.alice |}) @ e -> AUTH)

assert AUTH [T= SYSTEM
"#;

/// Lowe's fix: Msg2 carries the responder's identity inside the encryption
/// (`snd2.src.dst.n1.n2.responder`), and Alice accepts it only if it names
/// the peer she is running with.
const NSPK_LOWE: &str = r#"
datatype AgentT = alice | bob | mallory
datatype NonceT = na | nb | ni

channel snd1, rcv1 : AgentT.AgentT.NonceT.AgentT
channel snd2, rcv2 : AgentT.AgentT.NonceT.NonceT.AgentT
channel snd3, rcv3 : AgentT.AgentT.NonceT
channel running, finished : AgentT.AgentT

ALICE = [] b : {bob, mallory} @
          running.alice.b ->
          snd1.alice.b.na.alice ->
          rcv2?src!alice!na?x!b ->
          snd3.alice.b.x ->
          finished.alice.b -> STOP

BOB = rcv1?src!bob?n?a ->
      snd2.bob.a.n.nb.bob ->
      rcv3?src2!bob!nb ->
      finished.bob.a -> STOP

INTRUDER(known) =
     snd1?a?b?n?a2 ->
       (if b == mallory then INTRUDER(union(known, {n}))
        else (rcv1.a.b.n.a2 -> INTRUDER(known) |~| INTRUDER(known)))
  [] snd2?a?b?n1?n2?r ->
       (if b == mallory then INTRUDER(union(known, {n1, n2}))
        else (rcv2.a.b.n1.n2.r -> INTRUDER(known) |~| INTRUDER(known)))
  [] snd3?a?b?n ->
       (if b == mallory then INTRUDER(union(known, {n}))
        else (rcv3.a.b.n -> INTRUDER(known) |~| INTRUDER(known)))
  [] ([] b : {alice, bob} @ [] n : known @ [] a2 : {alice, bob} @
        rcv1.mallory.b.n.a2 -> INTRUDER(known))
  [] ([] b : {alice, bob} @ [] n1 : known @ [] n2 : known @ [] r : {alice, bob, mallory} @
        rcv2.mallory.b.n1.n2.r -> INTRUDER(known))
  [] ([] b : {alice, bob} @ [] n : known @
        rcv3.mallory.b.n -> INTRUDER(known))

NETSET = {| snd1, snd2, snd3, rcv1, rcv2, rcv3 |}
SYSTEM = (ALICE ||| BOB) [| NETSET |] INTRUDER({ni})

RUNALL = [] e : Events @ e -> RUNALL
AUTH = running.alice.bob -> RUNALL
    [] ([] e : diff(Events, {| running.alice.bob, finished.bob.alice |}) @ e -> AUTH)

assert AUTH [T= SYSTEM
"#;

#[test]
fn lowe_attack_is_rediscovered() {
    let loaded = Script::parse(NSPK).unwrap().load().unwrap();
    let results = loaded.check(&Checker::new()).unwrap();
    let cex = results[0]
        .verdict
        .counterexample()
        .expect("the original NSPK must fail authentication");
    let shown = cex.display(loaded.alphabet()).to_string();
    // The witness is the classic man-in-the-middle: Alice starts a session
    // with Mallory, and Bob ends up believing he talked to Alice.
    assert!(shown.contains("running.alice.mallory"), "{shown}");
    assert!(shown.contains("finished.bob.alice"), "{shown}");
    assert!(!shown.contains("running.alice.bob"), "{shown}");
}

#[test]
fn attack_trace_has_the_expected_shape() {
    let loaded = Script::parse(NSPK).unwrap().load().unwrap();
    let system = loaded.process("SYSTEM").unwrap().clone();
    let lts = csp::Lts::build(system, loaded.definitions(), 2_000_000).unwrap();
    let step = |n: &str| loaded.alphabet().lookup(n).unwrap();
    // The full Lowe interleaving is a trace of the system.
    let attack = [
        "running.alice.mallory",
        "snd1.alice.mallory.na.alice", // Alice → Mallory: {na, A}pk(M)
        "rcv1.mallory.bob.na.alice",   // Mallory re-encrypts to Bob
        "snd2.bob.alice.na.nb",        // Bob → Alice: {na, nb}pk(A)
        "rcv2.bob.alice.na.nb",        // forwarded unchanged
        "snd3.alice.mallory.nb",       // Alice → Mallory: {nb}pk(M)
        "rcv3.mallory.bob.nb",         // Mallory → Bob: {nb}pk(B)
        "finished.bob.alice",          // Bob authenticated "Alice"
    ]
    .map(step);
    assert!(csp::traces::has_trace(&lts, &attack));
}

#[test]
fn lowes_fix_restores_authentication() {
    let loaded = Script::parse(NSPK_LOWE).unwrap().load().unwrap();
    let results = loaded.check(&Checker::new()).unwrap();
    assert!(
        results[0].verdict.is_pass(),
        "{:?}",
        results[0]
            .verdict
            .counterexample()
            .map(|c| c.display(loaded.alphabet()).to_string())
    );
}

#[test]
fn fixed_protocol_still_completes_honestly() {
    let loaded = Script::parse(NSPK_LOWE).unwrap().load().unwrap();
    let system = loaded.process("SYSTEM").unwrap().clone();
    let lts = csp::Lts::build(system, loaded.definitions(), 2_000_000).unwrap();
    let step = |n: &str| loaded.alphabet().lookup(n).unwrap();
    let honest = [
        "running.alice.bob",
        "snd1.alice.bob.na.alice",
        "rcv1.alice.bob.na.alice",
        "snd2.bob.alice.na.nb.bob",
        "rcv2.bob.alice.na.nb.bob",
        "snd3.alice.bob.nb",
        "rcv3.alice.bob.nb",
        "finished.bob.alice",
    ]
    .map(step);
    assert!(csp::traces::has_trace(&lts, &honest));
}
