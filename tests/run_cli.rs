//! End-to-end acceptance of `autocsp run`: the supervised job runtime over
//! a jobs.toml manifest. Covers the exit-code contract (0 passed, 1 refuted,
//! 3 inconclusive/deferred, 4 infrastructure), panic isolation, chaos-plan
//! retries, and the headline robustness guarantee — a run killed mid-flight
//! and completed with `--resume` produces verdicts byte-identical to an
//! undisturbed run.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn autocsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocsp"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    autocsp().args(args).output().expect("autocsp runs")
}

/// A scratch directory unique to this test binary invocation.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autocsp-run-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn manifest() -> String {
    example("supervise/jobs.toml").to_str().unwrap().to_owned()
}

/// The example manifest with absolute script paths, slowed down so a signal
/// reliably lands mid-run: the chaos plan makes every third job fail its
/// first attempt and the retry backoff is a few hundred milliseconds.
fn slow_manifest(dir: &Path) -> String {
    let model = example("faults/ota_model.csp");
    let x1373 = example("ota_x1373.csp");
    let traces = example("faults/traces");
    let toml = format!(
        r#"
[run]
threads = 1
retries = 3
retry_base_ms = 250
retry_max_ms = 400
retry_seed = 7

[chaos]
seed = 7
transient_attempts = 1
every_nth = 3

[[job]]
name = "honest-refines"
kind = "check"
script = "{model}"
assertion = "HONEST"

[[job]]
name = "replay-attack"
kind = "check"
script = "{model}"
assertion = "ATTACKED"

[[job]]
name = "x1373-traces"
kind = "check"
script = "{x1373}"
assertion = "[T= SYSTEM"

[[job]]
name = "x1373-deadlock"
kind = "check"
script = "{x1373}"
assertion = "deadlock"

[[job]]
name = "x1373-determinism"
kind = "check"
script = "{x1373}"
assertion = "deterministic"

[[job]]
name = "sessions-conform-honest"
kind = "conform"
script = "{model}"
spec = "HONEST"
corpus = "{traces}"

[[job]]
name = "sessions-single-update"
kind = "conform"
script = "{model}"
spec = "SINGLE_UPDATE"
corpus = "{traces}"

[[job]]
name = "analyze-ota"
kind = "analyze"
script = "{model}"
"#,
        model = model.display(),
        x1373 = x1373.display(),
        traces = traces.display(),
    );
    let path = dir.join("jobs.toml");
    fs::write(&path, toml).expect("write manifest");
    path.to_str().unwrap().to_owned()
}

// ---------------------------------------------------------------------------
// Verdicts and exit codes
// ---------------------------------------------------------------------------

#[test]
fn supervised_batch_reports_every_job_and_exits_one_on_refutation() {
    let out = run(&["run", &manifest()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("run: 11 job(s): 8 passed, 3 refuted, 0 inconclusive, 0 failed"),
        "{text}"
    );
    assert!(text.contains("job honest-refines  ...  passed"), "{text}");
    assert!(text.contains("job replay-attack  ...  refuted"), "{text}");
    assert!(text.contains("job analyze-x1373  ...  passed"), "{text}");
    // The chaos plan forced transient failures; retries are stderr-only.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("SUP502"), "{err}");
    assert!(!text.contains("SUP502"), "retry noise must not hit stdout");
}

#[test]
fn all_passing_manifest_exits_zero() {
    let dir = scratch("pass");
    let model = example("faults/ota_model.csp");
    let toml = format!(
        "[[job]]\nname = \"honest\"\nkind = \"check\"\nscript = \"{}\"\nassertion = \"HONEST\"\n\
         \n[[job]]\nname = \"analyze\"\nkind = \"analyze\"\nscript = \"{}\"\n",
        model.display(),
        model.display()
    );
    let path = dir.join("pass.toml");
    fs::write(&path, toml).unwrap();
    let out = run(&["run", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("run: 2 job(s): 2 passed, 0 refuted, 0 inconclusive, 0 failed"),
        "{text}"
    );
}

#[test]
fn broken_manifest_reports_sup510() {
    let dir = scratch("bad");
    let path = dir.join("bad.toml");
    fs::write(&path, "[[job]\nname = oops").unwrap();
    let out = run(&["run", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("SUP510"), "{err}");
}

#[test]
fn job_with_missing_script_fails_without_sinking_the_run() {
    let dir = scratch("missing");
    let model = example("faults/ota_model.csp");
    let toml = format!(
        "[[job]]\nname = \"ghost\"\nkind = \"check\"\nscript = \"{}\"\n\
         \n[[job]]\nname = \"honest\"\nkind = \"check\"\nscript = \"{}\"\nassertion = \"HONEST\"\n",
        dir.join("no-such-script.csp").display(),
        model.display()
    );
    let path = dir.join("missing.toml");
    fs::write(&path, toml).unwrap();
    let out = run(&["run", path.to_str().unwrap()]);
    // The broken job is infrastructure (exit 4); the healthy job still ran.
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("job ghost  ...  failed"), "{text}");
    assert!(text.contains("job honest  ...  passed"), "{text}");
    assert!(
        text.contains("run: 2 job(s): 1 passed, 0 refuted, 0 inconclusive, 1 failed"),
        "{text}"
    );
}

// ---------------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------------

#[test]
fn forced_panic_is_isolated_and_exits_four() {
    let out = run(&["run", &manifest(), "--force-panic", "x1373-deadlock"]);
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stdout);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("SUP501"), "{err}");
    assert!(err.contains("the run continues"), "{err}");
    assert!(text.contains("job x1373-deadlock  ...  failed"), "{text}");
    // Every other job still ran to its normal verdict.
    assert!(
        text.contains("run: 11 job(s): 7 passed, 3 refuted, 0 inconclusive, 1 failed"),
        "{text}"
    );
    assert!(text.contains("job analyze-x1373  ...  passed"), "{text}");
}

// ---------------------------------------------------------------------------
// Determinism: chaos retries and thread counts never change verdicts
// ---------------------------------------------------------------------------

#[test]
fn verdicts_are_byte_identical_across_runs_and_thread_counts() {
    let one = run(&["run", &manifest(), "--threads", "1"]);
    let again = run(&["run", &manifest(), "--threads", "1"]);
    let eight = run(&["run", &manifest(), "--threads", "8"]);
    assert_eq!(one.stdout, again.stdout, "re-run must be byte-identical");
    assert_eq!(one.stdout, eight.stdout, "thread count must not leak");
}

// ---------------------------------------------------------------------------
// Crash safety: SIGKILL mid-run, then `--resume`
// ---------------------------------------------------------------------------

#[cfg(unix)]
#[test]
fn kill_nine_then_resume_matches_undisturbed_run() {
    let dir = scratch("kill");
    let path = slow_manifest(&dir);

    let baseline = run(&["run", &path]);
    assert_eq!(baseline.status.code(), Some(1), "{baseline:?}");

    for round in 0..3 {
        // Fresh journal for each round (`run` without --resume resets it).
        let mut child = autocsp()
            .args(["run", &path])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn");
        std::thread::sleep(std::time::Duration::from_millis(300 + round * 250));
        let _ = child.kill(); // SIGKILL: no chance to clean up
        let _ = child.wait();

        let resumed = run(&["run", &path, "--resume"]);
        assert_eq!(resumed.status.code(), Some(1), "round {round}");
        assert_eq!(
            String::from_utf8_lossy(&baseline.stdout),
            String::from_utf8_lossy(&resumed.stdout),
            "round {round}: resumed verdicts must match the undisturbed run"
        );
    }
}

#[cfg(unix)]
#[test]
fn resume_replays_journaled_verdicts_instead_of_rechecking() {
    let dir = scratch("journal");
    let path = slow_manifest(&dir);

    // Let the run get partway, kill it, then resume with --stats to see the
    // replay counter. The kill window is wide (retry backoff keeps the run
    // alive for over a second), but even a race where the run finished or
    // barely started keeps the assertions below meaningful.
    let mut child = autocsp()
        .args(["run", &path])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn");
    std::thread::sleep(std::time::Duration::from_millis(700));
    let _ = child.kill();
    let _ = child.wait();

    let resumed = run(&["run", &path, "--resume", "--stats"]);
    let err = String::from_utf8_lossy(&resumed.stderr);
    assert!(err.contains("replayed from journal"), "{err}");

    // A completed resume clears the journal: a second `--resume` re-runs
    // everything and still lands on the same verdicts.
    let fresh = run(&["run", &path]);
    let again = run(&["run", &path, "--resume"]);
    assert_eq!(fresh.stdout, again.stdout);
}
