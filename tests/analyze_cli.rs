//! End-to-end acceptance of `autocsp analyze` and determinism regression
//! for the diagnostic-emitting subcommands: two identical invocations must
//! produce byte-identical stdout and stderr, in both output formats.

use std::path::PathBuf;
use std::process::{Command, Output};

fn autocsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocsp"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    autocsp().args(args).output().expect("autocsp runs")
}

fn assert_deterministic(args: &[&str]) {
    let first = run(args);
    let second = run(args);
    assert_eq!(
        first.status.code(),
        second.status.code(),
        "exit codes differ for {args:?}"
    );
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "stdout differs between runs for {args:?}"
    );
    assert_eq!(
        String::from_utf8_lossy(&first.stderr),
        String::from_utf8_lossy(&second.stderr),
        "stderr differs between runs for {args:?}"
    );
}

// ---------------------------------------------------------------------------
// `autocsp analyze` acceptance
// ---------------------------------------------------------------------------

#[test]
fn analyze_ota_example_reports_alphabets_graphs_and_predictions() {
    let ota = example("ota_x1373.csp");
    let out = run(&["analyze", ota.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Per-definition inferred alphabets…
    assert!(text.contains("ROGUE : {rec.reqSw, send.rptSw}"), "{text}");
    // …per-operand graph classification…
    assert!(text.contains("divergence-free, deadlock-free"), "{text}");
    // …and the state-space prediction, with the idiomatic channel-closure
    // sync set not misreported as stale.
    assert!(text.contains("predicted product ≤"), "{text}");
    assert!(text.ends_with("0 error(s), 0 warning(s)\n"), "{text}");
}

#[test]
fn analyze_json_is_valid_and_carries_the_report() {
    let ota = example("ota_x1373.csp");
    let out = run(&["analyze", ota.to_str().unwrap(), "--format", "json"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"file\":",
        "\"rounds\":",
        "\"definitions\":",
        "\"assertions\":",
        "\"predicted_product\":",
        "\"divergence_free\":true",
        "\"deadlock_free\":true",
        "\"predicted_states\":",
        "\"diagnostics\":[]",
        "\"errors\":0",
        "\"warnings\":0",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
}

#[test]
fn analyze_flags_one_sided_sync_and_denies_warnings() {
    let onesided = example("lint/onesided.csp");
    let out = run(&["analyze", onesided.to_str().unwrap()]);
    assert!(out.status.success(), "warnings alone must not fail analyze");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ANA301"), "{text}");
    assert!(text.contains("ANA306"), "{text}");

    let denied = run(&["analyze", onesided.to_str().unwrap(), "--deny-warnings"]);
    assert_eq!(denied.status.code(), Some(1));
}

#[test]
fn analyze_budget_prediction_fires_before_exploration() {
    let ota = example("ota_x1373.csp");
    let out = run(&["analyze", ota.to_str().unwrap(), "--max-states", "1"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ANA307"), "{text}");
}

// ---------------------------------------------------------------------------
// Determinism: repeated runs are byte-identical (the CI determinism job
// diffs full stdout+stderr; these keep the property pinned at test level).
// ---------------------------------------------------------------------------

#[test]
fn lint_runs_are_byte_identical() {
    let clean_can = example("lint/clean.can");
    let clean_csp = example("lint/clean.csp");
    let defective = example("lint/defective.can");
    let onesided = example("lint/onesided.csp");
    let dbc = example("lint/net.dbc");
    for format in ["text", "json"] {
        assert_deterministic(&[
            "lint",
            clean_can.to_str().unwrap(),
            clean_csp.to_str().unwrap(),
            defective.to_str().unwrap(),
            onesided.to_str().unwrap(),
            "--dbc",
            dbc.to_str().unwrap(),
            "--format",
            format,
        ]);
    }
}

#[test]
fn analyze_runs_are_byte_identical() {
    let ota = example("ota_x1373.csp");
    let onesided = example("lint/onesided.csp");
    for format in ["text", "json"] {
        assert_deterministic(&["analyze", ota.to_str().unwrap(), "--format", format]);
        assert_deterministic(&["analyze", onesided.to_str().unwrap(), "--format", format]);
    }
}

#[test]
fn lint_diagnostics_are_sorted_by_span_within_a_file() {
    let onesided = example("lint/onesided.csp");
    let out = run(&["lint", onesided.to_str().unwrap(), "--format", "json"]);
    let text = String::from_utf8_lossy(&out.stdout);
    // Extract the reported line numbers in emission order; they must be
    // non-decreasing (span-sorted), interleaving the syntactic CSP2xx and
    // semantic ANA3xx findings rather than appending one family after the
    // other.
    let mut lines = Vec::new();
    let mut rest = text.as_ref();
    while let Some(at) = rest.find("\"line\":") {
        rest = &rest[at + 7..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        lines.push(digits.parse::<u32>().unwrap());
    }
    assert!(!lines.is_empty());
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted, "diagnostics not span-ordered: {text}");
}
