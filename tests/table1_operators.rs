//! Table I reproduction: every basic-operator notation of the paper's CSPm
//! table parses, elaborates, and satisfies its defining trace law from
//! §IV-A2.
//!
//! | Basic operator          | Notation    |
//! |-------------------------|-------------|
//! | Prefix                  | `->`        |
//! | Input                   | `?x`        |
//! | Output                  | `!x`        |
//! | Sequential composition  | `;`         |
//! | External choice         | `[]`        |
//! | Internal choice         | `|~|`       |
//! | Alphabetised parallel   | `[| A |]`   |
//! | Interleaving            | `|||`       |

use std::collections::BTreeSet;

use auto_csp::csp::{laws, Lts, Process, Trace, TraceEvent};
use auto_csp::cspm::Script;

/// Load a script and return the process `P` with its definitions.
fn load(src: &str) -> (Process, csp::Definitions, csp::Alphabet) {
    let loaded = Script::parse(src).unwrap().load().unwrap();
    let p = loaded.process("P").unwrap().clone();
    (p, loaded.definitions().clone(), loaded.alphabet().clone())
}

fn traces(src: &str, depth: usize) -> BTreeSet<Vec<String>> {
    let (p, defs, ab) = load(src);
    let lts = Lts::build(p, &defs, 100_000).unwrap();
    auto_csp::csp::traces::traces_upto(&lts, depth)
        .into_iter()
        .map(|t| {
            t.events()
                .iter()
                .map(|e| match e {
                    TraceEvent::Event(id) => ab.name(*id).to_owned(),
                    TraceEvent::Tick => "✓".to_owned(),
                })
                .collect()
        })
        .collect()
}

const HEADER: &str = "channel a, b, c\n";

#[test]
fn prefix_notation() {
    // traces(a -> P) = {⟨⟩} ∪ {⟨a⟩⌢tr}
    let ts = traces(&format!("{HEADER}P = a -> b -> STOP"), 5);
    assert!(ts.contains(&vec![]));
    assert!(ts.contains(&vec!["a".to_owned()]));
    assert!(ts.contains(&vec!["a".to_owned(), "b".to_owned()]));
    assert_eq!(ts.len(), 3);
}

#[test]
fn input_notation_binds_over_the_channel_type() {
    let src = "channel c : {0..2}\nchannel d : {0..2}\nP = c?x -> d!x -> STOP";
    let ts = traces(src, 4);
    for v in 0..3 {
        assert!(ts.contains(&vec![format!("c.{v}"), format!("d.{v}")]));
        // The output must echo the input: cross pairs are absent.
        for w in 0..3 {
            if w != v {
                assert!(!ts.contains(&vec![format!("c.{v}"), format!("d.{w}")]));
            }
        }
    }
}

#[test]
fn output_notation_fixes_the_value() {
    let src = "channel c : {0..4}\nP = c!3 -> STOP";
    let ts = traces(src, 3);
    assert!(ts.contains(&vec!["c.3".to_owned()]));
    assert_eq!(ts.len(), 2);
}

#[test]
fn sequential_composition_law() {
    // traces(P1 ; P2) includes tr1⌢tr2 for terminating tr1.
    let ts = traces(&format!("{HEADER}P = (a -> SKIP) ; b -> STOP"), 5);
    assert!(ts.contains(&vec!["a".to_owned(), "b".to_owned()]));
    // ✓ of the first component is internalised, not visible.
    assert!(!ts
        .iter()
        .any(|t| t.contains(&"✓".to_owned()) && t.len() > 1));
}

#[test]
fn external_choice_trace_union_law() {
    // traces(P1 [] P2) = traces(P1) ∪ traces(P2)
    let both = traces(&format!("{HEADER}P = a -> STOP [] b -> c -> STOP"), 5);
    let left = traces(&format!("{HEADER}P = a -> STOP"), 5);
    let right = traces(&format!("{HEADER}P = b -> c -> STOP"), 5);
    let union: BTreeSet<Vec<String>> = left.union(&right).cloned().collect();
    assert_eq!(both, union);
}

#[test]
fn internal_choice_is_trace_equivalent_to_external() {
    let int = traces(&format!("{HEADER}P = a -> STOP |~| b -> STOP"), 5);
    let ext = traces(&format!("{HEADER}P = a -> STOP [] b -> STOP"), 5);
    assert_eq!(int, ext);
}

#[test]
fn internal_and_external_choice_differ_in_failures() {
    // The distinction Table I's two operators carry shows up one semantic
    // model later: ⊑F separates them.
    let ext = "channel a, b\nP = a -> STOP [] b -> STOP";
    let int = "channel a, b\nP = a -> STOP |~| b -> STOP";
    let (pe, de, _) = load(ext);
    let (pi, di, _) = load(int);
    let c = auto_csp::fdrlite::Checker::new();
    // Same definitions table is not shared; check each within its own.
    // Cross-table refinement may error; it must not panic.
    let _ = c.trace_refinement(&pe, &pi, &di);
    // ⊑F: external is refined by external, not by internal.
    let v = c.failures_refinement(&pe, &pe, &de).unwrap();
    assert!(v.is_pass());
    let v = c.failures_refinement(&pi, &pi, &di).unwrap();
    assert!(v.is_pass());
}

#[test]
fn alphabetised_parallel_synchronises() {
    let src = format!("{HEADER}P = (a -> b -> STOP) [| {{| a |}} |] (a -> c -> STOP)");
    let ts = traces(&src, 5);
    // a happens once (synchronised), then b and c interleave.
    assert!(ts.contains(&vec!["a".to_owned(), "b".to_owned(), "c".to_owned()]));
    assert!(ts.contains(&vec!["a".to_owned(), "c".to_owned(), "b".to_owned()]));
    assert!(!ts.contains(&vec!["a".to_owned(), "a".to_owned()]));
}

#[test]
fn interleaving_law() {
    // traces(P1 ||| P2) = all interleavings.
    let ts = traces(&format!("{HEADER}P = (a -> STOP) ||| (b -> STOP)"), 5);
    assert!(ts.contains(&vec!["a".to_owned(), "b".to_owned()]));
    assert!(ts.contains(&vec!["b".to_owned(), "a".to_owned()]));
}

#[test]
fn hiding_law_on_traces() {
    // traces(P \ A) = { tr \ A | tr ∈ traces(P) }
    let visible = traces(&format!("{HEADER}P = (a -> b -> STOP) \\ {{| a |}}"), 5);
    assert!(visible.contains(&vec!["b".to_owned()]));
    assert!(!visible.iter().any(|t| t.contains(&"a".to_owned())));
}

#[test]
fn trace_hiding_matches_recursive_definition() {
    // The paper defines tr \ A recursively; spot-check against Trace::hide.
    let mut ab = csp::Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let tr = Trace::from_events([a, b, a, b]);
    let hidden = tr.hide(&csp::EventSet::singleton(a));
    assert_eq!(hidden, Trace::from_events([b, b]));
}

#[test]
fn trace_refinement_definition() {
    // Q ⊑T P iff traces(P) ⊆ traces(Q), checked both via the enumerative
    // reference (csp::laws) and the product checker (fdrlite).
    let defs = csp::Definitions::new();
    let mut ab = csp::Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let spec = Process::external_choice(
        Process::prefix(a, Process::Stop),
        Process::prefix(b, Process::Stop),
    );
    let imp = Process::prefix(a, Process::Stop);
    assert!(laws::trace_refines_upto(&spec, &imp, &defs, 8, 10_000).unwrap());
    let v = auto_csp::fdrlite::Checker::new()
        .trace_refinement(&spec, &imp, &defs)
        .unwrap();
    assert!(v.is_pass());
    // And the converse fails in both.
    assert!(!laws::trace_refines_upto(&imp, &spec, &defs, 8, 10_000).unwrap());
    assert!(!auto_csp::fdrlite::Checker::new()
        .trace_refinement(&imp, &spec, &defs)
        .unwrap()
        .is_pass());
}

#[test]
fn stop_is_the_unit_of_external_choice_and_refines_everything() {
    let (p, defs, _) = load(&format!("{HEADER}P = a -> STOP [] STOP"));
    let (q, qdefs, _) = load(&format!("{HEADER}P = a -> STOP"));
    let pt = {
        let lts = Lts::build(p, &defs, 1000).unwrap();
        auto_csp::csp::traces::traces_upto(&lts, 5)
    };
    let qt = {
        let lts = Lts::build(q, &qdefs, 1000).unwrap();
        auto_csp::csp::traces::traces_upto(&lts, 5)
    };
    assert_eq!(pt, qt);
}
