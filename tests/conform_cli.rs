//! End-to-end acceptance of `autocsp conform`: corpus ingest from files,
//! directories and stdin, SIM31x corpus-hygiene findings, the exit-code
//! contract, and the headline determinism guarantee — JSON verdicts
//! byte-identical at 1 and 8 threads.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn autocsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocsp"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    autocsp().args(args).output().expect("autocsp runs")
}

/// A scratch directory unique to this test binary invocation.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autocsp-conform-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn model() -> String {
    example("faults/ota_model.csp").to_str().unwrap().to_owned()
}

fn traces_dir() -> String {
    example("faults/traces").to_str().unwrap().to_owned()
}

// ---------------------------------------------------------------------------
// Verdicts and exit codes
// ---------------------------------------------------------------------------

#[test]
fn conformant_corpus_exits_zero() {
    let ota = example("faults/traces/ota_sessions.jsonl");
    let out = run(&[
        "conform",
        &model(),
        ota.to_str().unwrap(),
        "--spec",
        "HONEST",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("PASS: 6 trace(s), 6 conformant, 0 refuted, 0 unknown-event"),
        "{text}"
    );
}

#[test]
fn violating_traces_fail_with_counterexamples() {
    let bad = example("faults/traces/replayed_sessions.jsonl");
    let out = run(&[
        "conform",
        &model(),
        bad.to_str().unwrap(),
        "--spec",
        "HONEST",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("trace replayed-report  ...  FAIL"), "{text}");
    assert!(
        text.contains("after ⟨rec.reqSw, send.rptSw⟩, the implementation performs `send.rptSw`"),
        "{text}"
    );
    // The conformant control trace is not listed — only failures print.
    assert!(!text.contains("honest-control"), "{text}");
    assert!(
        text.contains("FAIL: 4 trace(s), 1 conformant, 3 refuted, 0 unknown-event"),
        "{text}"
    );
}

#[test]
fn spec_name_comes_from_the_fault_plan_when_not_given() {
    let ota = example("faults/traces/ota_sessions.jsonl");
    let plan = example("faults/baseline.toml");
    let out = run(&[
        "conform",
        &model(),
        ota.to_str().unwrap(),
        "--faults",
        plan.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("conformance HONEST [T= corpus"),
        "plan's [conformance] spec must be used"
    );
}

#[test]
fn missing_spec_and_missing_corpus_are_usage_errors() {
    let out = run(&["conform", &model(), "--stdin"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--spec"),
        "must ask for a spec source"
    );

    let out = run(&["conform", &model(), "--spec", "HONEST"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("needs a corpus"),
        "must ask for a corpus source"
    );
}

// ---------------------------------------------------------------------------
// Corpus hygiene: SIM310 / SIM311 / SIM312
// ---------------------------------------------------------------------------

#[test]
fn corpus_hygiene_findings_carry_codes_and_spans() {
    let dir = scratch("hygiene");
    let corpus = dir.join("corpus.jsonl");
    fs::write(
        &corpus,
        "[\"rec.reqSw\"]\nnot json\n[\"rec.reqSw\",\"ghost.evt\"]\n",
    )
    .unwrap();
    let out = run(&[
        "conform",
        &model(),
        corpus.to_str().unwrap(),
        "--spec",
        "HONEST",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "unknown event is nonconformance"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning[SIM310]"), "{err}");
    assert!(err.contains(":2:1"), "SIM310 span points at line 2: {err}");
    assert!(err.contains("warning[SIM311]"), "{err}");
    assert!(err.contains("`ghost.evt`"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_corpus_warns_sim312_and_deny_warnings_fails_it() {
    let dir = scratch("empty");
    let corpus = dir.join("empty.jsonl");
    fs::write(&corpus, "\n").unwrap();

    let out = run(&[
        "conform",
        &model(),
        corpus.to_str().unwrap(),
        "--spec",
        "HONEST",
    ]);
    assert!(out.status.success(), "vacuously conformant");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("warning[SIM312]"),
        "empty corpus must warn"
    );

    let out = run(&[
        "conform",
        &model(),
        corpus.to_str().unwrap(),
        "--spec",
        "HONEST",
        "--deny-warnings",
    ]);
    assert_eq!(out.status.code(), Some(1), "denied under --deny-warnings");
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Sources: --traces-dir and --stdin
// ---------------------------------------------------------------------------

#[test]
fn traces_dir_ingests_every_jsonl_sorted_and_stdin_appends() {
    let mut child = autocsp()
        .args([
            "conform",
            &model(),
            "--spec",
            "HONEST",
            "--traces-dir",
            &traces_dir(),
            "--stdin",
            "--format",
            "json",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("autocsp spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"id\":\"from-stdin\",\"events\":[\"rec.reqSw\"]}\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let json = String::from_utf8_lossy(&out.stdout);
    // ota_sessions.jsonl sorts before replayed_sessions.jsonl; stdin is last.
    let honest = json.find("honest-session").expect("dir corpus ingested");
    let replayed = json.find("replayed-report").expect("second file ingested");
    let stdin_at = json.find("from-stdin").expect("stdin corpus ingested");
    assert!(honest < replayed && replayed < stdin_at, "{json}");
    assert!(json.contains("\"traces\":11"), "{json}");
}

// ---------------------------------------------------------------------------
// Determinism: JSON verdicts are thread-count- and repeat-invariant
// ---------------------------------------------------------------------------

#[test]
fn json_verdicts_are_byte_identical_at_1_and_8_threads() {
    let base: Vec<String> = vec![
        "conform".into(),
        model(),
        "--spec".into(),
        "HONEST".into(),
        "--traces-dir".into(),
        traces_dir(),
        "--format".into(),
        "json".into(),
    ];
    let mut outputs = Vec::new();
    for threads in ["1", "8"] {
        for _ in 0..2 {
            let out = autocsp()
                .args(&base)
                .args(["--threads", threads])
                .output()
                .expect("autocsp runs");
            assert_eq!(out.status.code(), Some(1), "corpus contains violations");
            outputs.push(out.stdout);
        }
    }
    for other in &outputs[1..] {
        assert_eq!(
            String::from_utf8_lossy(&outputs[0]),
            String::from_utf8_lossy(other),
            "JSON verdicts must not depend on thread count or repetition"
        );
    }
}

// ---------------------------------------------------------------------------
// Stats surface
// ---------------------------------------------------------------------------

#[test]
fn stats_report_dedup_ratio_and_throughput() {
    let dir = scratch("stats");
    let stats_path = dir.join("stats.json");
    let ota = example("faults/traces/ota_sessions.jsonl");
    let out = run(&[
        "conform",
        &model(),
        ota.to_str().unwrap(),
        "--spec",
        "HONEST",
        "--stats",
        "--stats-json",
        stats_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sharing"), "human stats show dedup: {err}");
    let json = fs::read_to_string(&stats_path).unwrap();
    for key in [
        "\"traces\":6",
        "\"dedup_ratio\":",
        "\"trie_nodes\":",
        "\"traces_per_sec\":",
        "\"ingest_us\":",
        "\"check_us\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // The six sessions share the ⟨reqSw, rptSw, reqApp, rptUpd⟩ spine, so
    // the corpus must dedup strictly.
    let ratio: f64 = json
        .split("\"dedup_ratio\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .expect("dedup_ratio parses");
    assert!(ratio > 1.5, "expected heavy prefix sharing, got {ratio}");
    let _ = fs::remove_dir_all(&dir);
}
