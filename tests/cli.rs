//! End-to-end tests of the `autocsp` command-line interface.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn autocsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocsp"))
}

fn fixture_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autocsp-cli-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join("ecu.can"),
        "variables { message reqSw a; message rptSw b; }\non message reqSw { output(b); }\n",
    )
    .unwrap();
    fs::write(
        dir.join("vmg.can"),
        "variables { message reqSw req; }\non start { output(req); }\non message rptSw { write(\"done\"); }\n",
    )
    .unwrap();
    fs::write(
        dir.join("net.dbc"),
        "BU_: VMG ECU\nBO_ 256 reqSw: 8 VMG\n SG_ x : 0|8@1+ (1,0) [0|255] \"\" ECU\nBO_ 512 rptSw: 8 ECU\n SG_ x : 0|8@1+ (1,0) [0|255] \"\" VMG\n",
    )
    .unwrap();
    dir
}

#[test]
fn translate_prints_the_model() {
    let dir = fixture_dir();
    let out = autocsp()
        .args(["translate", dir.join("ecu.can").to_str().unwrap()])
        .arg("--dbc")
        .arg(dir.join("net.dbc"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ECU = rec.reqSw -> send.rptSw -> ECU"),
        "{stdout}"
    );
}

#[test]
fn compose_then_check_passes() {
    let dir = fixture_dir();
    let model = dir.join("system.csp");
    let out = autocsp()
        .args(["compose"])
        .arg(dir.join("vmg.can"))
        .arg(dir.join("ecu.can"))
        .arg("--dbc")
        .arg(dir.join("net.dbc"))
        .arg("-o")
        .arg(&model)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut script = fs::read_to_string(&model).unwrap();
    script.push_str("\nassert SYSTEM :[divergence free]\n");
    fs::write(&model, script).unwrap();

    let out = autocsp()
        .args(["check", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}

#[test]
fn check_fails_with_nonzero_exit_on_violation() {
    let dir = fixture_dir();
    let model = dir.join("bad.csp");
    fs::write(
        &model,
        "channel a, b\nSPEC = a -> SPEC\nIMPL = a -> b -> IMPL\nassert SPEC [T= IMPL\n",
    )
    .unwrap();
    let out = autocsp()
        .args(["check", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("after ⟨a⟩"), "{stdout}");
}

#[test]
fn simulate_prints_the_trace() {
    let dir = fixture_dir();
    let out = autocsp()
        .arg("simulate")
        .arg(dir.join("vmg.can"))
        .arg(dir.join("ecu.can"))
        .arg("--dbc")
        .arg(dir.join("net.dbc"))
        .args(["--for-ms", "50"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("transmit  reqSw"), "{stdout}");
    assert!(stdout.contains("transmit  rptSw"), "{stdout}");
    assert!(stdout.contains("log       done"), "{stdout}");
}

#[test]
fn unknown_subcommand_is_an_error() {
    let out = autocsp().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn help_prints_usage() {
    let out = autocsp().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
