//! Error-path coverage across the toolchain: the failure modes a user hits
//! must come back as typed errors with actionable messages, never panics.

use fdrlite::{Checker, CheckerBuilder};
use translator::{Pipeline, TranslateConfig};

#[test]
fn cspm_reports_positions_for_syntax_errors() {
    let err = cspm::Script::parse("P = a ->\n-> b").unwrap_err();
    let text = err.to_string();
    assert!(text.contains("parse error"), "{text}");
    assert!(text.contains("2:"), "position missing: {text}");
}

#[test]
fn cspm_reports_unknown_names_with_the_name() {
    let err = cspm::Script::parse("P = ghost -> STOP")
        .unwrap()
        .load()
        .unwrap_err();
    assert!(err.to_string().contains("ghost"), "{err}");
}

#[test]
fn cspm_reports_channel_arity_misuse() {
    let err = cspm::Script::parse("channel c : {0..1}\nP = c.0.1 -> STOP")
        .unwrap()
        .load()
        .unwrap_err();
    assert!(err.to_string().contains("too many fields"), "{err}");
}

#[test]
fn cspm_rejects_value_where_process_expected() {
    let err = cspm::Script::parse("N = 3\nchannel a\nP = a -> N")
        .unwrap()
        .load()
        .unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("process") && text.contains("integer"),
        "{text}"
    );
}

#[test]
fn capl_reports_positions() {
    let err = capl::parse("on start {\n  x = ;\n}").unwrap_err();
    let text = err.to_string();
    assert!(text.contains("2:"), "{text}");
}

#[test]
fn dbc_reports_line_numbers() {
    let err = candb::parse("BU_: A\nBO_ 1 m: 8 A\n SG_ broken : zz").unwrap_err();
    assert_eq!(err.line, 3);
}

#[test]
fn checker_bounds_come_back_as_errors_not_panics() {
    let mut b = CheckerBuilder::new();
    b.max_states(3);
    let checker = b.build();
    let defs = csp::Definitions::new();
    let chain =
        csp::Process::prefix_chain((0..10).map(csp::EventId::from_index), csp::Process::Stop);
    let err = checker.compile(&chain, &defs).unwrap_err();
    assert!(err.to_string().contains("state space"), "{err}");
}

#[test]
fn unguarded_recursion_is_reported() {
    let mut defs = csp::Definitions::new();
    let d = defs.declare("P");
    defs.define(d, csp::Process::var(d));
    let err = Checker::new()
        .deadlock_free(&csp::Process::var(d), &defs)
        .unwrap_err();
    assert!(err.to_string().contains("unguarded"), "{err}");
}

#[test]
fn internal_errors_carry_the_panic_message_and_worker() {
    let with_worker = fdrlite::CheckError::Internal {
        message: "index out of bounds".to_owned(),
        worker: Some(3),
    };
    let text = with_worker.to_string();
    assert!(text.contains("internal checker error"), "{text}");
    assert!(text.contains("worker 3"), "{text}");
    assert!(text.contains("index out of bounds"), "{text}");

    let from_join = fdrlite::CheckError::Internal {
        message: "scope join".to_owned(),
        worker: None,
    };
    let text = from_join.to_string();
    assert!(text.contains("internal checker error"), "{text}");
    assert!(!text.contains("worker"), "no index when unknown: {text}");
    assert!(text.contains("scope join"), "{text}");
}

#[test]
fn pipeline_surfaces_semantic_diagnostics_without_failing() {
    // Undeclared variables are diagnostics, not hard failures: the model is
    // still produced (the variable is simply absent from the state vector).
    let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
    let out = pipeline
        .run(
            "variables { message reqSw a; } on message reqSw { ghost = 1; }",
            None,
        )
        .unwrap();
    assert!(out
        .diagnostics
        .iter()
        .any(|d| d.severity == capl::Severity::Error && d.message.contains("ghost")));
}

#[test]
fn simulator_attributes_runtime_errors_to_the_node() {
    let mut sim = canoe_sim::Simulation::new(None);
    sim.add_node("CRASHY", capl::parse("on start { x = 1 / 0; }").unwrap())
        .unwrap();
    // Division by zero is only reached if `x` resolves; make it a local.
    let mut sim2 = canoe_sim::Simulation::new(None);
    sim2.add_node(
        "CRASHY",
        capl::parse("variables { int x; } on start { x = 1 / 0; }").unwrap(),
    )
    .unwrap();
    let err = sim2.run_for(1000).unwrap_err();
    assert!(err.to_string().contains("CRASHY"), "{err}");
    assert!(err.to_string().contains("division"), "{err}");
    drop(sim);
}

#[test]
fn intruder_rejects_oversized_message_spaces() {
    let result = std::panic::catch_unwind(|| {
        let mut ab = csp::Alphabet::new();
        let mut defs = csp::Definitions::new();
        let names: Vec<String> = (0..20).map(|i| format!("m{i}")).collect();
        let mut b = secmod::Intruder::builder("EVE");
        for n in &names {
            b = b.message(n);
        }
        b.build(&mut ab, &mut defs)
    });
    assert!(result.is_err(), "17+ messages must be rejected");
}

#[test]
fn template_errors_name_the_missing_attribute() {
    let t = sttpl::Template::parse("$missing$").unwrap();
    let err = t.render(&sttpl::Value::map()).unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}

#[test]
fn normalisation_bound_is_reported() {
    // A spec whose subset construction exceeds a tiny bound.
    let mut b = CheckerBuilder::new();
    b.max_norm_nodes(2);
    let checker = b.build();
    let defs = csp::Definitions::new();
    let spec = csp::Process::prefix_chain((0..6).map(csp::EventId::from_index), csp::Process::Stop);
    let err = checker
        .trace_refinement(&spec, &spec.clone(), &defs)
        .unwrap_err();
    assert!(err.to_string().contains("normalisation"), "{err}");
}
