//! Fig. 1 reproduction: the complete workflow — ECU application code in the
//! (simulated) IDE, model extraction, composition with specification and
//! attacker models, refinement checking, counterexample feedback.

use auto_csp::fdrlite::Checker;
use auto_csp::ota::{messages, sources};
use translator::{Pipeline, TranslateConfig};

#[test]
fn the_workflow_of_fig1_runs_end_to_end() {
    // (1) ECU application created in the IDE → exported source + network db.
    let capl_source = sources::ECU_CAPL;
    let dbc_source = messages::NETWORK_DBC;

    // (2) Model extractor translates the application into CSPm.
    let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
    let out = pipeline.run(capl_source, Some(dbc_source)).unwrap();
    assert!(out.script.contains("ECU"), "{}", out.script);
    assert!(
        out.diagnostics
            .iter()
            .all(|d| d.severity != capl::Severity::Error),
        "{:?}",
        out.diagnostics
    );

    // (3) The implementation model is combined with a specification model…
    let mut defs = out.loaded.definitions().clone();
    let req = out.loaded.alphabet().lookup("rec.reqSw").unwrap();
    let rpt = out.loaded.alphabet().lookup("send.rptSw").unwrap();
    let req_app = out.loaded.alphabet().lookup("rec.reqApp").unwrap();
    let rpt_upd = out.loaded.alphabet().lookup("send.rptUpd").unwrap();
    let noise: csp::EventSet = [req_app, rpt_upd].into_iter().collect();
    let spec =
        fdrlite::properties::request_response_with_noise(&mut defs, "SP02", req, rpt, &noise);

    // (4) …and the refinement checker verifies it.
    let implementation = out.loaded.process(&out.entry).unwrap();
    let verdict = Checker::new()
        .trace_refinement(&spec, implementation, &defs)
        .unwrap();
    assert!(verdict.is_pass());
}

#[test]
fn counterexamples_feed_back_to_the_designer() {
    // The same workflow over a faulty application produces the Fig. 1
    // feedback artefact: a failure trace in terms of the designer's own
    // message names.
    let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
    let out = pipeline
        .run(sources::FAULTY_ECU_CAPL, Some(messages::NETWORK_DBC))
        .unwrap();
    let mut defs = out.loaded.definitions().clone();
    let req = out.loaded.alphabet().lookup("rec.reqSw").unwrap();
    let rpt = out.loaded.alphabet().lookup("send.rptSw").unwrap();
    let req_app = out.loaded.alphabet().lookup("rec.reqApp").unwrap();
    let rpt_upd = out.loaded.alphabet().lookup("send.rptUpd").unwrap();
    let noise: csp::EventSet = [req_app, rpt_upd].into_iter().collect();
    let spec =
        fdrlite::properties::request_response_with_noise(&mut defs, "SP02", req, rpt, &noise);
    let implementation = out.loaded.process(&out.entry).unwrap();
    let verdict = Checker::new()
        .trace_refinement(&spec, implementation, &defs)
        .unwrap();
    let cex = verdict.counterexample().expect("double report must fail");
    let feedback = cex.display(out.loaded.alphabet()).to_string();
    assert_eq!(
        feedback,
        "after ⟨rec.reqSw, send.rptSw⟩, the implementation performs `send.rptSw` \
         which the specification forbids"
    );
}

#[test]
fn stage_timings_are_reported_for_the_toolchain() {
    let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
    let out = pipeline
        .run(sources::ECU_CAPL, Some(messages::NETWORK_DBC))
        .unwrap();
    // All three stages ran and stayed within interactive budgets.
    assert!(out.timings.parse_us < 5_000_000);
    assert!(out.timings.translate_us < 5_000_000);
    assert!(out.timings.elaborate_us < 5_000_000);
}

#[test]
fn translation_report_documents_every_abstraction() {
    use translator::AbstractionKind::*;
    let src = "
        variables { message reqSw a; message rptSw b; int n = 0; }
        on message reqSw {
            if (this.reqType > 0) { output(b); } else { output(b); }
            n = this.reqType;
            while (n > 100) { n = n - 1; }
        }
    ";
    let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
    let out = pipeline.run(src, Some(messages::NETWORK_DBC)).unwrap();
    let kinds: Vec<_> = out.report.abstractions.iter().map(|a| a.kind).collect();
    assert!(kinds.contains(&NondeterministicCondition), "{kinds:?}");
    assert!(kinds.contains(&HavocAssignment), "{kinds:?}");
    assert!(kinds.contains(&UnboundedLoop), "{kinds:?}");
}
