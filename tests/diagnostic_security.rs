//! UDS SecurityAccess seed/key handshake under a replaying intruder: the
//! static-seed design is breached, the fresh-seed design is not.
//! (Integration-test form of `examples/diagnostic_security.rs`.)

use cspm::Script;
use fdrlite::Checker;

fn model(ecu_def: &str) -> String {
    format!(
        r#"
nametype SeedT = {{0..1}}
channel reqSeed
channel seed : SeedT
channel tkey : SeedT
channel key  : SeedT
channel unlock, reject
channel breach

{ecu_def}

TESTER = reqSeed -> seed?s -> tkey!s -> TESTER

MITM(known) =
     tkey?k -> key!k -> MITM(union(known, {{k}}))
  [] unlock -> MITM(known)
  [] reject -> MITM(known)
  [] ([] k : known @ key!k ->
        (unlock -> breach -> STOP [] reject -> MITM(known)))

HONEST = TESTER [| {{| reqSeed, seed |}} |] ECU0
ATTACKED = HONEST [| {{| tkey, key, unlock, reject |}} |] MITM({{}})

NO_BREACH = [] e : diff(Events, {{| breach |}}) @ e -> NO_BREACH

assert NO_BREACH [T= ATTACKED
"#
    )
}

const STATIC_ECU: &str = "
ECU(s) = reqSeed -> seed.s ->
         key?k -> (if k == s then unlock -> ECU(s) else reject -> ECU(s))
ECU0 = ECU(0)
";

const FRESH_ECU: &str = "
ECU(s) = reqSeed -> seed.s ->
         key?k -> (if k == s then unlock -> NEXT(s) else reject -> NEXT(s))
NEXT(s) = if s == 0 then ECU(1) else LOCKED
LOCKED = reqSeed -> LOCKED
ECU0 = ECU(0)
";

#[test]
fn static_seed_is_breached_by_replay() {
    let loaded = Script::parse(&model(STATIC_ECU)).unwrap().load().unwrap();
    let results = loaded.check(&Checker::new()).unwrap();
    let cex = results[0]
        .verdict
        .counterexample()
        .expect("static seed must be breachable");
    let shown = cex.display(loaded.alphabet()).to_string();
    // The witness is a full honest exchange followed by the replayed key.
    assert!(shown.contains("tkey.0, key.0, unlock"), "{shown}");
    assert!(shown.contains("seed.0, key.0, unlock⟩"), "{shown}");
}

#[test]
fn fresh_seed_defeats_replay() {
    let loaded = Script::parse(&model(FRESH_ECU)).unwrap().load().unwrap();
    let results = loaded.check(&Checker::new()).unwrap();
    assert!(
        results[0].verdict.is_pass(),
        "{:?}",
        results[0]
            .verdict
            .counterexample()
            .map(|c| c.display(loaded.alphabet()).to_string())
    );
}

#[test]
fn honest_exchange_unlocks_in_both_designs() {
    for ecu in [STATIC_ECU, FRESH_ECU] {
        let loaded = Script::parse(&model(ecu)).unwrap().load().unwrap();
        let attacked = loaded.process("ATTACKED").unwrap().clone();
        let lts = csp::Lts::build(attacked, loaded.definitions(), 500_000).unwrap();
        let step = |n: &str| loaded.alphabet().lookup(n).unwrap();
        let honest = ["reqSeed", "seed.0", "tkey.0", "key.0", "unlock"].map(step);
        assert!(csp::traces::has_trace(&lts, &honest));
    }
}
