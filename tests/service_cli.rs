//! End-to-end acceptance of `autocsp serve`: the checking service survives a
//! SIGKILLed worker and a SIGTERMed service process with verdicts
//! byte-identical to a serial `autocsp run` over the same manifest. This is
//! the repo's headline robustness guarantee lifted to the deployment shape:
//! infrastructure loss costs time, never a verdict.
#![cfg(unix)]

use std::fmt::Write as _;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use diag::json::{self, Value};
use service::http::client_request;

fn autocsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocsp"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autocsp-serve-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// An interleaving of eight 4-event cycles: 65 536 reachable states, a few
/// seconds of serial exploration in a debug build — long enough that a
/// signal aimed at a busy worker reliably lands mid-exploration.
fn model_source() -> String {
    let procs = 8;
    let events: Vec<String> = (0..procs)
        .flat_map(|p| (0..4).map(move |i| format!("e{p}_{i}")))
        .collect();
    let mut out = format!("channel {}\n", events.join(", "));
    for p in 0..procs {
        let chain: Vec<String> = (0..4).map(|i| format!("e{p}_{i}")).collect();
        let _ = writeln!(out, "P{p} = {} -> P{p}", chain.join(" -> "));
    }
    let sys: Vec<String> = (0..procs).map(|p| format!("P{p}")).collect();
    let _ = writeln!(out, "SYS = {}", sys.join(" ||| "));
    let runall: Vec<String> = events.iter().map(|e| format!("{e} -> RUNALL")).collect();
    let _ = writeln!(out, "RUNALL = {}", runall.join(" [] "));
    out.push_str("assert RUNALL [T= SYS\n");
    out
}

const MANIFEST: &str = "[run]\nthreads = 1\n\n\
                        [[job]]\nname = \"big\"\nkind = \"check\"\nscript = \"big.csp\"\n";

fn write_inputs(dir: &Path) {
    fs::write(dir.join("big.csp"), model_source()).expect("write model");
    fs::write(dir.join("jobs.toml"), MANIFEST).expect("write manifest");
}

/// The serial `autocsp run` verdict lines for the manifest's one job —
/// the reference every service run must reproduce byte for byte.
fn reference_lines() -> &'static Vec<String> {
    static REF: OnceLock<Vec<String>> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = scratch("reference");
        write_inputs(&dir);
        let out = autocsp()
            .args([
                "run",
                dir.join("jobs.toml").to_str().unwrap(),
                "--format",
                "json",
                "--no-cache",
            ])
            .output()
            .expect("autocsp runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("run json");
        let job = &doc.get("jobs").unwrap().as_array().unwrap()[0];
        assert_eq!(job.get("status").and_then(Value::as_str), Some("passed"));
        job.get("lines")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|l| l.as_str().unwrap().to_string())
            .collect()
    })
}

/// Spawn `autocsp serve` and read the bound address off its first stdout
/// line (the machine-readable handoff).
fn spawn_serve(dir: &Path, state: &Path) -> (Child, String) {
    let mut child = autocsp()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--state-dir",
            state.to_str().unwrap(),
            "--scripts-root",
            dir.to_str().unwrap(),
            "--heartbeat-ms",
            "50",
            "--checkpoint-every",
            "2000",
            "--threads",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut line)
        .expect("read handoff line");
    let addr = line
        .trim()
        .strip_prefix("autocsp serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected handoff line: {line:?}"))
        .to_string();
    (child, addr)
}

fn signal(pid: u32, sig: &str) {
    let status = Command::new("kill")
        .args([sig, &pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill {sig} {pid}");
}

fn submit(addr: &str) -> String {
    let (status, body) = client_request(addr, "POST", "/v1/jobs", MANIFEST).unwrap();
    assert_eq!(status, 202, "{body}");
    json::parse(&body)
        .unwrap()
        .get("jobs")
        .unwrap()
        .as_array()
        .unwrap()[0]
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

fn health(addr: &str) -> Value {
    let (status, body) = client_request(addr, "GET", "/v1/health", "").unwrap();
    assert_eq!(status, 200, "{body}");
    json::parse(&body).unwrap()
}

/// Poll `/v1/health` until some worker reports itself busy, returning its
/// pid. The 65k-state job keeps a worker busy for seconds, so this never
/// races the verdict.
fn wait_for_busy_worker(addr: &str) -> u32 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let doc = health(addr);
        let workers = doc.get("workers").unwrap().as_array().unwrap();
        if let Some(w) = workers
            .iter()
            .find(|w| w.get("busy").unwrap().as_str().is_some())
        {
            return u32::try_from(w.get("pid").unwrap().as_u64().unwrap()).unwrap();
        }
        assert!(Instant::now() < deadline, "no worker ever went busy");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_done_lines(addr: &str, id: &str) -> Vec<String> {
    let (status, body) =
        client_request(addr, "GET", &format!("/v1/jobs/{id}?wait=120"), "").unwrap();
    assert_eq!(status, 200, "{body}");
    let view = json::parse(&body).unwrap();
    assert_eq!(
        view.get("state").and_then(Value::as_str),
        Some("done"),
        "{body}"
    );
    assert_eq!(
        view.get("status").and_then(Value::as_str),
        Some("passed"),
        "{body}"
    );
    view.get("lines")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .map(|l| l.as_str().unwrap().to_string())
        .collect()
}

#[test]
fn sigkilled_worker_hands_off_to_reference_verdicts() {
    let dir = scratch("kill");
    write_inputs(&dir);
    let state = dir.join("state");
    let (mut serve, addr) = spawn_serve(&dir, &state);

    let id = submit(&addr);
    let victim = wait_for_busy_worker(&addr);
    assert_ne!(
        victim,
        serve.id(),
        "victim must be a worker, not the service"
    );
    signal(victim, "-9");

    let lines = wait_done_lines(&addr, &id);
    assert_eq!(&lines, reference_lines(), "handed-off verdict diverged");
    let doc = health(&addr);
    let lost = doc
        .get("counters")
        .and_then(|c| c.get("workers_lost"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(lost >= 1, "the SIGKILL was never noticed");

    // Nothing pending: SIGTERM is a clean exit 0.
    signal(serve.id(), "-TERM");
    let status = serve.wait().expect("serve exits");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn sigterm_drains_and_restart_resumes_to_reference_verdicts() {
    let dir = scratch("drain");
    write_inputs(&dir);
    let state = dir.join("state");
    let (mut serve, addr) = spawn_serve(&dir, &state);

    let id = submit(&addr);
    wait_for_busy_worker(&addr);
    signal(serve.id(), "-TERM");
    let status = serve.wait().expect("serve exits");
    // Mid-exploration SIGTERM drains the job to its checkpoint and defers
    // it (exit 3). If the verdict won an unlikely race, the exit is 0 and
    // the restart below simply replays it from the journal.
    assert!(
        matches!(status.code(), Some(0 | 3)),
        "unexpected serve exit {:?}",
        status.code()
    );

    let (mut serve, addr) = spawn_serve(&dir, &state);
    let lines = wait_done_lines(&addr, &id);
    assert_eq!(&lines, reference_lines(), "resumed verdict diverged");

    signal(serve.id(), "-TERM");
    let status = serve.wait().expect("serve exits");
    assert_eq!(status.code(), Some(0));
}
