//! Golden tests for rendered lint diagnostics and end-to-end acceptance of
//! `autocsp lint` over the seeded-defect fixtures in `examples/lint/`.

use std::path::PathBuf;
use std::process::Command;

fn autocsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocsp"))
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/lint")
        .join(name)
}

// ---------------------------------------------------------------------------
// Golden rendering: the exact text a finding produces, excerpt and caret
// included, is part of the tool's contract.
// ---------------------------------------------------------------------------

#[test]
fn dead_store_renders_with_excerpt_and_caret() {
    let source = "on start {\n  int unused;\n  unused = 7;\n}\n";
    let program = capl::parse(source).unwrap();
    let diags = lint::lint_program(&program);
    let dead = diags
        .iter()
        .find(|d| d.code == lint::codes::DEAD_STORE)
        .expect("dead store reported");
    let rendered = dead.render("app.can", source);
    let expected = "\
warning[CAPL012]: value of local `unused` is never read
  --> app.can:2:3
  |
2 |   int unused;
  |   ^^^^^^
  note: remove the variable or the stores into it
";
    assert_eq!(rendered, expected);
}

#[test]
fn one_sided_sync_renders_with_deadlock_note() {
    let source = "channel a, b\nP = a -> P\nQ = b -> Q\nSYS = P [| {a} |] Q\n";
    let script = cspm::Script::parse(source).unwrap();
    let diags = lint::lint_module(script.module());
    let sync = diags
        .iter()
        .find(|d| d.code == lint::codes::SYNC_ONE_SIDED)
        .expect("one-sided sync reported");
    let rendered = sync.render("model.csp", source);
    let expected = "\
warning[CSP201]: channel `a` is in the synchronisation set but only the left side of the parallel can perform it
  --> model.csp:4:1
  |
4 | SYS = P [| {a} |] Q
  | ^^^
  note: the right side never offers `a`, so every `a` event deadlocks the composition
";
    assert_eq!(rendered, expected);
}

#[test]
fn cross_check_mismatch_renders_against_the_capl_source() {
    let source = "variables {\n  message bogusCmd m;\n}\non message bogusCmd { output(m); }\n";
    let dbc = "BU_: ECU\nBO_ 256 reqSw: 8 ECU\n SG_ x : 0|8@1+ (1,0) [0|255] \"\" ECU\n";
    let program = capl::parse(source).unwrap();
    let db = candb::parse(dbc).unwrap();
    let diags = lint::cross_check(&program, &db);
    let miss = diags
        .iter()
        .find(|d| d.code == lint::codes::UNKNOWN_DB_MESSAGE)
        .expect("unknown database message reported");
    assert_eq!(miss.severity, lint::Severity::Error);
    assert_eq!((miss.span.line, miss.span.col), (2, 3));
    let rendered = miss.render("app.can", source);
    assert!(rendered.contains("error[DBC101]"), "{rendered}");
    assert!(rendered.contains("message bogusCmd m;"), "{rendered}");
}

#[test]
fn seeded_defect_fixtures_have_stable_codes_and_spans() {
    let capl_src = std::fs::read_to_string(fixture("defective.can")).unwrap();
    let dbc_src = std::fs::read_to_string(fixture("net.dbc")).unwrap();
    let csp_src = std::fs::read_to_string(fixture("onesided.csp")).unwrap();

    let program = capl::parse(&capl_src).unwrap();
    let db = candb::parse(&dbc_src).unwrap();
    let mut diags = lint::lint_program(&program);
    diags.extend(lint::cross_check(&program, &db));

    let code_at = |code: lint::Code| {
        diags
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("{code:?} not reported: {diags:?}"))
    };
    // Undeclared message used by output() — the acceptance finding.
    assert_eq!(code_at(lint::codes::UNDECLARED_MESSAGE).span.line, 11);
    // Cross-check mismatch points at the declaration of the bogus message.
    assert_eq!(code_at(lint::codes::UNKNOWN_DB_MESSAGE).span.line, 6);
    // Dataflow findings anchor at the declarations they concern.
    assert_eq!(code_at(lint::codes::USE_BEFORE_INIT).span.line, 12);
    assert_eq!(code_at(lint::codes::DEAD_STORE).span.line, 13);
    assert_eq!(code_at(lint::codes::TIMER_WITHOUT_HANDLER).span.line, 7);

    let script = cspm::Script::parse(&csp_src).unwrap();
    let csp_diags = lint::lint_module(script.module());
    let sided: Vec<_> = csp_diags
        .iter()
        .filter(|d| d.code == lint::codes::SYNC_ONE_SIDED)
        .collect();
    assert_eq!(sided.len(), 2, "{csp_diags:?}");
    assert!(sided.iter().all(|d| d.span.line == 9), "{sided:?}");
}

// ---------------------------------------------------------------------------
// CLI acceptance: one invocation surfaces a CAPL finding, a database
// cross-check mismatch, and a CSP alphabet-coverage warning; exit codes and
// JSON output behave as documented.
// ---------------------------------------------------------------------------

#[test]
fn lint_cli_reports_all_three_classes_and_fails() {
    let out = autocsp()
        .arg("lint")
        .arg(fixture("defective.can"))
        .arg(fixture("onesided.csp"))
        .arg("--dbc")
        .arg(fixture("net.dbc"))
        .output()
        .unwrap();
    assert!(!out.status.success(), "defects must fail the lint run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning[CAPL008]"), "{stdout}");
    assert!(stdout.contains("error[DBC101]"), "{stdout}");
    assert!(stdout.contains("warning[CSP201]"), "{stdout}");
    assert!(stdout.contains("deadlock"), "{stdout}");
}

#[test]
fn lint_cli_emits_valid_json() {
    let out = autocsp()
        .arg("lint")
        .arg(fixture("defective.can"))
        .arg(fixture("onesided.csp"))
        .arg("--dbc")
        .arg(fixture("net.dbc"))
        .args(["--format", "json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).unwrap_or_else(|e| panic!("{e}: {stdout}"));
    let json::Value::Object(top) = value else {
        panic!("top level is not an object: {stdout}")
    };
    let keys: Vec<_> = top.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["diagnostics", "errors", "warnings"]);
    let json::Value::Array(diags) = &top[0].1 else {
        panic!("diagnostics is not an array")
    };
    let codes: Vec<&str> = diags
        .iter()
        .filter_map(|d| match d {
            json::Value::Object(fields) => fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("code", json::Value::String(s)) => Some(s.as_str()),
                _ => None,
            }),
            _ => None,
        })
        .collect();
    assert!(codes.contains(&"CAPL008"), "{codes:?}");
    assert!(codes.contains(&"DBC101"), "{codes:?}");
    assert!(codes.contains(&"CSP201"), "{codes:?}");
}

#[test]
fn lint_cli_clean_fixtures_pass_deny_warnings() {
    let out = autocsp()
        .arg("lint")
        .arg(fixture("clean.can"))
        .arg(fixture("clean.csp"))
        .arg("--dbc")
        .arg(fixture("net.dbc"))
        .arg("--deny-warnings")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn lint_cli_deny_warnings_escalates_warnings() {
    let dir = std::env::temp_dir().join(format!("autocsp-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let warn_only = dir.join("warn.can");
    std::fs::write(&warn_only, "on start { int unused; unused = 7; }\n").unwrap();

    let out = autocsp().arg("lint").arg(&warn_only).output().unwrap();
    assert!(out.status.success(), "warnings alone must not fail");

    let out = autocsp()
        .arg("lint")
        .arg(&warn_only)
        .arg("--deny-warnings")
        .output()
        .unwrap();
    assert!(!out.status.success(), "--deny-warnings must escalate");
}

#[test]
fn lint_cli_surfaces_parse_errors_as_diagnostics() {
    let dir = std::env::temp_dir().join(format!("autocsp-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let broken = dir.join("broken.can");
    std::fs::write(&broken, "on message { ???").unwrap();
    let out = autocsp().arg("lint").arg(&broken).output().unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[CAPL000]"), "{stdout}");
}

/// A minimal recursive-descent JSON reader, enough to *validate* the CLI's
/// `--format json` output and pull fields out of it. Kept local to the test:
/// the workspace deliberately has no JSON dependency.
mod json {
    #[derive(Debug)]
    pub(crate) enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        String(String),
        // Parsed for validation; the tests only inspect strings.
        #[allow(dead_code)]
        Number(f64),
        #[allow(dead_code)]
        Bool(bool),
        Null,
    }

    pub(crate) fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            text,
        };
        let v = p.value()?;
        p.skip_ws();
        match p.chars.next() {
            None => Ok(v),
            Some((i, c)) => Err(format!("trailing `{c}` at byte {i}")),
        }
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::CharIndices<'a>>,
        text: &'a str,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
                self.chars.next();
            }
        }

        fn expect(&mut self, want: char) -> Result<(), String> {
            self.skip_ws();
            match self.chars.next() {
                Some((_, c)) if c == want => Ok(()),
                other => Err(format!("expected `{want}`, got {other:?}")),
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.chars.peek().copied() {
                Some((_, '{')) => self.object(),
                Some((_, '[')) => self.array(),
                Some((_, '"')) => Ok(Value::String(self.string()?)),
                Some((_, 't')) => self.keyword("true", Value::Bool(true)),
                Some((_, 'f')) => self.keyword("false", Value::Bool(false)),
                Some((_, 'n')) => self.keyword("null", Value::Null),
                Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?}")),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect('{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if matches!(self.chars.peek(), Some((_, '}'))) {
                self.chars.next();
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(':')?;
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.chars.next() {
                    Some((_, ',')) => continue,
                    Some((_, '}')) => return Ok(Value::Object(fields)),
                    other => return Err(format!("expected `,` or `}}`, got {other:?}")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect('[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if matches!(self.chars.peek(), Some((_, ']'))) {
                self.chars.next();
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.chars.next() {
                    Some((_, ',')) => continue,
                    Some((_, ']')) => return Ok(Value::Array(items)),
                    other => return Err(format!("expected `,` or `]`, got {other:?}")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.chars.next() {
                    Some((_, '"')) => return Ok(out),
                    Some((_, '\\')) => match self.chars.next() {
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        Some((_, '/')) => out.push('/'),
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 'r')) => out.push('\r'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, 'b')) => out.push('\u{8}'),
                        Some((_, 'f')) => out.push('\u{c}'),
                        Some((_, 'u')) => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, c) = self.chars.next().ok_or("truncated \\u escape")?;
                                code = code * 16
                                    + c.to_digit(16).ok_or_else(|| format!("bad hex `{c}`"))?;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some((_, c)) if (c as u32) < 0x20 => {
                        return Err(format!("raw control character {:#x} in string", c as u32))
                    }
                    Some((_, c)) => out.push(c),
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.chars.peek().map_or(self.text.len(), |(i, _)| *i);
            let mut end = start;
            while let Some((i, c)) = self.chars.peek().copied() {
                if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                    end = i + c.len_utf8();
                    self.chars.next();
                } else {
                    break;
                }
            }
            self.text[start..end]
                .parse()
                .map(Value::Number)
                .map_err(|e| format!("bad number: {e}"))
        }

        fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
            for want in word.chars() {
                match self.chars.next() {
                    Some((_, c)) if c == want => {}
                    other => return Err(format!("expected `{word}`, got {other:?}")),
                }
            }
            Ok(value)
        }
    }
}
