//! Property tests for the fault-injection engine's two boundary laws:
//!
//! * a plan with **zero active faults** is observationally equivalent to
//!   the default [`PassThrough`](auto_csp::canoe_sim::PassThrough)
//!   interceptor — byte-identical traces across random CAPL networks,
//!   seeds and run lengths (both for an empty plan and for a plan whose
//!   only fault is gated by an empty trigger window);
//! * a **drop-all** plan delivers nothing: no `on message` handler ever
//!   runs, however chatty the network is.

use auto_csp::canoe_sim::{Simulation, TraceEvent};
use auto_csp::faults::{apply_plan, FaultPlan};
use auto_csp::{candb, capl};
use proptest::prelude::*;

const NET_DBC: &str = include_str!("../examples/faults/net.dbc");

/// A small two-node CAPL network, parameterised so different inputs give
/// genuinely different bus schedules: the gateway fires `reqSw` from a
/// timer `repeats` times with period `period_ms`, and the responder
/// answers each with `rptSw` (and optionally chains a `rptUpd`).
fn capl_network(period_ms: u32, repeats: u32, chatty: bool) -> (String, String) {
    let gateway = format!(
        "variables {{ message reqSw req; msTimer tick; int fired = 0; }}\n\
         on start {{ output(req); setTimer(tick, {period_ms}); }}\n\
         on timer tick {{\n\
           fired = fired + 1;\n\
           output(req);\n\
           if (fired < {repeats}) {{ setTimer(tick, {period_ms}); }}\n\
         }}\n"
    );
    let chain = if chatty {
        "variables { message rptSw rpt; message rptUpd upd; }\n\
         on message reqSw { output(rpt); output(upd); }\n"
    } else {
        "variables { message rptSw rpt; }\n\
         on message reqSw { output(rpt); }\n"
    };
    (gateway, chain.to_string())
}

fn build_sim(gateway: &str, responder: &str) -> Simulation {
    let db = candb::parse(NET_DBC).expect("example database parses");
    let mut sim = Simulation::new(Some(db));
    sim.add_node("GW", capl::parse(gateway).expect("gateway parses"))
        .unwrap();
    sim.add_node("RSP", capl::parse(responder).expect("responder parses"))
        .unwrap();
    sim
}

/// A plan with no `[[fault]]` entries at all.
const EMPTY_PLAN: &str = "[plan]\nname = \"empty\"\n";

/// A plan whose only fault can never fire: its window is empty. (The
/// linter flags this as SIM304 — which is exactly the point: an inert
/// fault must also be a *harmless* one.)
const INERT_PLAN: &str = "[plan]\n\
                          name = \"inert\"\n\
                          [[fault]]\n\
                          name = \"never\"\n\
                          kind = \"drop\"\n\
                          window = [5000, 5000]\n";

/// Drop every frame unconditionally.
const DROP_ALL_PLAN: &str = "[plan]\n\
                             name = \"blackout\"\n\
                             [[fault]]\n\
                             name = \"jam\"\n\
                             kind = \"drop\"\n";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero active faults ⇒ trace-identical to `PassThrough`, whatever the
    /// program shape, seed or run length.
    #[test]
    fn zero_active_faults_is_passthrough(
        period_ms in 1u32..8,
        repeats in 1u32..5,
        chatty in any::<bool>(),
        seed in any::<u64>(),
        run_ms in 20u64..80,
    ) {
        let (gw, rsp) = capl_network(period_ms, repeats, chatty);

        // Reference: the simulator's default PassThrough interceptor.
        let mut reference = build_sim(&gw, &rsp);
        reference.set_seed(seed);
        reference.run_for(run_ms * 1000).unwrap();

        for plan_src in [EMPTY_PLAN, INERT_PLAN] {
            let plan = FaultPlan::parse(plan_src).unwrap();
            let mut faulted = build_sim(&gw, &rsp);
            apply_plan(&mut faulted, &plan, Some(seed)).unwrap();
            faulted.run_for(run_ms * 1000).unwrap();
            prop_assert_eq!(reference.trace(), faulted.trace());
        }
    }

    /// A drop-all plan delivers nothing: frames are transmitted (the bus
    /// grant happens before interception) but no node ever receives one.
    #[test]
    fn drop_all_delivers_nothing(
        period_ms in 1u32..8,
        repeats in 1u32..5,
        chatty in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (gw, rsp) = capl_network(period_ms, repeats, chatty);
        let mut sim = build_sim(&gw, &rsp);
        apply_plan(&mut sim, &FaultPlan::parse(DROP_ALL_PLAN).unwrap(), Some(seed)).unwrap();
        sim.run_for(80_000).unwrap();

        let receives = sim
            .trace()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Receive { .. }))
            .count();
        prop_assert_eq!(receives, 0);

        // The responder can only ever act on a received frame, so it must
        // transmit nothing at all.
        let responder_tx = sim
            .trace()
            .iter()
            .filter(|e| matches!(&e.event, TraceEvent::Transmit { node, .. } if node == "RSP"))
            .count();
        prop_assert_eq!(responder_tx, 0);

        // And every frame the gateway put on the bus was logged as dropped.
        let drops = sim
            .trace()
            .iter()
            .filter(|e| e.event.fault_name() == Some("jam"))
            .count();
        let transmits = sim
            .trace()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Transmit { .. }))
            .count();
        prop_assert_eq!(drops, transmits);
    }
}
