//! Fig. 2 reproduction: the scope of the demonstration system — VMG and ECU
//! composed over the update-path messages — with its structural statistics
//! and end-to-end behaviour.

use auto_csp::fdrlite::Checker;
use auto_csp::ota::{sources, system::OtaSystem};
use csp::Lts;
use translator::{NodeSpec, SystemBuilder};

#[test]
fn fig2_scope_contains_vmg_ecu_and_their_messages() {
    let study = OtaSystem::build().unwrap();
    let script = study.script();
    assert!(script.contains("VMG"), "{script}");
    assert!(script.contains("ECU"), "{script}");
    for event in ["rec.reqSw", "send.rptSw", "rec.reqApp", "send.rptUpd"] {
        assert!(study.event(event).is_some(), "missing {event}");
    }
    // The update server is out of scope in Fig. 2.
    assert!(study.event("rec.update").is_none());
}

#[test]
fn system_state_space_statistics() {
    let study = OtaSystem::build().unwrap();
    let lts = Lts::build(study.system().clone(), study.definitions(), 100_000).unwrap();
    // The composed update cycle is small and finite; pin the order of
    // magnitude so regressions in the composition rules are caught.
    assert!(lts.state_count() >= 4, "{}", lts.state_count());
    assert!(lts.state_count() <= 64, "{}", lts.state_count());
    assert!(lts.transition_count() >= lts.state_count() - 1);
}

#[test]
fn component_models_refine_into_the_system() {
    // Each component's contribution is visible in the composed traces.
    let study = OtaSystem::build().unwrap();
    let lts = Lts::build(study.system().clone(), study.definitions(), 100_000).unwrap();
    let full_cycle = study.comm_events().unwrap();
    assert!(csp::traces::has_trace(&lts, &full_cycle));
    // But no response can precede its request.
    let rpt_first = [study.event("send.rptSw").unwrap()];
    assert!(!csp::traces::has_trace(&lts, &rpt_first));
}

#[test]
fn system_is_divergence_free_and_deterministic() {
    let study = OtaSystem::build().unwrap();
    let checker = Checker::new();
    assert!(checker
        .divergence_free(study.system(), study.definitions())
        .unwrap()
        .is_pass());
    assert!(checker
        .deterministic(study.system(), study.definitions())
        .unwrap()
        .is_pass());
}

#[test]
fn buffered_network_variant_also_completes_the_cycle() {
    let db = auto_csp::ota::messages::database();
    let out = SystemBuilder::new()
        .database(db)
        .buffered(2)
        .node(NodeSpec::gateway(
            "VMG",
            capl::parse(sources::VMG_CAPL).unwrap(),
        ))
        .node(NodeSpec::ecu(
            "ECU",
            capl::parse(sources::ECU_CAPL).unwrap(),
        ))
        .build()
        .unwrap();
    let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
    let system = loaded.process("SYSTEM").unwrap().clone();
    let lts = Lts::build(system, loaded.definitions(), 1_000_000).unwrap();
    let step = |n: &str| loaded.alphabet().lookup(n).unwrap();
    let cycle = [
        "rec.reqSw",
        "recd.reqSw",
        "send.rptSw",
        "sendd.rptSw",
        "rec.reqApp",
        "recd.reqApp",
        "send.rptUpd",
        "sendd.rptUpd",
    ]
    .map(step);
    assert!(csp::traces::has_trace(&lts, &cycle));
}

#[test]
fn three_node_composition_with_the_update_server() {
    // §VIII-A: composite models beyond two nodes. Server and ECU share the
    // ECU orientation; their message sets are disjoint, so alphabetised
    // composition keeps the hops separate.
    let db = auto_csp::ota::messages::database();
    let out = SystemBuilder::new()
        .database(db)
        .node(NodeSpec::gateway(
            "VMG",
            capl::parse(sources::VMG_FULL_CAPL).unwrap(),
        ))
        .node(NodeSpec::ecu(
            "ECU",
            capl::parse(sources::ECU_CAPL).unwrap(),
        ))
        .node(NodeSpec::ecu(
            "Server",
            capl::parse(sources::SERVER_CAPL).unwrap(),
        ))
        .build()
        .unwrap();
    let loaded = cspm::Script::parse(&out.script)
        .unwrap_or_else(|e| panic!("{e}\n{}", out.script))
        .load()
        .unwrap_or_else(|e| panic!("{e}\n{}", out.script));
    let system = loaded.process("SYSTEM").unwrap().clone();
    let lts = Lts::build(system, loaded.definitions(), 1_000_000).unwrap();
    let step = |n: &str| {
        loaded
            .alphabet()
            .lookup(n)
            .unwrap_or_else(|| panic!("missing event {n} in\n{}", out.script))
    };
    // The full X.1373 loop: check → update → inventory → apply → report.
    let full_loop = [
        "rec.update_check",
        "send.update",
        "rec.reqSw",
        "send.rptSw",
        "rec.reqApp",
        "send.rptUpd",
        "rec.update_report",
    ]
    .map(step);
    assert!(csp::traces::has_trace(&lts, &full_loop));
}
