//! Table III reproduction: requirements R01–R05 as refinement checks.
//!
//! * On the honest system every requirement passes.
//! * Under each attack scenario the matching requirement fails with a
//!   counterexample trace (the Fig. 1 feedback artefact).
//! * R05 (shared keys) is exercised through the MAC-secured model: with
//!   verification the authentication assertion holds; without it the forged
//!   update is accepted.

use auto_csp::fdrlite::{Checker, RefinementModel, Verdict};
use auto_csp::ota::{attacks, requirements, secured, system::OtaSystem};

fn run(req: &requirements::Requirement, study: &OtaSystem) -> Verdict {
    let checker = Checker::new();
    match req.model {
        RefinementModel::Traces => checker
            .trace_refinement(&req.spec, &req.scoped_system, study.definitions())
            .unwrap(),
        RefinementModel::Failures => checker
            .failures_refinement(&req.spec, &req.scoped_system, study.definitions())
            .unwrap(),
    }
}

#[test]
fn r01_to_r04_pass_on_the_honest_system() {
    let mut study = OtaSystem::build().unwrap();
    let reqs = requirements::all(&mut study).unwrap();
    let ids: Vec<&str> = reqs.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec!["R01", "R02", "R03", "R04"]);
    for req in &reqs {
        let verdict = run(req, &study);
        assert!(
            verdict.is_pass(),
            "{} ({}) failed: {:?}",
            req.id,
            req.text,
            verdict
                .counterexample()
                .map(|c| c.display(study.alphabet()).to_string())
        );
    }
}

#[test]
fn sp02_the_papers_literal_property_passes() {
    let mut study = OtaSystem::build().unwrap();
    let req = requirements::sp02(&mut study).unwrap();
    assert!(run(&req, &study).is_pass());
}

#[test]
fn r05_shared_keys_hold_in_the_mac_model() {
    let results = secured::check_script(secured::MAC_SCRIPT, &Checker::new()).unwrap();
    assert!(results.iter().all(|r| r.verdict.is_pass()));
    // And in the signature variant (the paper's planned extension).
    let results = secured::check_script(secured::SIGNATURE_SCRIPT, &Checker::new()).unwrap();
    assert!(results.iter().all(|r| r.verdict.is_pass()));
}

#[test]
fn r05_fails_without_verification() {
    let results = secured::check_script(secured::INSECURE_SCRIPT, &Checker::new()).unwrap();
    assert!(results.iter().any(|r| !r.verdict.is_pass()));
}

#[test]
fn every_attack_violates_its_requirement_with_a_counterexample() {
    let mut study = OtaSystem::build().unwrap();
    let scenarios = attacks::scenarios(&mut study).unwrap();
    let kinds: Vec<attacks::AttackKind> = scenarios.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![
            attacks::AttackKind::Forge,
            attacks::AttackKind::Replay,
            attacks::AttackKind::Drop
        ]
    );
    for sc in &scenarios {
        let verdict = run(&sc.requirement, &study);
        let cex = verdict
            .counterexample()
            .unwrap_or_else(|| panic!("{:?} should violate {}", sc.kind, sc.requirement.id));
        // The counterexample renders with real event names — the feedback
        // loop of Fig. 1.
        let shown = cex.display(study.alphabet()).to_string();
        assert!(shown.contains("after ⟨"), "{shown}");
    }
}

#[test]
fn replay_counterexample_contains_the_duplicate_delivery() {
    let mut study = OtaSystem::build().unwrap();
    let scenarios = attacks::scenarios(&mut study).unwrap();
    let replay = scenarios
        .iter()
        .find(|s| s.kind == attacks::AttackKind::Replay)
        .unwrap();
    let verdict = run(&replay.requirement, &study);
    let shown = verdict
        .counterexample()
        .unwrap()
        .display(study.alphabet())
        .to_string();
    // The witness contains a duplicated delivery: some message was
    // delivered to the ECU more often than the VMG sent it.
    let replayed = ["reqSw", "reqApp"].iter().any(|m| {
        shown.matches(&format!("dlv.{m}")).count() > shown.matches(&format!("rec.{m}")).count()
    });
    assert!(replayed, "{shown}");
}
