//! Mutation adequacy of the Table III requirement suite: behavioural
//! mutants of the ECU application must each be *killed* (detected) by at
//! least one requirement check at component level.
//!
//! Omission mutants (a response that never comes) are invisible in the
//! prefix-closed traces model — they are caught in the stable-failures
//! model, which is exactly why `fdrlite` implements `⊑F` alongside the
//! paper's `⊑T`.

use csp::{EventSet, Process};
use fdrlite::Checker;
use translator::{Pipeline, TranslateConfig};

struct EcuModel {
    ecu: Process,
    defs: csp::Definitions,
    req_sw: csp::EventId,
    rpt_sw: csp::EventId,
    req_app: csp::EventId,
    rpt_upd: csp::EventId,
}

fn extract(capl_src: &str) -> EcuModel {
    let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
    let out = pipeline
        .run(capl_src, Some(ota::messages::NETWORK_DBC))
        .unwrap();
    // Mutants may never perform some event; intern it anyway so the spec
    // can still talk about it (fresh ids are consistent extensions).
    let mut alphabet = out.loaded.alphabet().clone();
    EcuModel {
        ecu: out.loaded.process(&out.entry).unwrap().clone(),
        defs: out.loaded.definitions().clone(),
        req_sw: alphabet.intern("rec.reqSw"),
        rpt_sw: alphabet.intern("send.rptSw"),
        req_app: alphabet.intern("rec.reqApp"),
        rpt_upd: alphabet.intern("send.rptUpd"),
    }
}

/// Response liveness: after `req`, `rsp` must be *offered* — but the
/// process is never obliged to accept a new request (the internal STOP
/// branch makes the idle state refusable). The weakest failures-model spec
/// that still kills response-omission mutants.
fn responds(
    defs: &mut csp::Definitions,
    name: &str,
    req: csp::EventId,
    rsp: csp::EventId,
) -> Process {
    let idle = defs.declare(name);
    defs.define(
        idle,
        Process::internal_choice(
            Process::prefix(req, Process::prefix(rsp, Process::var(idle))),
            Process::Stop,
        ),
    );
    Process::var(idle)
}

/// Run the component-level requirement suite; returns the ids that failed.
fn killed_by(model: &mut EcuModel) -> Vec<&'static str> {
    let checker = Checker::new();
    let mut killers = Vec::new();

    // R02 (failures model): a request must be answerable by exactly one
    // response. Noise is granted through an interleaved CHAOS so that the
    // implementation is not *obliged* to offer it (the right spec shape for
    // the failures model).
    let noise02: EventSet = [model.req_app, model.rpt_upd].into_iter().collect();
    let r02 = Process::interleave(
        responds(&mut model.defs, "M_R02", model.req_sw, model.rpt_sw),
        fdrlite::properties::chaos(&mut model.defs, "M_R02N", &noise02),
    );
    if !checker
        .failures_refinement(&r02, &model.ecu, &model.defs)
        .unwrap()
        .is_pass()
    {
        killers.push("R02");
    }

    // R03 (traces): no update result before an apply request.
    let universe: EventSet = [model.req_sw, model.rpt_sw, model.req_app, model.rpt_upd]
        .into_iter()
        .collect();
    let r03 = fdrlite::properties::precedes(
        &mut model.defs,
        "M_R03",
        &universe,
        &EventSet::singleton(model.req_app),
        &EventSet::singleton(model.rpt_upd),
    );
    if !checker
        .trace_refinement(&r03, &model.ecu, &model.defs)
        .unwrap()
        .is_pass()
    {
        killers.push("R03");
    }

    // R04 (failures): exactly one result per apply request.
    let noise04: EventSet = [model.req_sw, model.rpt_sw].into_iter().collect();
    let r04 = Process::interleave(
        responds(&mut model.defs, "M_R04", model.req_app, model.rpt_upd),
        fdrlite::properties::chaos(&mut model.defs, "M_R04N", &noise04),
    );
    if !checker
        .failures_refinement(&r04, &model.ecu, &model.defs)
        .unwrap()
        .is_pass()
    {
        killers.push("R04");
    }

    killers
}

#[test]
fn the_original_ecu_survives_every_check() {
    let mut model = extract(ota::sources::ECU_CAPL);
    assert!(killed_by(&mut model).is_empty());
}

#[test]
fn mutant_missing_diagnosis_response_is_killed() {
    // Omission: the reqSw handler no longer responds.
    let mutant = ota::sources::ECU_CAPL.replace(
        "on message reqSw\n{\n  output(msgRptSw);\n}",
        "on message reqSw\n{\n}",
    );
    assert_ne!(mutant, ota::sources::ECU_CAPL, "mutation must apply");
    let mut model = extract(&mutant);
    let killers = killed_by(&mut model);
    assert!(killers.contains(&"R02"), "killed by {killers:?}");
}

#[test]
fn mutant_double_response_is_killed() {
    let mutant = ota::sources::ECU_CAPL.replace(
        "output(msgRptSw);",
        "output(msgRptSw);\n  output(msgRptSw);",
    );
    let mut model = extract(&mutant);
    let killers = killed_by(&mut model);
    assert!(killers.contains(&"R02"), "killed by {killers:?}");
}

#[test]
fn mutant_wrong_response_message_is_killed() {
    // The diagnosis handler acknowledges an update instead.
    let mutant = ota::sources::ECU_CAPL.replace("output(msgRptSw);", "output(msgRptUpd);");
    let mut model = extract(&mutant);
    let killers = killed_by(&mut model);
    assert!(
        killers.contains(&"R03") || killers.contains(&"R02"),
        "killed by {killers:?}"
    );
}

#[test]
fn mutant_unsolicited_response_at_startup_is_killed() {
    let mutant = format!(
        "{}\non start\n{{\n  output(msgRptUpd);\n}}\n",
        ota::sources::ECU_CAPL
    );
    let mut model = extract(&mutant);
    let killers = killed_by(&mut model);
    assert!(killers.contains(&"R03"), "killed by {killers:?}");
}

#[test]
fn mutant_missing_update_acknowledgement_is_killed() {
    let mutant = ota::sources::ECU_CAPL.replace("  output(msgRptUpd);\n", "");
    assert_ne!(mutant, ota::sources::ECU_CAPL, "mutation must apply");
    let mut model = extract(&mutant);
    let killers = killed_by(&mut model);
    assert!(killers.contains(&"R04"), "killed by {killers:?}");
}

#[test]
fn silent_apply_mutant_is_equivalent_at_message_granularity() {
    // `updatesApplied` is internal state: a mutant that acknowledges
    // without counting is indistinguishable at message level — the honest
    // limitation of message-granular models (§VII-B of the paper); the
    // signal-aware translation (`TranslateConfig::signal_fields`) is the
    // remedy when the counter is reflected in a payload.
    let mutant = ota::sources::ECU_CAPL.replace("updatesApplied = updatesApplied + 1;", "");
    assert_ne!(mutant, ota::sources::ECU_CAPL, "mutation must apply");
    let mut model = extract(&mutant);
    assert!(killed_by(&mut model).is_empty(), "equivalent mutant");
}
