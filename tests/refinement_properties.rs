//! Property-based tests on the checker's core invariants: the efficient
//! product-automaton refinement in `fdrlite` must agree with the
//! enumerative trace-set reference in `csp::laws` on randomly generated
//! process pairs, and algebraic laws must hold.

use csp::{laws, Definitions, EventId, EventSet, Process};
use fdrlite::Checker;
use proptest::prelude::*;

/// A small random process over events `0..4`, depth-bounded.
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    let leaf = prop_oneof![
        Just(Process::Stop),
        Just(Process::Skip),
        (0u32..4).prop_map(|e| Process::prefix(EventId::from_index(e as usize), Process::Stop)),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            ((0u32..4), inner.clone())
                .prop_map(|(e, p)| Process::prefix(EventId::from_index(e as usize), p)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::external_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::internal_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::seq(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::interleave(p, q)),
            ((0u32..4), inner.clone(), inner.clone()).prop_map(|(e, p, q)| {
                Process::parallel(EventSet::singleton(EventId::from_index(e as usize)), p, q)
            }),
            ((0u32..4), inner.clone()).prop_map(|(e, p)| {
                Process::hide(p, EventSet::singleton(EventId::from_index(e as usize)))
            }),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::interrupt(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::timeout(p, q)),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// fdrlite's verdict must agree with the enumerative reference on
    /// bounded traces. (The reference bounds trace length; agreement in the
    /// failing direction is exact because counterexamples are finite.)
    #[test]
    fn product_checker_agrees_with_enumerative_reference(
        spec in arb_process(3),
        imp in arb_process(3),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let product = checker.trace_refinement(&spec, &imp, &defs).unwrap();
        // Enumerative check with generous depth: these processes are
        // loop-free (recursion cannot be generated), so depth 32 is exact.
        let reference = laws::trace_refines_upto(&spec, &imp, &defs, 32, 200_000).unwrap();
        prop_assert_eq!(product.is_pass(), reference);
    }

    /// Reflexivity: every process trace-refines itself.
    #[test]
    fn trace_refinement_is_reflexive(p in arb_process(4)) {
        let defs = Definitions::new();
        let v = Checker::new().trace_refinement(&p, &p, &defs).unwrap();
        prop_assert!(v.is_pass());
    }

    /// Reflexivity in the failures model too.
    #[test]
    fn failures_refinement_is_reflexive(p in arb_process(3)) {
        let defs = Definitions::new();
        let v = Checker::new().failures_refinement(&p, &p, &defs).unwrap();
        prop_assert!(v.is_pass());
    }

    /// ⊑F implies ⊑T (failures refinement is strictly stronger).
    #[test]
    fn failures_refinement_implies_trace_refinement(
        spec in arb_process(3),
        imp in arb_process(3),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let failures = checker.failures_refinement(&spec, &imp, &defs).unwrap();
        if failures.is_pass() {
            let traces = checker.trace_refinement(&spec, &imp, &defs).unwrap();
            prop_assert!(traces.is_pass());
        }
    }

    /// Timeout has the external-choice trace law: traces(P [> Q) =
    /// traces(P) ∪ traces(Q).
    #[test]
    fn timeout_trace_law(p in arb_process(3), q in arb_process(3)) {
        let defs = Definitions::new();
        let t = Process::timeout(p.clone(), q.clone());
        let ext = Process::external_choice(p, q);
        prop_assert!(laws::trace_equivalent_upto(&t, &ext, &defs, 10, 200_000).unwrap());
    }

    /// External and internal choice are trace-equivalent (§IV-A2 law).
    #[test]
    fn choice_operators_are_trace_equivalent(
        p in arb_process(3),
        q in arb_process(3),
    ) {
        let defs = Definitions::new();
        let ext = Process::external_choice(p.clone(), q.clone());
        let int = Process::internal_choice(p, q);
        prop_assert!(laws::trace_equivalent_upto(&ext, &int, &defs, 12, 200_000).unwrap());
    }

    /// Interleaving is commutative up to traces.
    #[test]
    fn interleaving_is_commutative(p in arb_process(2), q in arb_process(2)) {
        let defs = Definitions::new();
        let pq = Process::interleave(p.clone(), q.clone());
        let qp = Process::interleave(q, p);
        prop_assert!(laws::trace_equivalent_upto(&pq, &qp, &defs, 10, 200_000).unwrap());
    }

    /// STOP is a unit of external choice.
    #[test]
    fn stop_is_unit_of_external_choice(p in arb_process(3)) {
        let defs = Definitions::new();
        let with_stop = Process::external_choice(p.clone(), Process::Stop);
        prop_assert!(laws::trace_equivalent_upto(&with_stop, &p, &defs, 12, 200_000).unwrap());
    }

    /// Hiding everything leaves at most the empty trace and termination.
    #[test]
    fn hiding_all_events_empties_traces(p in arb_process(3)) {
        let defs = Definitions::new();
        let all: EventSet = (0..4).map(EventId::from_index).collect();
        let hidden = Process::hide(p, all);
        let ts = laws::bounded_traces(&hidden, &defs, 12, 200_000).unwrap();
        for t in ts {
            prop_assert!(t.events().iter().all(|e| e.event().is_none()));
        }
    }

    /// Deadlock-freedom of `p ||| q` needs both components live; conversely
    /// a deadlock in the interleaving maps to one in a component.
    #[test]
    fn interleaving_preserves_deadlock_freedom(p in arb_process(2), q in arb_process(2)) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let p_free = checker.deadlock_free(&p, &defs).unwrap().is_pass();
        let q_free = checker.deadlock_free(&q, &defs).unwrap().is_pass();
        let both = checker
            .deadlock_free(&Process::interleave(p, q), &defs)
            .unwrap()
            .is_pass();
        prop_assert_eq!(both, p_free && q_free);
    }

    /// The parallel decision procedure agrees with the serial checker.
    #[test]
    fn parallel_checker_agrees_with_serial(
        spec in arb_process(3),
        imp in arb_process(3),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let serial = checker.trace_refinement(&spec, &imp, &defs).unwrap();
        let parallel =
            fdrlite::parallel::trace_refinement(&checker, &spec, &imp, &defs, 4).unwrap();
        prop_assert_eq!(serial.is_pass(), parallel.is_pass());
    }
}
