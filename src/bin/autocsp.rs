//! `autocsp` — the command-line face of the toolchain.
//!
//! ```text
//! autocsp translate <app.can> [--dbc net.dbc] [--node ECU] [--gateway] [-o out.csp]
//! autocsp lint <file>... [--dbc net.dbc] [--faults plan.toml] [--format json] [--deny-warnings]
//! autocsp analyze <model.csp> [--format json] [--deny-warnings] [--max-states N]
//! autocsp check <model.csp> [--threads N] [--max-states N] [--timeout-ms N]
//!               [--stats] [--stats-json out.json] [--cex-json out.json]
//!               [--cache-dir DIR] [--no-cache] [--resume TOKEN|auto]
//!               [--checkpoint-every N]
//! autocsp compose <gateway.can> <ecu.can> [--dbc net.dbc] [--buffered N] [-o out.csp]
//! autocsp simulate <node.can>... [--dbc net.dbc] [--for-ms N]
//!                  [--faults plan.toml] [--seed N] [--conformance model.csp]
//! autocsp conform <model.csp> [corpus.jsonl]... [--spec NAME | --faults plan.toml]
//!                 [--traces-dir DIR] [--stdin] [--threads N] [--stats]
//!                 [--stats-json out.json] [--format text|json] [--deny-warnings]
//! autocsp run <jobs.toml> [--cache-dir DIR] [--resume] [--threads N] [--stats]
//!             [--storage-faults SEED[:EVERY]] [--force-panic JOB]
//! autocsp serve [--addr HOST:PORT] [--workers N] [--state-dir DIR] [--cache-dir DIR]
//!               [--scripts-root DIR] [--queue-cap N] [--heartbeat-ms N]
//!               [--checkpoint-every N] [--retries N]
//! autocsp worker --connect HOST:PORT --token TOKEN [--cache-dir DIR]
//!                [--heartbeat-ms N] [--checkpoint-every N]
//! autocsp replay <cex.json> <node.can>... [--dbc net.dbc] [--node NAME]
//! ```

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::Arc;

use diag::{Diagnostic, Severity, Span};
use faults::conformance::ConformanceVerdict;
use faults::{lint_plan, FaultPlan};
use fdrlite::Checker;
use translator::{NodeSpec, Pipeline, SystemBuilder, TranslateConfig};

/// Exit code for runs where at least one check was cut short by a resource
/// budget and nothing outright failed: neither success (0) nor refutation (1).
const EXIT_INCONCLUSIVE: u8 = 3;

/// Exit code for `run` batches where at least one job *failed* — panicked,
/// exhausted its transient retries, or could not start at all. Distinct from
/// refutation (1): the infrastructure broke, the properties were not judged.
const EXIT_INFRA: u8 = 4;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("translate") => translate(&args[1..]),
        Some("lint") => lint_cmd(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("compose") => compose(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("conform") => conform(&args[1..]),
        Some("run") => run_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("worker") => worker_cmd(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("--version" | "-V" | "version") => {
            println!("autocsp {}", env!("CARGO_PKG_VERSION"));
            Ok(ExitCode::SUCCESS)
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
autocsp — security checking of automotive ECUs with formal CSP models

USAGE:
  autocsp translate <app.can> [--dbc <net.dbc>] [--node <NAME>] [--gateway] [-o <out.csp>]
      Extract a CSPm implementation model from a CAPL application.
      Lint findings print to stderr; error-severity findings abort.

  autocsp lint <file>... [--dbc <net.dbc>] [--faults <plan>] [--format <text|json>]
               [--deny-warnings]
      Statically analyse CAPL (`.can`), CSPm (`.csp`/`.cspm`) and fault-plan
      (`--faults`) files. With `--dbc`, also checks database hygiene,
      CAPL/database consistency and fault-plan frame ids and node names
      (SIM3xx codes). Exits non-zero on errors (or warnings, under
      `--deny-warnings`).

  autocsp analyze <model.csp> [--format <text|json>] [--deny-warnings]
                  [--max-states <N>]
      Semantically analyse a CSPm script without running the checker:
      interprocedural alphabet inference per definition (through hiding
      and renaming), τ-cycle/SCC classification per assertion operand
      (divergence-freedom proofs, guaranteed-deadlock sinks), and a
      sound predicted state-space bound per operand. With
      `--max-states <N>`, operands predicted to exceed the budget are
      flagged (ANA307) before any exploration is spent. Findings use
      the ANA3xx codes (see docs/LINTS.md); `check` and `lint` run the
      same pass. Exits non-zero on errors (or warnings, under
      `--deny-warnings`).

  autocsp check <model.csp> [--deny-warnings] [--threads <N>] [--stats]
                [--max-states <N>] [--timeout-ms <N>] [--format <text|json>]
                [--stats-json <out.json>] [--cex-json <out.json>]
                [--cache-dir <DIR>] [--no-cache] [--resume <TOKEN|auto>]
                [--checkpoint-every <N>]
      Run every `assert` in a CSPm script through the refinement checker.
      `--threads N` (alias `-j`) checks refinement assertions of every
      model (`[T=`, `[F=`, `[FD=`) with the work-stealing parallel
      engine; verdicts and counterexamples are identical to the serial
      engine for any N. `--max-states` / `--timeout-ms`
      bound each refinement assertion; a budgeted-out assertion reports
      INCONCLUSIVE, and a run with inconclusive results (and no failures)
      exits with code 3. `--stats` prints per-assertion exploration
      statistics to stderr; `--stats-json` writes them to a file as JSON.
      `--cex-json` writes the first counterexample as JSON for
      `autocsp replay`.
      `--cache-dir DIR` persists compiled models and checkpoints to a
      crash-safe on-disk cache (shared safely between concurrent runs; a
      corrupt entry is quarantined with a warning and recompiled, never
      trusted). A budgeted-out assertion then also writes a checkpoint and
      prints a resume token; `--resume TOKEN` (or `--resume auto` to pick
      up any matching checkpoint) continues it to a verdict bit-identical
      to an uninterrupted run. `--checkpoint-every N` additionally
      checkpoints every N explored states, so an interrupted (even
      SIGKILLed) run loses at most N states of work. `--no-cache` ignores
      `--cache-dir`. `--format json` prints exactly one JSON object
      (per-assertion verdicts) to stdout; diagnostics stay on stderr.

  autocsp compose <gateway.can> <ecu.can> [--dbc <net.dbc>] [--buffered <N>] [-o <out.csp>]
      Translate both nodes and compose SYSTEM = GATEWAY ∥ ECU.

  autocsp simulate <node.can>... [--dbc <net.dbc>] [--for-ms <N>]
                   [--faults <plan>] [--seed <N>] [--conformance <model.csp>]
      Run CAPL applications on the simulated CAN bus and print the trace.
      `--faults` installs a fault-injection plan (deterministic: same plan,
      same seed, same trace); `--seed` overrides the plan seed. With
      `--conformance`, the observed trace is lifted through the plan's
      [[map]] rules and checked to be a trace of the model's spec process
      (through the batch engine; `--stats` reports the dedup ratio);
      nonconformance exits with code 1.

  autocsp conform <model.csp> [corpus.jsonl]... [--spec <NAME> | --faults <plan>]
                  [--traces-dir <DIR>] [--stdin] [--threads <N>] [--stats]
                  [--stats-json <out.json>] [--format <text|json>]
                  [--deny-warnings]
      Batch trace conformance: check every trace of a JSONL corpus against
      the model's spec process (`--spec`, or the plan's [conformance]
      spec) in one hypertrace walk — traces merge into a prefix trie, the
      spec normalises once, and per-trace verdicts are bit-identical to
      checking each trace alone, at any `--threads` count. Corpora come
      from positional `.jsonl` files, every `*.jsonl` under `--traces-dir`
      (sorted by name), and/or `--stdin`; each line is `[\"e1\",\"e2\"]` or
      `{\"id\":…,\"events\":[…]}`. Corpus-hygiene findings are SIM31x
      warnings (see docs/LINTS.md). Exits 0 when every trace conforms and
      1 otherwise; `--stats` prints trie dedup ratio and traces/sec to
      stderr, `--stats-json` writes them as JSON. See docs/CONFORMANCE.md.

  autocsp run <jobs.toml> [--threads <N>] [--max-states <N>] [--timeout-ms <N>]
              [--cache-dir <DIR>] [--no-cache] [--resume] [--checkpoint-every <N>]
              [--spec <NAME>] [--seed <N>] [--stats] [--format <text|json>]
              [--storage-faults <SEED[:EVERY]>] [--force-panic <JOB>]
      Run a TOML manifest of check/conform/analyze jobs under the
      supervised job runtime: each job is panic-isolated (a panicking job
      reports `failed` with a SUP501 diagnostic; the run continues),
      transient failures retry on a bounded, seeded exponential backoff,
      and every terminal verdict is journaled crash-safely. After a crash
      or kill, `--resume` replays journaled verdicts verbatim and re-runs
      only unfinished jobs (reusing their per-check checkpoints when
      `--cache-dir` is set), so the completed run's stdout is
      byte-identical to an undisturbed one. SIGTERM checkpoints in-flight
      work and defers the rest. Manifest `[run]` sets defaults
      (threads/budgets/retries), `[chaos]` injects deterministic transient
      faults for testing; `--storage-faults` seeds disk-cache fault
      injection and `--force-panic JOB` panics a named job (both for
      chaos drills). `--format json` prints exactly one JSON object
      (per-job status + verdict lines) to stdout, diagnostics to stderr.
      Exits 4 when any job failed (infrastructure), else 1
      when any was refuted, else 3 when any is inconclusive or deferred,
      else 0. See docs/SUPERVISION.md.

  autocsp serve [--addr <HOST:PORT>] [--workers <N>] [--state-dir <DIR>]
                [--cache-dir <DIR>] [--scripts-root <DIR>] [--queue-cap <N>]
                [--heartbeat-ms <N>] [--checkpoint-every <N>] [--retries <N>]
                [--threads <N>] [--max-states <N>] [--timeout-ms <N>] [--seed <N>]
      Run the fault-tolerant checking service: accept `jobs.toml`
      manifests over HTTP (POST /v1/jobs → job ids; GET /v1/jobs/<id>
      [?wait=s] → verdict; GET /v1/health) and dispatch them to a farm
      of `autocsp worker` processes sharing one persistent cache.
      Identical submissions dedup to one job id; a crashed or SIGKILLed
      worker's job is reclaimed and resumed from its last checkpoint to
      a byte-identical verdict; transient failures retry on the seeded
      supervisor backoff; admissions beyond `--queue-cap` fail closed
      with HTTP 429 + Retry-After. SIGTERM drains: in-flight jobs
      checkpoint, pending jobs journal, and a restarted serve (same
      `--state-dir`) completes them byte-identically. Service events use
      the SRV6xx codes (see docs/LINTS.md). Exits 3 when jobs were
      deferred past the drain, 0 on a clean drain, 4 on infrastructure
      failure. See docs/SERVICE.md.

  autocsp worker --connect <HOST:PORT> --token <TOKEN> [--cache-dir <DIR>]
                 [--heartbeat-ms <N>] [--checkpoint-every <N>]
      One farm worker (spawned by `autocsp serve`; not for direct use).
      Connects to the orchestrator's loopback worker port, heartbeats,
      and executes dispatched jobs one at a time.

  autocsp replay <cex.json> <node.can>... [--dbc <net.dbc>] [--node <NAME>]
                 [--stimulus <chan>] [--expect <chan>] [--gap-us <N>]
      Re-drive a saved counterexample (from `check --cex-json`) through the
      simulator: stimulus events are injected as frames, and the node under
      test (`--node`, default: first CAPL file's name) must transmit the
      expected responses. Exits 0 when the violation reproduces on the bus,
      1 when it does not, and 3 when the counterexample maps onto no
      observable responses (inconclusive).

  autocsp --version
      Print the toolchain version.
";

struct Flags {
    positional: Vec<String>,
    dbc: Option<String>,
    node: Option<String>,
    gateway: bool,
    buffered: Option<usize>,
    output: Option<String>,
    for_ms: u64,
    format: OutputFormat,
    deny_warnings: bool,
    threads: usize,
    stats: bool,
    stats_json: Option<String>,
    max_states: Option<u64>,
    timeout_ms: Option<u64>,
    cex_json: Option<String>,
    cache_dir: Option<String>,
    no_cache: bool,
    resume: Option<String>,
    checkpoint_every: Option<u64>,
    faults: Option<String>,
    seed: Option<u64>,
    conformance: Option<String>,
    spec: Option<String>,
    traces_dir: Option<String>,
    stdin: bool,
    stimulus: Vec<String>,
    expect: Vec<String>,
    gap_us: u64,
    storage_faults: Option<String>,
    force_panic: Option<String>,
    addr: Option<String>,
    workers: Option<usize>,
    state_dir: Option<String>,
    scripts_root: Option<String>,
    queue_cap: Option<usize>,
    heartbeat_ms: Option<u64>,
    retries: Option<u32>,
    connect: Option<String>,
    token: Option<String>,
    die_after_states: Option<u64>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        dbc: None,
        node: None,
        gateway: false,
        buffered: None,
        output: None,
        for_ms: 1_000,
        format: OutputFormat::Text,
        deny_warnings: false,
        threads: 1,
        stats: false,
        stats_json: None,
        max_states: None,
        timeout_ms: None,
        cex_json: None,
        cache_dir: None,
        no_cache: false,
        resume: None,
        checkpoint_every: None,
        faults: None,
        seed: None,
        conformance: None,
        spec: None,
        traces_dir: None,
        stdin: false,
        stimulus: Vec::new(),
        expect: Vec::new(),
        gap_us: 10_000,
        storage_faults: None,
        force_panic: None,
        addr: None,
        workers: None,
        state_dir: None,
        scripts_root: None,
        queue_cap: None,
        heartbeat_ms: None,
        retries: None,
        connect: None,
        token: None,
        die_after_states: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--dbc" => flags.dbc = Some(value(args, &mut i, "--dbc")?),
            "--node" => flags.node = Some(value(args, &mut i, "--node")?),
            "--gateway" => flags.gateway = true,
            "--buffered" => {
                flags.buffered = Some(
                    value(args, &mut i, "--buffered")?
                        .parse()
                        .map_err(|_| "`--buffered` needs a number".to_owned())?,
                );
            }
            "-o" | "--output" => flags.output = Some(value(args, &mut i, "-o")?),
            "--for-ms" => {
                flags.for_ms = value(args, &mut i, "--for-ms")?
                    .parse()
                    .map_err(|_| "`--for-ms` needs a number".to_owned())?;
            }
            "--format" => {
                flags.format = match value(args, &mut i, "--format")?.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    other => return Err(format!("unknown format `{other}` (use text or json)")),
                }
            }
            "--deny-warnings" => flags.deny_warnings = true,
            "--threads" | "-j" => {
                flags.threads = value(args, &mut i, "--threads")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "`--threads` needs a number ≥ 1".to_owned())?;
            }
            "--stats" => flags.stats = true,
            "--stats-json" => flags.stats_json = Some(value(args, &mut i, "--stats-json")?),
            "--max-states" => {
                flags.max_states = Some(
                    value(args, &mut i, "--max-states")?
                        .parse()
                        .map_err(|_| "`--max-states` needs a number".to_owned())?,
                );
            }
            "--timeout-ms" => {
                flags.timeout_ms = Some(
                    value(args, &mut i, "--timeout-ms")?
                        .parse()
                        .map_err(|_| "`--timeout-ms` needs a number".to_owned())?,
                );
            }
            "--cex-json" => flags.cex_json = Some(value(args, &mut i, "--cex-json")?),
            "--cache-dir" => flags.cache_dir = Some(value(args, &mut i, "--cache-dir")?),
            "--no-cache" => flags.no_cache = true,
            "--resume" => {
                // The token is optional: a bare `--resume` (or one followed by
                // another flag / a manifest path) means "resume automatically".
                let next = args.get(i + 1).map(String::as_str);
                let takes_value = matches!(
                    next,
                    Some(v) if v == "auto" || (v.len() == 32 && v.bytes().all(|b| b.is_ascii_hexdigit()))
                );
                if takes_value {
                    flags.resume = Some(value(args, &mut i, "--resume")?);
                } else {
                    flags.resume = Some("auto".to_owned());
                }
            }
            "--checkpoint-every" => {
                flags.checkpoint_every = Some(
                    value(args, &mut i, "--checkpoint-every")?
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "`--checkpoint-every` needs a number ≥ 1".to_owned())?,
                );
            }
            "--faults" => flags.faults = Some(value(args, &mut i, "--faults")?),
            "--seed" => {
                flags.seed = Some(
                    value(args, &mut i, "--seed")?
                        .parse()
                        .map_err(|_| "`--seed` needs a number".to_owned())?,
                );
            }
            "--conformance" => flags.conformance = Some(value(args, &mut i, "--conformance")?),
            "--spec" => flags.spec = Some(value(args, &mut i, "--spec")?),
            "--traces-dir" => flags.traces_dir = Some(value(args, &mut i, "--traces-dir")?),
            "--stdin" => flags.stdin = true,
            "--stimulus" => flags.stimulus.push(value(args, &mut i, "--stimulus")?),
            "--expect" => flags.expect.push(value(args, &mut i, "--expect")?),
            "--gap-us" => {
                flags.gap_us = value(args, &mut i, "--gap-us")?
                    .parse()
                    .map_err(|_| "`--gap-us` needs a number".to_owned())?;
            }
            "--storage-faults" => {
                flags.storage_faults = Some(value(args, &mut i, "--storage-faults")?);
            }
            "--force-panic" => flags.force_panic = Some(value(args, &mut i, "--force-panic")?),
            "--addr" => flags.addr = Some(value(args, &mut i, "--addr")?),
            "--workers" => {
                flags.workers = Some(
                    value(args, &mut i, "--workers")?
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "`--workers` needs a number ≥ 1".to_owned())?,
                );
            }
            "--state-dir" => flags.state_dir = Some(value(args, &mut i, "--state-dir")?),
            "--scripts-root" => flags.scripts_root = Some(value(args, &mut i, "--scripts-root")?),
            "--queue-cap" => {
                flags.queue_cap = Some(
                    value(args, &mut i, "--queue-cap")?
                        .parse()
                        .map_err(|_| "`--queue-cap` needs a number".to_owned())?,
                );
            }
            "--heartbeat-ms" => {
                flags.heartbeat_ms = Some(
                    value(args, &mut i, "--heartbeat-ms")?
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "`--heartbeat-ms` needs a number ≥ 1".to_owned())?,
                );
            }
            "--retries" => {
                flags.retries = Some(
                    value(args, &mut i, "--retries")?
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "`--retries` needs a number ≥ 1".to_owned())?,
                );
            }
            "--connect" => flags.connect = Some(value(args, &mut i, "--connect")?),
            "--token" => flags.token = Some(value(args, &mut i, "--token")?),
            "--die-after-states" => {
                // Undocumented chaos hook for the CI kill drills: the
                // worker checkpoints at this budget, then drops dead.
                flags.die_after_states = Some(
                    value(args, &mut i, "--die-after-states")?
                        .parse()
                        .map_err(|_| "`--die-after-states` needs a number".to_owned())?,
                );
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => flags.positional.push(other.to_owned()),
        }
        i += 1;
    }
    Ok(flags)
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn emit(output: &Option<String>, text: &str) -> Result<(), String> {
    match output {
        Some(path) => {
            fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn node_name_from(path: &str, fallback: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .map(str::to_uppercase)
        .unwrap_or_else(|| fallback.to_owned())
}

/// One file's findings, ready for rendering in either output format.
struct FileFindings {
    file: String,
    source: String,
    diagnostics: Vec<Diagnostic>,
}

/// Print findings (text to stderr) and apply the gating policy: errors always
/// fail; warnings fail under `--deny-warnings`.
fn gate(findings: &[FileFindings], deny_warnings: bool) -> Result<(), String> {
    for f in findings {
        for d in &f.diagnostics {
            eprint!("{}", d.render(&f.file, &f.source));
        }
    }
    let errors = count(findings, Severity::Error);
    let warnings = count(findings, Severity::Warning);
    if errors > 0 {
        Err(format!("{errors} lint error(s)"))
    } else if deny_warnings && warnings > 0 {
        Err(format!(
            "{warnings} lint warning(s) denied (--deny-warnings)"
        ))
    } else {
        Ok(())
    }
}

fn count(findings: &[FileFindings], severity: Severity) -> usize {
    findings
        .iter()
        .flat_map(|f| &f.diagnostics)
        .filter(|d| d.severity == severity)
        .count()
}

fn translate(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let [source_path] = flags.positional.as_slice() else {
        return Err("translate needs exactly one CAPL file".into());
    };
    let source = read(source_path)?;
    let dbc = flags.dbc.as_deref().map(read).transpose()?;
    let name = flags
        .node
        .clone()
        .unwrap_or_else(|| node_name_from(source_path, "NODE"));
    let config = if flags.gateway {
        TranslateConfig::gateway(&name)
    } else {
        TranslateConfig::ecu(&name)
    };
    let pipeline = Pipeline::new(config);
    let out = pipeline
        .run(&source, dbc.as_deref())
        .map_err(|e| e.to_string())?;
    let findings = [
        FileFindings {
            file: source_path.clone(),
            source,
            diagnostics: out.lints.capl.clone(),
        },
        FileFindings {
            file: flags.dbc.clone().unwrap_or_default(),
            source: dbc.unwrap_or_default(),
            diagnostics: out.lints.dbc.clone(),
        },
        FileFindings {
            file: format!("<generated {name} model>"),
            source: out.script.clone(),
            diagnostics: out.lints.csp.clone(),
        },
    ];
    gate(&findings, flags.deny_warnings)?;
    for a in &out.report.abstractions {
        eprintln!("abstraction [{:?}] {}", a.kind, a.detail);
    }
    emit(&flags.output, &out.script)?;
    Ok(ExitCode::SUCCESS)
}

fn lint_cmd(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    if flags.positional.is_empty() && flags.dbc.is_none() && flags.faults.is_none() {
        return Err(
            "lint needs at least one file (`.can`, `.csp`/`.cspm`, `--faults`, or --dbc)".into(),
        );
    }

    // Parse the database first: `.can` files cross-check against it.
    let mut findings: Vec<FileFindings> = Vec::new();
    let mut db = None;
    if let Some(dbc_path) = &flags.dbc {
        let source = read(dbc_path)?;
        let diagnostics = match candb::parse(&source) {
            Ok(parsed) => {
                let d = lint::lint_database(&parsed);
                db = Some(parsed);
                d
            }
            Err(e) => vec![Diagnostic::error(
                lint::codes::DBC_PARSE_ERROR,
                Span::point(e.line as u32, 1),
                e.to_string(),
            )],
        };
        findings.push(FileFindings {
            file: dbc_path.clone(),
            source,
            diagnostics,
        });
    }

    for path in &flags.positional {
        let source = read(path)?;
        let diagnostics = if path.ends_with(".csp") || path.ends_with(".cspm") {
            match cspm::Script::parse(&source) {
                Ok(script) => {
                    let mut d = lint::lint_module(script.module());
                    // Semantic pass, when the script also evaluates. A script
                    // that parses but fails to load keeps its syntactic
                    // findings; `check` surfaces the load error itself.
                    if let Ok(loaded) = script.load() {
                        let store = fdrlite::ModelStore::new();
                        let analysis = cspm::analyze::analyze_script(
                            script.module(),
                            &loaded,
                            &Checker::new(),
                            &store,
                            None,
                        );
                        d.extend(analysis.diagnostics);
                    }
                    d
                }
                Err(e) => vec![cspm_parse_diagnostic(&e)],
            }
        } else {
            match capl::parse(&source) {
                Ok(program) => {
                    let mut d = lint::lint_program(&program);
                    if let Some(db) = &db {
                        d.extend(lint::cross_check(&program, db));
                    }
                    d
                }
                Err(e) => {
                    let pos = match &e {
                        capl::CaplError::Lex { pos, .. } | capl::CaplError::Parse { pos, .. } => {
                            *pos
                        }
                    };
                    vec![Diagnostic::error(
                        lint::codes::CAPL_PARSE_ERROR,
                        Span::point(pos.line, pos.col),
                        e.to_string(),
                    )]
                }
            }
        };
        findings.push(FileFindings {
            file: path.clone(),
            source,
            diagnostics,
        });
    }

    if let Some(plan_path) = &flags.faults {
        let source = read(plan_path)?;
        let diagnostics = match FaultPlan::parse(&source) {
            Ok(plan) => lint_plan(&plan, db.as_ref()),
            Err(parse_errors) => parse_errors,
        };
        findings.push(FileFindings {
            file: plan_path.clone(),
            source,
            diagnostics,
        });
    }

    // Deterministic output: within a file, order by span, then code, then
    // message. Files keep their command-line order.
    for f in &mut findings {
        cspm::analyze::sort_diagnostics(&mut f.diagnostics);
    }

    let errors = count(&findings, Severity::Error);
    let warnings = count(&findings, Severity::Warning);

    match flags.format {
        OutputFormat::Text => {
            for f in &findings {
                for d in &f.diagnostics {
                    print!("{}", d.render(&f.file, &f.source));
                }
            }
            println!("{errors} error(s), {warnings} warning(s)");
        }
        OutputFormat::Json => {
            let items: Vec<String> = findings
                .iter()
                .flat_map(|f| f.diagnostics.iter().map(|d| d.to_json(&f.file)))
                .collect();
            println!(
                "{{\"diagnostics\":[{}],\"errors\":{errors},\"warnings\":{warnings}}}",
                items.join(",")
            );
        }
    }

    if errors > 0 {
        Err(format!("{errors} lint error(s)"))
    } else if flags.deny_warnings && warnings > 0 {
        Err(format!(
            "{warnings} lint warning(s) denied (--deny-warnings)"
        ))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cspm_parse_diagnostic(e: &cspm::CspmError) -> Diagnostic {
    let span = match e {
        cspm::CspmError::Lex { pos, .. } | cspm::CspmError::Parse { pos, .. } => {
            Span::point(pos.line, pos.col)
        }
        _ => Span::unknown(),
    };
    Diagnostic::error(lint::codes::CSP_PARSE_ERROR, span, e.to_string())
}

fn analyze_cmd(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let [script_path] = flags.positional.as_slice() else {
        return Err("analyze needs exactly one CSPm file".into());
    };
    let source = read(script_path)?;
    let script = match cspm::Script::parse(&source) {
        Ok(script) => script,
        Err(e) => {
            let d = cspm_parse_diagnostic(&e);
            match flags.format {
                OutputFormat::Text => {
                    print!("{}", d.render(script_path, &source));
                    println!("1 error(s), 0 warning(s)");
                }
                OutputFormat::Json => println!(
                    "{{\"file\":{},\"rounds\":0,\"definitions\":[],\"assertions\":[],\"diagnostics\":[{}],\"errors\":1,\"warnings\":0}}",
                    diag::json_string(script_path),
                    d.to_json(script_path)
                ),
            }
            return Err("1 analysis error(s)".into());
        }
    };
    let loaded = script.load().map_err(|e| e.to_string())?;
    let store = fdrlite::ModelStore::new();
    let analysis = cspm::analyze::analyze_script(
        script.module(),
        &loaded,
        &Checker::new(),
        &store,
        flags.max_states,
    );
    let errors = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    match flags.format {
        OutputFormat::Text => {
            render_analysis_text(script_path, &source, &analysis);
            println!("{errors} error(s), {warnings} warning(s)");
        }
        OutputFormat::Json => {
            println!(
                "{}",
                analysis_json(script_path, &analysis, errors, warnings)
            );
        }
    }
    if errors > 0 {
        Err(format!("{errors} analysis error(s)"))
    } else if flags.deny_warnings && warnings > 0 {
        Err(format!(
            "{warnings} analysis warning(s) denied (--deny-warnings)"
        ))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Human-readable rendering of a [`cspm::analyze::ScriptAnalysis`].
fn render_analysis_text(file: &str, source: &str, analysis: &cspm::analyze::ScriptAnalysis) {
    println!(
        "{file}: {} definition(s), {} assertion(s), alphabet fixpoint in {} round(s)",
        analysis.definitions.len(),
        analysis.assertions.len(),
        analysis.rounds
    );
    for d in &analysis.definitions {
        let reach = if d.reachable { "" } else { "  [unreachable]" };
        println!("  {} : {{{}}}{}", d.name, d.alphabet.join(", "), reach);
    }
    for a in &analysis.assertions {
        println!("assert {}", a.description);
        for p in &a.processes {
            match (&p.graph, &p.compile_error) {
                (Some(g), _) => {
                    let divergence = if g.divergence_free() {
                        "divergence-free".to_owned()
                    } else {
                        format!("DIVERGENT ({} state(s))", g.divergent_states)
                    };
                    let deadlock = if g.deadlock_free() {
                        "deadlock-free".to_owned()
                    } else {
                        format!("DEADLOCK ({} sink(s))", g.deadlock_states)
                    };
                    let approx = if p.estimate_exact { "" } else { " (approx)" };
                    println!(
                        "  {}: {} state(s), {} transition(s) ({} τ), {} SCC(s); {divergence}, {deadlock}; predicted ≤ {} state(s){approx}",
                        p.role, g.states, g.transitions, g.tau_transitions, g.scc_count,
                        p.predicted_states
                    );
                }
                (None, Some(err)) => {
                    println!(
                        "  {}: analysis skipped ({err}); predicted ≤ {} state(s)",
                        p.role, p.predicted_states
                    );
                }
                (None, None) => {
                    println!("  {}: predicted ≤ {} state(s)", p.role, p.predicted_states);
                }
            }
        }
        if let Some(product) = a.predicted_product {
            println!("  predicted product ≤ {product} pair(s)");
        }
    }
    for d in &analysis.diagnostics {
        print!("{}", d.render(file, source));
    }
}

/// JSON rendering of a [`cspm::analyze::ScriptAnalysis`], one object per run.
fn analysis_json(
    file: &str,
    analysis: &cspm::analyze::ScriptAnalysis,
    errors: usize,
    warnings: usize,
) -> String {
    use diag::json_string as js;
    let definitions: Vec<String> = analysis
        .definitions
        .iter()
        .map(|d| {
            let alphabet: Vec<String> = d.alphabet.iter().map(|e| js(e)).collect();
            format!(
                "{{\"name\":{},\"line\":{},\"col\":{},\"reachable\":{},\"alphabet\":[{}]}}",
                js(&d.name),
                d.span.line,
                d.span.col,
                d.reachable,
                alphabet.join(",")
            )
        })
        .collect();
    let assertions: Vec<String> = analysis
        .assertions
        .iter()
        .map(|a| {
            let processes: Vec<String> = a
                .processes
                .iter()
                .map(|p| {
                    let graph = p.graph.as_ref().map_or_else(
                        || "null".to_owned(),
                        |g| {
                            format!(
                                "{{\"states\":{},\"transitions\":{},\"tau_transitions\":{},\"scc_count\":{},\"tau_cycle_states\":{},\"divergent_states\":{},\"deadlock_states\":{},\"divergence_free\":{},\"deadlock_free\":{}}}",
                                g.states,
                                g.transitions,
                                g.tau_transitions,
                                g.scc_count,
                                g.tau_cycle_states,
                                g.divergent_states,
                                g.deadlock_states,
                                g.divergence_free(),
                                g.deadlock_free()
                            )
                        },
                    );
                    let compile_error = p
                        .compile_error
                        .as_deref()
                        .map_or_else(|| "null".to_owned(), js);
                    format!(
                        "{{\"role\":{},\"graph\":{graph},\"compile_error\":{compile_error},\"predicted_states\":{},\"estimate_exact\":{},\"components\":{},\"parallel_count\":{},\"sync_coupling\":{}}}",
                        js(p.role),
                        p.predicted_states,
                        p.estimate_exact,
                        p.components,
                        p.parallel_count,
                        p.sync_coupling
                    )
                })
                .collect();
            let product = a
                .predicted_product
                .map_or_else(|| "null".to_owned(), |n| n.to_string());
            format!(
                "{{\"assertion\":{},\"predicted_product\":{product},\"processes\":[{}]}}",
                js(&a.description),
                processes.join(",")
            )
        })
        .collect();
    let diagnostics: Vec<String> = analysis
        .diagnostics
        .iter()
        .map(|d| d.to_json(file))
        .collect();
    format!(
        "{{\"file\":{},\"rounds\":{},\"definitions\":[{}],\"assertions\":[{}],\"diagnostics\":[{}],\"errors\":{errors},\"warnings\":{warnings}}}",
        js(file),
        analysis.rounds,
        definitions.join(","),
        assertions.join(","),
        diagnostics.join(",")
    )
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let [script_path] = flags.positional.as_slice() else {
        return Err("check needs exactly one CSPm file".into());
    };
    install_sigterm_handler();
    let source = read(script_path)?;
    let script = cspm::Script::parse(&source).map_err(|e| e.to_string())?;
    let findings = [FileFindings {
        file: script_path.clone(),
        source: source.clone(),
        diagnostics: lint::lint_module(script.module()),
    }];
    gate(&findings, flags.deny_warnings)?;
    let loaded = script.load().map_err(|e| e.to_string())?;
    if loaded.assertions().is_empty() {
        return Err("script contains no `assert` declarations".into());
    }
    let options = cspm::CheckOptions {
        threads: flags.threads,
        collect_stats: flags.stats || flags.stats_json.is_some(),
        max_states: flags.max_states,
        max_wall_ms: flags.timeout_ms,
    };
    let store = fdrlite::ModelStore::new();
    let cache = match (&flags.cache_dir, flags.no_cache) {
        (Some(dir), false) => {
            let cache = Arc::new(
                fdrlite::PersistentCache::open(dir)
                    .map_err(|e| format!("cannot open cache directory `{dir}`: {e}"))?,
            );
            let resume = match flags.resume.as_deref() {
                None => fdrlite::ResumePolicy::Off,
                Some("auto") => fdrlite::ResumePolicy::Auto,
                Some(token) => fdrlite::ResumePolicy::Token(
                    fdrlite::CheckId::from_token(token)
                        .ok_or_else(|| format!("invalid resume token `{token}`"))?,
                ),
            };
            store.set_persist(fdrlite::PersistConfig {
                cache: Arc::clone(&cache),
                checkpoint_every: flags.checkpoint_every,
                resume,
            });
            Some(cache)
        }
        _ => {
            if flags.resume.is_some() {
                return Err("`--resume` needs `--cache-dir` (checkpoints live there)".into());
            }
            None
        }
    };
    // Semantic analysis before exploration: compiles route through `store`
    // (after the persist config, so on-disk keys match the check's), which
    // warms both the compile and the graph-classification caches the checker
    // reuses below. Analysis findings are ANA3xx warnings and follow the
    // same gating policy as the syntactic lints.
    let checker = Checker::new();
    let analysis =
        cspm::analyze::analyze_script(script.module(), &loaded, &checker, &store, flags.max_states);
    gate(
        &[FileFindings {
            file: script_path.clone(),
            source: source.clone(),
            diagnostics: analysis.diagnostics,
        }],
        flags.deny_warnings,
    )?;
    let results = loaded
        .check_with_store(&checker, &options, &store)
        .map_err(|e| e.to_string())?;
    let json_mode = flags.format == OutputFormat::Json;
    let mut failures = 0;
    let mut inconclusive = 0;
    let mut cex_written = false;
    // JSON mode: stdout carries exactly one JSON object (assertion
    // verdicts in script order); diagnostics and stats stay on stderr.
    let mut assertion_json: Vec<String> = Vec::new();
    for r in &results {
        if let Some(cex) = r.verdict.counterexample() {
            failures += 1;
            if json_mode {
                assertion_json.push(format!(
                    "{{\"assertion\":{},\"verdict\":\"fail\",\"counterexample\":{}}}",
                    diag::json_string(&r.description),
                    diag::json_string(&cex.display(loaded.alphabet()).to_string())
                ));
            } else {
                println!("assert {}  ...  FAIL", r.description);
                println!("  {}", cex.display(loaded.alphabet()));
            }
            if let Some(path) = &flags.cex_json {
                if !cex_written {
                    let json = faults::replay::counterexample_to_json(
                        &r.description,
                        cex,
                        loaded.alphabet(),
                    );
                    fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    eprintln!("wrote {path}");
                    cex_written = true;
                }
            }
        } else if let Some(inc) = r.verdict.inconclusive() {
            inconclusive += 1;
            if json_mode {
                let resume = inc.resume.as_ref().map_or_else(
                    || "null".to_owned(),
                    |token| diag::json_string(&token.to_string()),
                );
                assertion_json.push(format!(
                    "{{\"assertion\":{},\"verdict\":\"inconclusive\",\"reason\":{},\"resume\":{resume}}}",
                    diag::json_string(&r.description),
                    diag::json_string(&inc.to_string())
                ));
            } else {
                println!("assert {}  ...  INCONCLUSIVE ({inc})", r.description);
                if let Some(token) = &inc.resume {
                    println!("  checkpoint saved; continue with `--resume {token}`");
                }
            }
        } else if json_mode {
            assertion_json.push(format!(
                "{{\"assertion\":{},\"verdict\":\"pass\"}}",
                diag::json_string(&r.description)
            ));
        } else {
            println!("assert {}  ...  PASS", r.description);
        }
        if flags.stats {
            if let Some(stats) = &r.stats {
                eprintln!("  stats: {stats}");
            }
        }
    }
    if json_mode {
        println!(
            "{{\"script\":{},\"assertions\":[{}],\"failures\":{failures},\"inconclusive\":{inconclusive}}}",
            diag::json_string(script_path),
            assertion_json.join(",")
        );
    }
    if let Some(cache) = &cache {
        let root = cache.root().display().to_string();
        for d in cache.take_diagnostics() {
            eprint!("{}", d.render(&root, ""));
        }
        if flags.stats {
            eprintln!(
                "disk cache: {} hit(s), {} miss(es), {} quarantined, {} evicted",
                cache.disk_hits(),
                cache.disk_misses(),
                cache.quarantined(),
                cache.evicted()
            );
        }
    }
    if flags.stats {
        eprintln!(
            "model store: {} hit(s), {} miss(es); analysis {} hit(s), {} miss(es) across {} assertion(s)",
            store.hits(),
            store.misses(),
            store.analysis_hits(),
            store.analysis_misses(),
            results.len()
        );
    }
    if let Some(path) = &flags.stats_json {
        let lines: Vec<String> = results
            .iter()
            .map(|r| {
                let stats = r
                    .stats
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), fdrlite::CheckStats::to_json);
                format!(
                    "{{\"assertion\":{:?},\"pass\":{},\"inconclusive\":{},\"stats\":{stats}}}",
                    r.description,
                    r.verdict.is_pass(),
                    r.verdict.is_inconclusive()
                )
            })
            .collect();
        fs::write(path, format!("[{}]\n", lines.join(",")))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        Err(format!("{failures} assertion(s) failed"))
    } else if inconclusive > 0 {
        eprintln!("{inconclusive} assertion(s) inconclusive (budget exhausted)");
        Ok(ExitCode::from(EXIT_INCONCLUSIVE))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `autocsp serve`: the fault-tolerant checking service (front-end +
/// worker farm). Blocks until SIGTERM, then drains and exits 0 (clean)
/// or 3 (jobs deferred to the next start).
fn serve_cmd(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    if !flags.positional.is_empty() {
        return Err(format!(
            "`serve` takes no positional arguments (got `{}`)",
            flags.positional[0]
        ));
    }
    let state_dir = PathBuf::from(
        flags
            .state_dir
            .unwrap_or_else(|| ".autocsp-service".to_owned()),
    );
    let mut config = service::server::ServerConfig::with_defaults(state_dir)?;
    if let Some(addr) = flags.addr {
        config.addr = addr;
    }
    if let Some(workers) = flags.workers {
        config.workers = workers;
    }
    if let Some(dir) = flags.cache_dir {
        config.cache_dir = Some(PathBuf::from(dir));
    }
    if let Some(root) = flags.scripts_root {
        config.scripts_root = PathBuf::from(root);
    }
    if let Some(cap) = flags.queue_cap {
        config.queue_cap = cap;
    }
    if let Some(hb) = flags.heartbeat_ms {
        config.heartbeat_ms = hb;
    }
    if let Some(every) = flags.checkpoint_every {
        config.checkpoint_every = Some(every);
    }
    if let Some(retries) = flags.retries {
        config.retry.max_attempts = retries;
    }
    if let Some(seed) = flags.seed {
        config.retry.seed = seed;
    }
    config.default_threads = flags.threads;
    config.default_max_states = flags.max_states;
    config.default_timeout_ms = flags.timeout_ms;

    let server = service::server::Server::start(config)?;
    // The address line is the machine-readable hand-off to scripts and
    // tests (the port is usually ephemeral).
    println!("autocsp serve listening on http://{}", server.http_addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());

    install_sigterm_handler();
    while !fdrlite::interrupt_requested() {
        for d in server.orchestrator().take_diagnostics() {
            eprint!("{}", d.render("service", ""));
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("autocsp serve: draining (in-flight jobs checkpoint, pending jobs journal)");
    let pending = server.drain(std::time::Duration::from_secs(60));
    for d in server.orchestrator().take_diagnostics() {
        eprint!("{}", d.render("service", ""));
    }
    server.shutdown();
    if pending > 0 {
        eprintln!(
            "autocsp serve: {pending} job(s) deferred; restart with the same --state-dir to finish them"
        );
        Ok(ExitCode::from(EXIT_INCONCLUSIVE))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `autocsp worker`: one farm worker, spawned by `serve`.
fn worker_cmd(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let connect = flags.connect.ok_or("`worker` needs `--connect`")?;
    let token = flags.token.ok_or("`worker` needs `--token`")?;
    // SIGTERM checkpoints the in-flight exploration; the verdict reports
    // interrupted and the orchestrator re-dispatches from the checkpoint.
    install_sigterm_handler();
    let config = service::worker::WorkerConfig {
        connect,
        token,
        exec: service::exec::ExecConfig {
            cache_dir: flags.cache_dir.map(PathBuf::from),
            checkpoint_every: flags.checkpoint_every,
        },
        heartbeat_ms: flags.heartbeat_ms.unwrap_or(200),
        die_after_states: flags.die_after_states,
    };
    match service::worker::run_worker(&config) {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(message) => {
            eprintln!("error: {message}");
            Ok(ExitCode::from(EXIT_INFRA))
        }
    }
}

/// Route `SIGTERM` to the checker's cooperative shutdown flag. The handler
/// performs a single relaxed atomic store (async-signal-safe); in-flight
/// exploration notices it at the next budget poll, writes its checkpoint
/// (when a cache is configured) and reports INCONCLUSIVE with a resume
/// token instead of dying mid-write.
#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_signum: i32) {
        fdrlite::request_interrupt();
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// A CSPm script loaded once and shared by every job that references it.
struct ScriptBundle {
    source: String,
    script: cspm::Script,
    loaded: cspm::LoadedScript,
}

use fdrlite::supervisor::JobExec;

fn load_bundle(path: &Path) -> Result<Rc<ScriptBundle>, String> {
    let display = path.display();
    let source = fs::read_to_string(path).map_err(|e| format!("cannot read `{display}`: {e}"))?;
    let script = cspm::Script::parse(&source).map_err(|e| format!("{display}: {e}"))?;
    let loaded = script.load().map_err(|e| format!("{display}: {e}"))?;
    Ok(Rc::new(ScriptBundle {
        source,
        script,
        loaded,
    }))
}

/// A job that can never run (unreadable script, bad configuration): fails
/// permanently with the reason, so the batch reports it instead of dying.
fn broken_job(why: String) -> JobExec {
    Box::new(move |_ctx| Err(fdrlite::supervisor::JobError::Permanent(why.clone())))
}

/// Apply the manifest's `[chaos]` plan: selected jobs fail transiently on
/// their leading attempts, exercising the supervisor's retry path.
fn chaos_gate(
    chaos: &Option<faults::storage::TransientJobFaults>,
    job: &str,
    ctx: &fdrlite::supervisor::JobCtx,
) -> Result<(), fdrlite::supervisor::JobError> {
    if let Some(plan) = chaos {
        if plan.should_fail(job, ctx.attempt) {
            return Err(fdrlite::supervisor::JobError::Transient(
                "injected transient fault (chaos plan)".to_owned(),
            ));
        }
    }
    Ok(())
}

/// Clamp a job's own wall budget to what is left of the run's budget.
fn clamp_wall(job_ms: Option<u64>, remaining_ms: Option<u64>) -> Option<u64> {
    match (job_ms, remaining_ms) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// `--storage-faults SEED[:EVERY]` for `run`.
fn parse_storage_faults(spec: &str) -> Result<(u64, u64), String> {
    let (seed, every) = match spec.split_once(':') {
        Some((s, e)) => (s, Some(e)),
        None => (spec, None),
    };
    let seed = seed
        .parse()
        .map_err(|_| "`--storage-faults` needs SEED[:EVERY]".to_owned())?;
    let every = match every {
        Some(e) => e
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "`--storage-faults` EVERY needs a number ≥ 1".to_owned())?,
        None => 1,
    };
    Ok((seed, every))
}

/// `*.jsonl` files under a corpus directory, sorted by name, read eagerly so
/// a job's input is fixed before the supervisor ever calls it.
fn read_corpus_dir(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let entries = fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus directory `{}`: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let text =
            fs::read_to_string(&p).map_err(|e| format!("cannot read `{}`: {e}", p.display()))?;
        out.push((p.display().to_string(), text));
    }
    if out.is_empty() {
        return Err(format!(
            "corpus directory `{}` has no `.jsonl` files",
            dir.display()
        ));
    }
    Ok(out)
}

#[allow(clippy::too_many_lines)]
fn run_cmd(args: &[String]) -> Result<ExitCode, String> {
    use fdrlite::supervisor as sup;

    let flags = parse_flags(args)?;
    let [manifest_path] = flags.positional.as_slice() else {
        return Err("run needs exactly one jobs manifest (TOML)".into());
    };
    install_sigterm_handler();
    let manifest_source = read(manifest_path)?;
    let base_dir = Path::new(manifest_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let manifest = match cspm::manifest::Manifest::parse(&manifest_source, &base_dir) {
        Ok(m) => m,
        Err(e) => {
            let span = match &e {
                cspm::CspmError::Parse { pos, .. } | cspm::CspmError::Lex { pos, .. } => {
                    Span::point(pos.line, pos.col)
                }
                _ => Span::unknown(),
            };
            let d = Diagnostic::error(sup::MANIFEST_ERROR, span, e.to_string());
            eprint!("{}", d.render(manifest_path, &manifest_source));
            return Err(format!("cannot load manifest `{manifest_path}`"));
        }
    };

    // One model store (and optional disk cache) shared by every job: jobs
    // over the same script reuse its compiled and normalised models.
    let resuming = flags.resume.is_some();
    let store = Rc::new(fdrlite::ModelStore::new());
    let cache = match (&flags.cache_dir, flags.no_cache) {
        (Some(dir), false) => {
            let cache = Arc::new(
                fdrlite::PersistentCache::open(dir)
                    .map_err(|e| format!("cannot open cache directory `{dir}`: {e}"))?,
            );
            store.set_persist(fdrlite::PersistConfig {
                cache: Arc::clone(&cache),
                checkpoint_every: flags.checkpoint_every,
                // `run` resumes whole batches; per-check tokens stay internal.
                resume: if resuming {
                    fdrlite::ResumePolicy::Auto
                } else {
                    fdrlite::ResumePolicy::Off
                },
            });
            Some(cache)
        }
        _ => None,
    };
    if let Some(spec) = &flags.storage_faults {
        let Some(cache) = &cache else {
            return Err(
                "`--storage-faults` needs `--cache-dir` (the fault hook lives on the cache)".into(),
            );
        };
        let (seed, every) = parse_storage_faults(spec)?;
        cache.set_fault_hook(Arc::new(faults::storage::StorageFaultEngine::new(
            seed,
            &[],
            every,
        )));
    }

    // The journal lives next to the cache when there is one, else next to
    // the manifest. A fresh (non-`--resume`) run never replays stale
    // outcomes: any leftover journal is removed first.
    let journal_path = cache.as_ref().map_or_else(
        || PathBuf::from(format!("{manifest_path}.journal")),
        |c| {
            c.root()
                .join(format!("jobs-{:016x}.journal", manifest.source_hash()))
        },
    );
    if !resuming {
        let _ = fs::remove_file(&journal_path);
    }
    let mut journal_diags = Vec::new();
    let mut journal = sup::Journal::open(&journal_path, manifest.source_hash(), &mut journal_diags);

    let chaos = Rc::new(manifest.chaos.map(|c| {
        faults::storage::TransientJobFaults::new(c.seed, c.transient_attempts, c.every_nth)
    }));
    let checker = Rc::new(Checker::new());
    let mut scripts: HashMap<PathBuf, Result<Rc<ScriptBundle>, String>> = HashMap::new();
    let mut jobs: Vec<sup::Job> = Vec::new();
    for (index, spec) in manifest.jobs.iter().enumerate() {
        let bundle = scripts
            .entry(spec.script.clone())
            .or_insert_with(|| load_bundle(&spec.script))
            .clone();
        let key = match &bundle {
            Ok(b) => manifest.job_key(index, &b.source),
            Err(why) => manifest.job_key(index, why),
        };
        let name = spec.name.clone();
        let force_panic = flags.force_panic.as_deref() == Some(name.as_str());
        let threads = spec
            .threads
            .or(manifest.run.threads)
            .unwrap_or(flags.threads);
        let max_states = spec
            .max_states
            .or(manifest.run.max_states)
            .or(flags.max_states);
        let timeout_ms = spec
            .timeout_ms
            .or(manifest.run.timeout_ms)
            .or(flags.timeout_ms);
        let chaos = Rc::clone(&chaos);
        let exec: JobExec = match &bundle {
            Err(why) => broken_job(why.clone()),
            Ok(bundle) => match spec.kind {
                cspm::manifest::JobKind::Check => {
                    let bundle = Rc::clone(bundle);
                    let store = Rc::clone(&store);
                    let checker = Rc::clone(&checker);
                    let assertion = spec.assertion.clone();
                    let jn = name.clone();
                    Box::new(move |ctx| {
                        chaos_gate(&chaos, &jn, ctx)?;
                        assert!(!force_panic, "forced panic (--force-panic)");
                        let options = cspm::CheckOptions {
                            threads,
                            collect_stats: false,
                            max_states,
                            max_wall_ms: clamp_wall(timeout_ms, ctx.remaining_ms),
                        };
                        let results = bundle
                            .loaded
                            .check_with_store(&checker, &options, &store)
                            .map_err(|e| sup::JobError::Permanent(e.to_string()))?;
                        let mut lines = Vec::new();
                        let mut refuted = 0_u32;
                        let mut inconclusive = 0_u32;
                        let mut matched = 0_u32;
                        let mut interrupted = false;
                        for r in &results {
                            if let Some(filter) = &assertion {
                                if !r.description.contains(filter.as_str()) {
                                    continue;
                                }
                            }
                            matched += 1;
                            if let Some(cex) = r.verdict.counterexample() {
                                refuted += 1;
                                lines.push(format!("assert {}  ...  FAIL", r.description));
                                lines.push(format!("  {}", cex.display(bundle.loaded.alphabet())));
                            } else if let Some(inc) = r.verdict.inconclusive() {
                                inconclusive += 1;
                                // No budget detail on stdout: the line must
                                // be identical across disturbed runs.
                                lines.push(format!("assert {}  ...  INCONCLUSIVE", r.description));
                                if inc.reason == fdrlite::BudgetReason::Interrupted {
                                    interrupted = true;
                                }
                                if let Some(token) = &inc.resume {
                                    eprintln!(
                                        "job {jn}: checkpoint saved; continue with `autocsp run --resume` \
                                         (or `autocsp check --resume {token}`)"
                                    );
                                }
                            } else {
                                lines.push(format!("assert {}  ...  PASS", r.description));
                            }
                        }
                        if matched == 0 {
                            return Err(sup::JobError::Permanent(match &assertion {
                                Some(f) => format!("no assertion matches filter `{f}`"),
                                None => "script contains no `assert` declarations".to_owned(),
                            }));
                        }
                        let status = if refuted > 0 {
                            sup::JobStatus::Refuted
                        } else if inconclusive > 0 {
                            sup::JobStatus::Inconclusive
                        } else {
                            sup::JobStatus::Passed
                        };
                        Ok(sup::JobReport {
                            status,
                            lines,
                            interrupted,
                        })
                    })
                }
                cspm::manifest::JobKind::Conform => {
                    let spec_name = spec.spec.clone().or_else(|| flags.spec.clone());
                    let corpus_dir = spec.corpus.clone();
                    match (spec_name, corpus_dir) {
                        (Some(spec_name), Some(dir)) => match read_corpus_dir(&dir) {
                            Err(why) => broken_job(why),
                            Ok(corpus) => {
                                let bundle = Rc::clone(bundle);
                                let store = Rc::clone(&store);
                                let checker = Rc::clone(&checker);
                                let jn = name.clone();
                                Box::new(move |ctx| {
                                    chaos_gate(&chaos, &jn, ctx)?;
                                    assert!(!force_panic, "forced panic (--force-panic)");
                                    let mut run = faults::batch::BatchRun::new(
                                        &bundle.loaded,
                                        &spec_name,
                                        &checker,
                                        &store,
                                    )
                                    .map_err(|e| sup::JobError::Permanent(e.to_string()))?;
                                    let mut labels = Vec::new();
                                    for (file, text) in &corpus {
                                        let (traces, _findings) = faults::batch::parse_corpus(text);
                                        for (line, trace) in traces {
                                            let label = trace
                                                .id
                                                .clone()
                                                .unwrap_or_else(|| format!("{file}:{line}"));
                                            run.push(&trace.events);
                                            labels.push(label);
                                        }
                                    }
                                    let report = run.finish(threads);
                                    let mut lines = Vec::new();
                                    let mut inconclusive = 0_u32;
                                    let mut interrupted = false;
                                    for (i, verdict) in report.verdicts.iter().enumerate() {
                                        let label = &labels[i];
                                        match verdict {
                                            ConformanceVerdict::Conformant => {}
                                            ConformanceVerdict::Refuted(cex) => {
                                                lines.push(format!("trace {label}  ...  FAIL"));
                                                lines.push(format!(
                                                    "  {}",
                                                    cex.display(bundle.loaded.alphabet())
                                                ));
                                            }
                                            ConformanceVerdict::UnknownEvent { event, index } => {
                                                lines.push(format!("trace {label}  ...  FAIL"));
                                                lines.push(format!(
                                                    "  (event #{index} `{event}` is not in the model's alphabet)"
                                                ));
                                            }
                                            ConformanceVerdict::Inconclusive(inc) => {
                                                inconclusive += 1;
                                                lines.push(format!(
                                                    "trace {label}  ...  INCONCLUSIVE"
                                                ));
                                                if inc.reason == fdrlite::BudgetReason::Interrupted
                                                {
                                                    interrupted = true;
                                                }
                                            }
                                        }
                                    }
                                    let refuted = report.stats.refuted;
                                    let unknown = report.stats.unknown_event;
                                    let outcome = if refuted + unknown > 0 {
                                        "FAIL"
                                    } else {
                                        "PASS"
                                    };
                                    lines.push(format!(
                                        "conformance {} [T= corpus  ...  {outcome}: {} trace(s), \
                                         {} conformant, {refuted} refuted, {unknown} unknown-event",
                                        report.spec, report.stats.traces, report.stats.conformant
                                    ));
                                    let status = if refuted + unknown > 0 {
                                        sup::JobStatus::Refuted
                                    } else if inconclusive > 0 {
                                        sup::JobStatus::Inconclusive
                                    } else {
                                        sup::JobStatus::Passed
                                    };
                                    Ok(sup::JobReport {
                                        status,
                                        lines,
                                        interrupted,
                                    })
                                })
                            }
                        },
                        (None, _) => broken_job(format!(
                            "conform job `{name}` needs `spec = \"NAME\"` (or `--spec`)"
                        )),
                        (_, None) => {
                            broken_job(format!("conform job `{name}` needs `corpus = \"DIR\"`"))
                        }
                    }
                }
                cspm::manifest::JobKind::Analyze => {
                    let bundle = Rc::clone(bundle);
                    let store = Rc::clone(&store);
                    let checker = Rc::clone(&checker);
                    let jn = name.clone();
                    let script_label = spec.script.display().to_string();
                    Box::new(move |ctx| {
                        chaos_gate(&chaos, &jn, ctx)?;
                        assert!(!force_panic, "forced panic (--force-panic)");
                        let analysis = cspm::analyze::analyze_script(
                            bundle.script.module(),
                            &bundle.loaded,
                            &checker,
                            &store,
                            max_states,
                        );
                        let errors = analysis
                            .diagnostics
                            .iter()
                            .filter(|d| d.severity == Severity::Error)
                            .count();
                        let warnings = analysis
                            .diagnostics
                            .iter()
                            .filter(|d| d.severity == Severity::Warning)
                            .count();
                        for d in &analysis.diagnostics {
                            eprint!("{}", d.render(&script_label, &bundle.source));
                        }
                        let lines = vec![format!(
                            "analyze {script_label}: {errors} error(s), {warnings} warning(s)"
                        )];
                        let status = if errors > 0 {
                            sup::JobStatus::Refuted
                        } else {
                            sup::JobStatus::Passed
                        };
                        Ok(sup::JobReport {
                            status,
                            lines,
                            interrupted: false,
                        })
                    })
                }
            },
        };
        jobs.push(sup::Job { name, key, exec });
    }

    let defaults = sup::RetryPolicy::default();
    let supervisor = sup::Supervisor::new(sup::SupervisorConfig {
        retry: sup::RetryPolicy {
            max_attempts: manifest.run.retries.unwrap_or(defaults.max_attempts).max(1),
            base_delay_ms: manifest.run.retry_base_ms.unwrap_or(defaults.base_delay_ms),
            max_delay_ms: manifest.run.retry_max_ms.unwrap_or(defaults.max_delay_ms),
            seed: manifest.run.retry_seed.or(flags.seed).unwrap_or(0),
        },
        run_timeout_ms: manifest.run.run_timeout_ms,
    });
    let outcome = supervisor.run(jobs, &mut journal);

    // Diagnostics (SUP5xx, STO4xx) go to stderr; stdout carries only the
    // deterministic verdict lines so disturbed and undisturbed runs diff
    // byte-identical.
    for d in journal_diags.iter().chain(&outcome.diagnostics) {
        eprint!("{}", d.render(manifest_path, &manifest_source));
    }
    if let Some(cache) = &cache {
        let root = cache.root().display().to_string();
        for d in cache.take_diagnostics() {
            eprint!("{}", d.render(&root, ""));
        }
        if flags.stats {
            eprintln!(
                "disk cache: {} hit(s), {} miss(es), {} quarantined, {} evicted, {} lock(s) stolen",
                cache.disk_hits(),
                cache.disk_misses(),
                cache.quarantined(),
                cache.evicted(),
                cache.locks_stolen()
            );
        }
    }
    if flags.stats {
        let replayed = outcome.jobs.iter().filter(|j| j.replayed).count();
        eprintln!(
            "supervisor: {} job(s), {} replayed from journal, {} transient retry(ies), {} deferred",
            outcome.jobs.len(),
            replayed,
            outcome.retries,
            outcome.deferred.len()
        );
    }

    let json_mode = flags.format == OutputFormat::Json;
    let mut passed = 0_u32;
    let mut refuted = 0_u32;
    let mut inconclusive = 0_u32;
    let mut failed = 0_u32;
    for job in &outcome.jobs {
        if !json_mode {
            for line in &job.lines {
                println!("{line}");
            }
            println!("job {}  ...  {}", job.name, job.status);
        }
        match job.status {
            sup::JobStatus::Passed => passed += 1,
            sup::JobStatus::Refuted => refuted += 1,
            sup::JobStatus::Inconclusive => inconclusive += 1,
            sup::JobStatus::Failed => failed += 1,
        }
    }
    if json_mode {
        // One JSON object on stdout; everything else is on stderr. The
        // object is deterministic for a given manifest outcome, so
        // disturbed and resumed runs still diff byte-identical.
        let jobs_json: Vec<String> = outcome
            .jobs
            .iter()
            .map(|job| {
                let lines: Vec<String> = job.lines.iter().map(|l| diag::json_string(l)).collect();
                format!(
                    "{{\"name\":{},\"status\":{},\"replayed\":{},\"lines\":[{}]}}",
                    diag::json_string(&job.name),
                    diag::json_string(&job.status.to_string()),
                    job.replayed,
                    lines.join(",")
                )
            })
            .collect();
        let deferred: Vec<String> = outcome
            .deferred
            .iter()
            .map(|name| diag::json_string(name))
            .collect();
        println!(
            "{{\"manifest\":{},\"jobs\":[{}],\"passed\":{passed},\"refuted\":{refuted},\
             \"inconclusive\":{inconclusive},\"failed\":{failed},\"deferred\":[{}]}}",
            diag::json_string(manifest_path),
            jobs_json.join(","),
            deferred.join(",")
        );
    } else {
        println!(
            "run: {} job(s): {passed} passed, {refuted} refuted, {inconclusive} inconclusive, \
             {failed} failed",
            outcome.jobs.len()
        );
    }
    if outcome.deferred.is_empty() {
        journal.remove();
    } else {
        eprintln!(
            "{} job(s) deferred: {}; finish with `autocsp run --resume {manifest_path}`",
            outcome.deferred.len(),
            outcome.deferred.join(", ")
        );
    }

    if outcome.any_failed() {
        eprintln!("{failed} job(s) failed (infrastructure)");
        return Ok(ExitCode::from(EXIT_INFRA));
    }
    if outcome.any_refuted() {
        return Err(format!("{refuted} job(s) refuted"));
    }
    if outcome.any_inconclusive() {
        return Ok(ExitCode::from(EXIT_INCONCLUSIVE));
    }
    Ok(ExitCode::SUCCESS)
}

fn compose(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let [gateway_path, ecu_path] = flags.positional.as_slice() else {
        return Err("compose needs a gateway CAPL file and an ECU CAPL file".into());
    };
    let db = flags
        .dbc
        .as_deref()
        .map(|p| candb::parse(&read(p)?).map_err(|e| e.to_string()))
        .transpose()?;

    let mut findings = Vec::new();
    let mut programs = Vec::new();
    for path in [gateway_path, ecu_path] {
        let source = read(path)?;
        let program = capl::parse(&source).map_err(|e| e.to_string())?;
        let mut diagnostics = lint::lint_program(&program);
        if let Some(db) = &db {
            diagnostics.extend(lint::cross_check(&program, db));
        }
        findings.push(FileFindings {
            file: path.clone(),
            source,
            diagnostics,
        });
        programs.push(program);
    }
    gate(&findings, flags.deny_warnings)?;

    let ecu = programs.pop().expect("two programs parsed");
    let gateway = programs.pop().expect("two programs parsed");
    let mut builder = SystemBuilder::new()
        .node(NodeSpec::gateway(
            &node_name_from(gateway_path, "VMG"),
            gateway,
        ))
        .node(NodeSpec::ecu(&node_name_from(ecu_path, "ECU"), ecu));
    if let Some(db) = db {
        builder = builder.database(db);
    }
    if let Some(capacity) = flags.buffered {
        builder = builder.buffered(capacity);
    }
    let out = builder.build().map_err(|e| e.to_string())?;
    emit(&flags.output, &out.script)?;
    Ok(ExitCode::SUCCESS)
}

/// Parse and validate a fault plan: parse errors and error-severity lints
/// (cross-checked against `db` when present) are fatal; warnings render to
/// stderr.
fn load_fault_plan(path: &str, db: Option<&candb::Database>) -> Result<FaultPlan, String> {
    let source = read(path)?;
    let plan = match FaultPlan::parse(&source) {
        Ok(plan) => plan,
        Err(parse_errors) => {
            for d in &parse_errors {
                eprint!("{}", d.render(path, &source));
            }
            return Err(format!("{} fault-plan error(s)", parse_errors.len()));
        }
    };
    let findings = lint_plan(&plan, db);
    for d in &findings {
        eprint!("{}", d.render(path, &source));
    }
    let errors = findings
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if errors > 0 {
        return Err(format!("{errors} fault-plan error(s)"));
    }
    Ok(plan)
}

fn simulate(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    if flags.positional.is_empty() {
        return Err("simulate needs at least one CAPL file".into());
    }
    let db = flags
        .dbc
        .as_deref()
        .map(|p| candb::parse(&read(p)?).map_err(|e| e.to_string()))
        .transpose()?;
    let plan = flags
        .faults
        .as_deref()
        .map(|p| load_fault_plan(p, db.as_ref()))
        .transpose()?;

    let mut sim = canoe_sim::Simulation::new(db);
    for path in &flags.positional {
        let program = capl::parse(&read(path)?).map_err(|e| e.to_string())?;
        sim.add_node(&node_name_from(path, "NODE"), program)
            .map_err(|e| e.to_string())?;
    }
    match &plan {
        Some(plan) => {
            faults::apply_plan(&mut sim, plan, flags.seed).map_err(|e| e.to_string())?;
        }
        None => {
            if let Some(seed) = flags.seed {
                sim.set_seed(seed);
            }
        }
    }
    sim.run_for(flags.for_ms * 1_000)
        .map_err(|e| e.to_string())?;
    for entry in sim.trace() {
        use canoe_sim::TraceEvent::*;
        let text = match &entry.event {
            Queued { node, message, .. } => format!("{node:>8}  queued    {message}"),
            Transmit {
                node, message, id, ..
            } => {
                format!("{node:>8}  transmit  {message} (0x{id:x})")
            }
            Receive { node, message, .. } => format!("{node:>8}  receive   {message}"),
            Log { node, text } => format!("{node:>8}  log       {text}"),
            TimerFired { node, timer } => format!("{node:>8}  timer     {timer}"),
            Intercepted { action, id } => format!("{:>8}  intercept {action} (0x{id:x})", "<mitm>"),
            Injected { message, id, .. } => {
                format!("{:>8}  inject    {message} (0x{id:x})", "<extern>")
            }
            Fault { fault, action, id } => {
                format!("{:>8}  fault     [{fault}] {action} (0x{id:x})", "<fault>")
            }
        };
        println!("{:>9} µs  {text}", entry.time_us);
    }

    if let Some(model_path) = &flags.conformance {
        let Some(plan) = &plan else {
            return Err("`--conformance` needs `--faults` (the plan's [[map]] rules)".into());
        };
        let Some(conf) = &plan.conformance else {
            return Err(format!(
                "fault plan `{}` has no [conformance] section",
                plan.name
            ));
        };
        let model_source = read(model_path)?;
        let loaded = cspm::Script::parse(&model_source)
            .map_err(|e| e.to_string())?
            .load()
            .map_err(|e| e.to_string())?;
        // One trace is just a batch of one: route through the batch engine so
        // `simulate --conformance` and `conform` share one code path (and one
        // set of stats counters).
        let store = fdrlite::ModelStore::new();
        let mut run = faults::batch::BatchRun::new(&loaded, &conf.spec, &Checker::new(), &store)
            .map_err(|e| e.to_string())?;
        let (index, events) = run.push_entries(sim.trace(), &conf.rules);
        let report = run.finish(flags.threads);
        eprintln!(
            "conformance: lifted {} event(s): ⟨{}⟩",
            events.len(),
            events.join(", ")
        );
        if flags.stats {
            eprintln!("conformance stats: {}", report.stats);
        }
        match &report.verdicts[index] {
            ConformanceVerdict::Conformant => {
                println!("conformance {} [T= ⟨trace⟩  ...  PASS", report.spec);
            }
            ConformanceVerdict::UnknownEvent { event, index } => {
                println!("conformance {} [T= ⟨trace⟩  ...  FAIL", report.spec);
                return Err(format!(
                    "trace event #{index} `{event}` is not in the model's alphabet"
                ));
            }
            ConformanceVerdict::Refuted(cex) => {
                println!("conformance {} [T= ⟨trace⟩  ...  FAIL", report.spec);
                println!("  {}", cex.display(loaded.alphabet()));
                return Err("simulated trace is not a trace of the model".into());
            }
            ConformanceVerdict::Inconclusive(inc) => {
                println!(
                    "conformance {} [T= ⟨trace⟩  ...  INCONCLUSIVE ({inc})",
                    report.spec
                );
                return Ok(ExitCode::from(EXIT_INCONCLUSIVE));
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Where one ingested trace came from, for labelling verdicts and placing
/// `SIM311` findings.
struct TraceOrigin {
    label: String,
    file: usize,
    line: u32,
}

fn conform(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let Some((model_path, corpus_paths)) = flags.positional.split_first() else {
        return Err("conform needs a CSPm model file".into());
    };

    let spec_name = match (&flags.spec, &flags.faults) {
        (Some(spec), _) => spec.clone(),
        (None, Some(plan_path)) => {
            let plan = load_fault_plan(plan_path, None)?;
            let conf = plan.conformance.as_ref().ok_or_else(|| {
                format!("fault plan `{}` has no [conformance] section", plan.name)
            })?;
            conf.spec.clone()
        }
        (None, None) => {
            return Err(
                "conform needs `--spec <NAME>` or `--faults <plan>` (its [conformance] spec)"
                    .into(),
            )
        }
    };

    // Corpus sources in a deterministic order: positional files (command-line
    // order), then `--traces-dir` (sorted by file name), then stdin.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in corpus_paths {
        sources.push((path.clone(), read(path)?));
    }
    if let Some(dir) = &flags.traces_dir {
        let entries =
            fs::read_dir(dir).map_err(|e| format!("cannot read directory `{dir}`: {e}"))?;
        let mut paths: Vec<String> = entries
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .filter_map(|p| p.to_str().map(str::to_owned))
            .collect();
        paths.sort();
        for path in paths {
            let text = read(&path)?;
            sources.push((path, text));
        }
    }
    if flags.stdin {
        use std::io::Read as _;
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        sources.push(("<stdin>".to_owned(), text));
    }
    if sources.is_empty() {
        return Err(
            "conform needs a corpus: positional `.jsonl` files, `--traces-dir`, or `--stdin`"
                .into(),
        );
    }

    let model_source = read(model_path)?;
    let loaded = cspm::Script::parse(&model_source)
        .map_err(|e| e.to_string())?
        .load()
        .map_err(|e| e.to_string())?;
    let checker = Checker::new();
    let store = fdrlite::ModelStore::new();
    let mut run = faults::batch::BatchRun::new(&loaded, &spec_name, &checker, &store)
        .map_err(|e| e.to_string())?;

    // Streaming ingest: each source parses, merges into the trie, and drops
    // its trace vector before the next is read; only the source text (kept
    // for rendering findings) and the trie stay resident.
    let mut origins: Vec<TraceOrigin> = Vec::new();
    let mut findings: Vec<FileFindings> = Vec::new();
    for (file_index, (file, text)) in sources.iter().enumerate() {
        let (traces, diagnostics) = faults::batch::parse_corpus(text);
        for (line, trace) in traces {
            let label = trace.id.clone().unwrap_or_else(|| format!("{file}:{line}"));
            let index = run.push(&trace.events);
            debug_assert_eq!(index, origins.len());
            origins.push(TraceOrigin {
                label,
                file: file_index,
                line,
            });
        }
        findings.push(FileFindings {
            file: file.clone(),
            source: text.clone(),
            diagnostics,
        });
    }
    if run.is_empty() {
        findings[0].diagnostics.push(
            Diagnostic::warning(
                faults::codes::CORPUS_EMPTY,
                Span::point(1, 1),
                "trace corpus contains no traces",
            )
            .with_note("every verdict set over an empty corpus is vacuously conformant"),
        );
    }

    let report = run.finish(flags.threads);

    for (i, verdict) in report.verdicts.iter().enumerate() {
        if let ConformanceVerdict::UnknownEvent { event, index } = verdict {
            let origin = &origins[i];
            findings[origin.file].diagnostics.push(Diagnostic::warning(
                faults::codes::CORPUS_UNKNOWN_EVENT,
                Span::point(origin.line, 1),
                format!(
                    "trace `{}` event #{index} `{event}` is not in the model's alphabet",
                    origin.label
                ),
            ));
        }
    }
    for f in &mut findings {
        cspm::analyze::sort_diagnostics(&mut f.diagnostics);
    }
    for f in &findings {
        for d in &f.diagnostics {
            eprint!("{}", d.render(&f.file, &f.source));
        }
    }
    let warnings = count(&findings, Severity::Warning);

    let refuted = report.stats.refuted;
    let unknown = report.stats.unknown_event;
    let inconclusive = report
        .verdicts
        .iter()
        .filter(|v| matches!(v, ConformanceVerdict::Inconclusive(_)))
        .count();
    let nonconformant = refuted + unknown;

    match flags.format {
        OutputFormat::Text => {
            for (i, verdict) in report.verdicts.iter().enumerate() {
                let label = &origins[i].label;
                match verdict {
                    ConformanceVerdict::Conformant => {}
                    ConformanceVerdict::Refuted(cex) => {
                        println!("trace {label}  ...  FAIL");
                        println!("  {}", cex.display(loaded.alphabet()));
                    }
                    ConformanceVerdict::UnknownEvent { event, index } => {
                        println!("trace {label}  ...  FAIL");
                        println!("  (event #{index} `{event}` is not in the model's alphabet)");
                    }
                    ConformanceVerdict::Inconclusive(inc) => {
                        println!("trace {label}  ...  INCONCLUSIVE ({inc})");
                    }
                }
            }
            let outcome = if nonconformant > 0 { "FAIL" } else { "PASS" };
            println!(
                "conformance {} [T= corpus  ...  {outcome}: {} trace(s), {} conformant, \
                 {} refuted, {} unknown-event",
                report.spec, report.stats.traces, report.stats.conformant, refuted, unknown
            );
        }
        OutputFormat::Json => {
            // Deliberately timing-free: the object is a pure function of the
            // (model, corpus) pair, so runs at different `--threads` counts —
            // or on different machines — diff byte-identical.
            use diag::json_string as js;
            let verdicts: Vec<String> = report
                .verdicts
                .iter()
                .enumerate()
                .map(|(i, verdict)| {
                    let label = js(&origins[i].label);
                    match verdict {
                        ConformanceVerdict::Conformant => {
                            format!("{{\"trace\":{label},\"verdict\":\"conformant\"}}")
                        }
                        ConformanceVerdict::Refuted(cex) => format!(
                            "{{\"trace\":{label},\"verdict\":\"refuted\",\"counterexample\":{}}}",
                            js(&cex.display(loaded.alphabet()).to_string())
                        ),
                        ConformanceVerdict::UnknownEvent { event, index } => format!(
                            "{{\"trace\":{label},\"verdict\":\"unknown_event\",\
                             \"event\":{},\"index\":{index}}}",
                            js(event)
                        ),
                        ConformanceVerdict::Inconclusive(inc) => format!(
                            "{{\"trace\":{label},\"verdict\":\"inconclusive\",\"reason\":{}}}",
                            js(&inc.to_string())
                        ),
                    }
                })
                .collect();
            println!(
                "{{\"spec\":{},\"traces\":{},\"conformant\":{},\"refuted\":{refuted},\
                 \"unknown_event\":{unknown},\"verdicts\":[{}]}}",
                js(&report.spec),
                report.stats.traces,
                report.stats.conformant,
                verdicts.join(",")
            );
        }
    }

    if flags.stats {
        eprintln!("conformance stats: {}", report.stats);
    }
    if let Some(path) = &flags.stats_json {
        fs::write(path, format!("{}\n", report.stats.to_json()))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }

    if nonconformant > 0 {
        Err(format!(
            "{nonconformant} of {} trace(s) do not conform to {}",
            report.stats.traces, report.spec
        ))
    } else if inconclusive > 0 {
        Ok(ExitCode::from(EXIT_INCONCLUSIVE))
    } else if flags.deny_warnings && warnings > 0 {
        Err(format!(
            "{warnings} corpus warning(s) denied (--deny-warnings)"
        ))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn replay_cmd(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let Some((cex_path, node_paths)) = flags.positional.split_first() else {
        return Err("replay needs a counterexample JSON file and at least one CAPL file".into());
    };
    if node_paths.is_empty() {
        return Err("replay needs at least one CAPL file (the node under test)".into());
    }
    let file = faults::replay::ReplayFile::parse(&read(cex_path)?).map_err(|e| e.to_string())?;
    let db = flags
        .dbc
        .as_deref()
        .map(|p| candb::parse(&read(p)?).map_err(|e| e.to_string()))
        .transpose()?
        .ok_or("replay needs `--dbc` to map events onto frames")?;

    let mut sim = canoe_sim::Simulation::new(Some(db.clone()));
    let mut first_node = None;
    for path in node_paths {
        let program = capl::parse(&read(path)?).map_err(|e| e.to_string())?;
        let name = node_name_from(path, "NODE");
        first_node.get_or_insert_with(|| name.clone());
        sim.add_node(&name, program).map_err(|e| e.to_string())?;
    }
    if let Some(seed) = flags.seed {
        sim.set_seed(seed);
    }

    let mut config = faults::replay::ReplayConfig::for_node(
        &flags
            .node
            .or(first_node)
            .ok_or("replay could not determine the node under test")?,
    );
    if !flags.stimulus.is_empty() {
        config.stimulus_prefixes = flags.stimulus.clone();
    }
    if !flags.expect.is_empty() {
        config.expect_prefixes = flags.expect.clone();
    }
    config.gap_us = flags.gap_us;

    eprintln!("replaying `{}` ({})", file.assertion, file.kind);
    let outcome =
        faults::replay::replay(&mut sim, &db, &file.events, &config).map_err(|e| e.to_string())?;
    println!(
        "injected ⟨{}⟩, expected ⟨{}⟩, observed ⟨{}⟩",
        outcome.injected.join(", "),
        outcome.expected.join(", "),
        outcome.observed.join(", ")
    );
    if !outcome.is_conclusive() {
        // Uniform exit-code contract: 3 whenever a run can neither confirm
        // nor refute (same as a budget-exhausted `check` assertion or an
        // inconclusive `simulate --conformance`).
        println!("replay INCONCLUSIVE: no expected responses to observe");
        Ok(ExitCode::from(EXIT_INCONCLUSIVE))
    } else if outcome.reproduced {
        println!("violation REPRODUCED on the simulated bus");
        Ok(ExitCode::SUCCESS)
    } else {
        Err("violation did not reproduce".into())
    }
}
