//! `autocsp` — the command-line face of the toolchain.
//!
//! ```text
//! autocsp translate <app.can> [--dbc net.dbc] [--node ECU] [--gateway] [-o out.csp]
//! autocsp check <model.csp>
//! autocsp compose <gateway.can> <ecu.can> [--dbc net.dbc] [--buffered N] [-o out.csp]
//! autocsp simulate <node.can>... [--dbc net.dbc] [--for-ms N]
//! ```

use std::fs;
use std::process::ExitCode;

use fdrlite::Checker;
use translator::{NodeSpec, Pipeline, SystemBuilder, TranslateConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("translate") => translate(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("compose") => compose(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
autocsp — security checking of automotive ECUs with formal CSP models

USAGE:
  autocsp translate <app.can> [--dbc <net.dbc>] [--node <NAME>] [--gateway] [-o <out.csp>]
      Extract a CSPm implementation model from a CAPL application.

  autocsp check <model.csp>
      Run every `assert` in a CSPm script through the refinement checker.

  autocsp compose <gateway.can> <ecu.can> [--dbc <net.dbc>] [--buffered <N>] [-o <out.csp>]
      Translate both nodes and compose SYSTEM = GATEWAY ∥ ECU.

  autocsp simulate <node.can>... [--dbc <net.dbc>] [--for-ms <N>]
      Run CAPL applications on the simulated CAN bus and print the trace.
";

struct Flags {
    positional: Vec<String>,
    dbc: Option<String>,
    node: Option<String>,
    gateway: bool,
    buffered: Option<usize>,
    output: Option<String>,
    for_ms: u64,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        dbc: None,
        node: None,
        gateway: false,
        buffered: None,
        output: None,
        for_ms: 1_000,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--dbc" => flags.dbc = Some(value(args, &mut i, "--dbc")?),
            "--node" => flags.node = Some(value(args, &mut i, "--node")?),
            "--gateway" => flags.gateway = true,
            "--buffered" => {
                flags.buffered = Some(
                    value(args, &mut i, "--buffered")?
                        .parse()
                        .map_err(|_| "`--buffered` needs a number".to_owned())?,
                )
            }
            "-o" | "--output" => flags.output = Some(value(args, &mut i, "-o")?),
            "--for-ms" => {
                flags.for_ms = value(args, &mut i, "--for-ms")?
                    .parse()
                    .map_err(|_| "`--for-ms` needs a number".to_owned())?
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => flags.positional.push(other.to_owned()),
        }
        i += 1;
    }
    Ok(flags)
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn emit(output: &Option<String>, text: &str) -> Result<(), String> {
    match output {
        Some(path) => {
            fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn node_name_from(path: &str, fallback: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .map(str::to_uppercase)
        .unwrap_or_else(|| fallback.to_owned())
}

fn translate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [source_path] = flags.positional.as_slice() else {
        return Err("translate needs exactly one CAPL file".into());
    };
    let source = read(source_path)?;
    let dbc = flags.dbc.as_deref().map(read).transpose()?;
    let name = flags
        .node
        .clone()
        .unwrap_or_else(|| node_name_from(source_path, "NODE"));
    let config = if flags.gateway {
        TranslateConfig::gateway(&name)
    } else {
        TranslateConfig::ecu(&name)
    };
    let pipeline = Pipeline::new(config);
    let out = pipeline
        .run(&source, dbc.as_deref())
        .map_err(|e| e.to_string())?;
    for d in &out.diagnostics {
        eprintln!("{source_path}:{}: {:?}: {}", d.pos, d.severity, d.message);
    }
    for a in &out.report.abstractions {
        eprintln!("abstraction [{:?}] {}", a.kind, a.detail);
    }
    emit(&flags.output, &out.script)
}

fn check(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [script_path] = flags.positional.as_slice() else {
        return Err("check needs exactly one CSPm file".into());
    };
    let source = read(script_path)?;
    let loaded = cspm::Script::parse(&source)
        .and_then(|s| s.load())
        .map_err(|e| e.to_string())?;
    if loaded.assertions().is_empty() {
        return Err("script contains no `assert` declarations".into());
    }
    let results = loaded.check(&Checker::new()).map_err(|e| e.to_string())?;
    let mut failures = 0;
    for r in &results {
        match r.verdict.counterexample() {
            None => println!("assert {}  ...  PASS", r.description),
            Some(cex) => {
                failures += 1;
                println!("assert {}  ...  FAIL", r.description);
                println!("  {}", cex.display(loaded.alphabet()));
            }
        }
    }
    if failures > 0 {
        Err(format!("{failures} assertion(s) failed"))
    } else {
        Ok(())
    }
}

fn compose(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [gateway_path, ecu_path] = flags.positional.as_slice() else {
        return Err("compose needs a gateway CAPL file and an ECU CAPL file".into());
    };
    let gateway = capl::parse(&read(gateway_path)?).map_err(|e| e.to_string())?;
    let ecu = capl::parse(&read(ecu_path)?).map_err(|e| e.to_string())?;
    let mut builder = SystemBuilder::new()
        .node(NodeSpec::gateway(
            &node_name_from(gateway_path, "VMG"),
            gateway,
        ))
        .node(NodeSpec::ecu(&node_name_from(ecu_path, "ECU"), ecu));
    if let Some(dbc_path) = &flags.dbc {
        builder = builder.database(candb::parse(&read(dbc_path)?).map_err(|e| e.to_string())?);
    }
    if let Some(capacity) = flags.buffered {
        builder = builder.buffered(capacity);
    }
    let out = builder.build().map_err(|e| e.to_string())?;
    emit(&flags.output, &out.script)
}

fn simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.positional.is_empty() {
        return Err("simulate needs at least one CAPL file".into());
    }
    let db = flags
        .dbc
        .as_deref()
        .map(|p| candb::parse(&read(p)?).map_err(|e| e.to_string()))
        .transpose()?;
    let mut sim = canoe_sim::Simulation::new(db);
    for path in &flags.positional {
        let program = capl::parse(&read(path)?).map_err(|e| e.to_string())?;
        sim.add_node(&node_name_from(path, "NODE"), program)
            .map_err(|e| e.to_string())?;
    }
    sim.run_for(flags.for_ms * 1_000).map_err(|e| e.to_string())?;
    for entry in sim.trace() {
        use canoe_sim::TraceEvent::*;
        let text = match &entry.event {
            Queued { node, message, .. } => format!("{node:>8}  queued    {message}"),
            Transmit { node, message, id, .. } => {
                format!("{node:>8}  transmit  {message} (0x{id:x})")
            }
            Receive { node, message, .. } => format!("{node:>8}  receive   {message}"),
            Log { node, text } => format!("{node:>8}  log       {text}"),
            TimerFired { node, timer } => format!("{node:>8}  timer     {timer}"),
            Intercepted { action, id } => format!("{:>8}  intercept {action} (0x{id:x})", "<mitm>"),
        };
        println!("{:>9} µs  {text}", entry.time_us);
    }
    Ok(())
}
