//! `autocsp` — the command-line face of the toolchain.
//!
//! ```text
//! autocsp translate <app.can> [--dbc net.dbc] [--node ECU] [--gateway] [-o out.csp]
//! autocsp lint <file>... [--dbc net.dbc] [--format json] [--deny-warnings]
//! autocsp check <model.csp> [--threads N] [--stats] [--stats-json out.json]
//! autocsp compose <gateway.can> <ecu.can> [--dbc net.dbc] [--buffered N] [-o out.csp]
//! autocsp simulate <node.can>... [--dbc net.dbc] [--for-ms N]
//! ```

use std::fs;
use std::process::ExitCode;

use diag::{Diagnostic, Severity, Span};
use fdrlite::Checker;
use translator::{NodeSpec, Pipeline, SystemBuilder, TranslateConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("translate") => translate(&args[1..]),
        Some("lint") => lint_cmd(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("compose") => compose(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("--version" | "-V" | "version") => {
            println!("autocsp {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
autocsp — security checking of automotive ECUs with formal CSP models

USAGE:
  autocsp translate <app.can> [--dbc <net.dbc>] [--node <NAME>] [--gateway] [-o <out.csp>]
      Extract a CSPm implementation model from a CAPL application.
      Lint findings print to stderr; error-severity findings abort.

  autocsp lint <file>... [--dbc <net.dbc>] [--format <text|json>] [--deny-warnings]
      Statically analyse CAPL (`.can`) and CSPm (`.csp`/`.cspm`) files.
      With `--dbc`, also checks database hygiene and CAPL/database
      consistency. Exits non-zero on errors (or warnings, under
      `--deny-warnings`).

  autocsp check <model.csp> [--deny-warnings] [--threads <N>] [--stats]
                [--stats-json <out.json>]
      Run every `assert` in a CSPm script through the refinement checker.
      `--threads N` (alias `-j`) checks trace refinements with the
      work-stealing parallel engine; verdicts and counterexamples are
      identical to the serial engine for any N. `--stats` prints per-
      assertion exploration statistics to stderr; `--stats-json` writes
      them to a file as JSON.

  autocsp compose <gateway.can> <ecu.can> [--dbc <net.dbc>] [--buffered <N>] [-o <out.csp>]
      Translate both nodes and compose SYSTEM = GATEWAY ∥ ECU.

  autocsp simulate <node.can>... [--dbc <net.dbc>] [--for-ms <N>]
      Run CAPL applications on the simulated CAN bus and print the trace.

  autocsp --version
      Print the toolchain version.
";

struct Flags {
    positional: Vec<String>,
    dbc: Option<String>,
    node: Option<String>,
    gateway: bool,
    buffered: Option<usize>,
    output: Option<String>,
    for_ms: u64,
    format: OutputFormat,
    deny_warnings: bool,
    threads: usize,
    stats: bool,
    stats_json: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        dbc: None,
        node: None,
        gateway: false,
        buffered: None,
        output: None,
        for_ms: 1_000,
        format: OutputFormat::Text,
        deny_warnings: false,
        threads: 1,
        stats: false,
        stats_json: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("`{flag}` needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--dbc" => flags.dbc = Some(value(args, &mut i, "--dbc")?),
            "--node" => flags.node = Some(value(args, &mut i, "--node")?),
            "--gateway" => flags.gateway = true,
            "--buffered" => {
                flags.buffered = Some(
                    value(args, &mut i, "--buffered")?
                        .parse()
                        .map_err(|_| "`--buffered` needs a number".to_owned())?,
                );
            }
            "-o" | "--output" => flags.output = Some(value(args, &mut i, "-o")?),
            "--for-ms" => {
                flags.for_ms = value(args, &mut i, "--for-ms")?
                    .parse()
                    .map_err(|_| "`--for-ms` needs a number".to_owned())?;
            }
            "--format" => {
                flags.format = match value(args, &mut i, "--format")?.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    other => return Err(format!("unknown format `{other}` (use text or json)")),
                }
            }
            "--deny-warnings" => flags.deny_warnings = true,
            "--threads" | "-j" => {
                flags.threads = value(args, &mut i, "--threads")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "`--threads` needs a number ≥ 1".to_owned())?;
            }
            "--stats" => flags.stats = true,
            "--stats-json" => flags.stats_json = Some(value(args, &mut i, "--stats-json")?),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => flags.positional.push(other.to_owned()),
        }
        i += 1;
    }
    Ok(flags)
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn emit(output: &Option<String>, text: &str) -> Result<(), String> {
    match output {
        Some(path) => {
            fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn node_name_from(path: &str, fallback: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .map(str::to_uppercase)
        .unwrap_or_else(|| fallback.to_owned())
}

/// One file's findings, ready for rendering in either output format.
struct FileFindings {
    file: String,
    source: String,
    diagnostics: Vec<Diagnostic>,
}

/// Print findings (text to stderr) and apply the gating policy: errors always
/// fail; warnings fail under `--deny-warnings`.
fn gate(findings: &[FileFindings], deny_warnings: bool) -> Result<(), String> {
    for f in findings {
        for d in &f.diagnostics {
            eprint!("{}", d.render(&f.file, &f.source));
        }
    }
    let errors = count(findings, Severity::Error);
    let warnings = count(findings, Severity::Warning);
    if errors > 0 {
        Err(format!("{errors} lint error(s)"))
    } else if deny_warnings && warnings > 0 {
        Err(format!(
            "{warnings} lint warning(s) denied (--deny-warnings)"
        ))
    } else {
        Ok(())
    }
}

fn count(findings: &[FileFindings], severity: Severity) -> usize {
    findings
        .iter()
        .flat_map(|f| &f.diagnostics)
        .filter(|d| d.severity == severity)
        .count()
}

fn translate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [source_path] = flags.positional.as_slice() else {
        return Err("translate needs exactly one CAPL file".into());
    };
    let source = read(source_path)?;
    let dbc = flags.dbc.as_deref().map(read).transpose()?;
    let name = flags
        .node
        .clone()
        .unwrap_or_else(|| node_name_from(source_path, "NODE"));
    let config = if flags.gateway {
        TranslateConfig::gateway(&name)
    } else {
        TranslateConfig::ecu(&name)
    };
    let pipeline = Pipeline::new(config);
    let out = pipeline
        .run(&source, dbc.as_deref())
        .map_err(|e| e.to_string())?;
    let findings = [
        FileFindings {
            file: source_path.clone(),
            source,
            diagnostics: out.lints.capl.clone(),
        },
        FileFindings {
            file: flags.dbc.clone().unwrap_or_default(),
            source: dbc.unwrap_or_default(),
            diagnostics: out.lints.dbc.clone(),
        },
        FileFindings {
            file: format!("<generated {name} model>"),
            source: out.script.clone(),
            diagnostics: out.lints.csp.clone(),
        },
    ];
    gate(&findings, flags.deny_warnings)?;
    for a in &out.report.abstractions {
        eprintln!("abstraction [{:?}] {}", a.kind, a.detail);
    }
    emit(&flags.output, &out.script)
}

fn lint_cmd(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.positional.is_empty() && flags.dbc.is_none() {
        return Err("lint needs at least one file (`.can`, `.csp`/`.cspm`, or --dbc)".into());
    }

    // Parse the database first: `.can` files cross-check against it.
    let mut findings: Vec<FileFindings> = Vec::new();
    let mut db = None;
    if let Some(dbc_path) = &flags.dbc {
        let source = read(dbc_path)?;
        let diagnostics = match candb::parse(&source) {
            Ok(parsed) => {
                let d = lint::lint_database(&parsed);
                db = Some(parsed);
                d
            }
            Err(e) => vec![Diagnostic::error(
                lint::codes::DBC_PARSE_ERROR,
                Span::point(e.line as u32, 1),
                e.to_string(),
            )],
        };
        findings.push(FileFindings {
            file: dbc_path.clone(),
            source,
            diagnostics,
        });
    }

    for path in &flags.positional {
        let source = read(path)?;
        let diagnostics = if path.ends_with(".csp") || path.ends_with(".cspm") {
            match cspm::Script::parse(&source) {
                Ok(script) => lint::lint_module(script.module()),
                Err(e) => vec![cspm_parse_diagnostic(&e)],
            }
        } else {
            match capl::parse(&source) {
                Ok(program) => {
                    let mut d = lint::lint_program(&program);
                    if let Some(db) = &db {
                        d.extend(lint::cross_check(&program, db));
                    }
                    d
                }
                Err(e) => {
                    let pos = match &e {
                        capl::CaplError::Lex { pos, .. } | capl::CaplError::Parse { pos, .. } => {
                            *pos
                        }
                    };
                    vec![Diagnostic::error(
                        lint::codes::CAPL_PARSE_ERROR,
                        Span::point(pos.line, pos.col),
                        e.to_string(),
                    )]
                }
            }
        };
        findings.push(FileFindings {
            file: path.clone(),
            source,
            diagnostics,
        });
    }

    let errors = count(&findings, Severity::Error);
    let warnings = count(&findings, Severity::Warning);

    match flags.format {
        OutputFormat::Text => {
            for f in &findings {
                for d in &f.diagnostics {
                    print!("{}", d.render(&f.file, &f.source));
                }
            }
            println!("{errors} error(s), {warnings} warning(s)");
        }
        OutputFormat::Json => {
            let items: Vec<String> = findings
                .iter()
                .flat_map(|f| f.diagnostics.iter().map(|d| d.to_json(&f.file)))
                .collect();
            println!(
                "{{\"diagnostics\":[{}],\"errors\":{errors},\"warnings\":{warnings}}}",
                items.join(",")
            );
        }
    }

    if errors > 0 {
        Err(format!("{errors} lint error(s)"))
    } else if flags.deny_warnings && warnings > 0 {
        Err(format!(
            "{warnings} lint warning(s) denied (--deny-warnings)"
        ))
    } else {
        Ok(())
    }
}

fn cspm_parse_diagnostic(e: &cspm::CspmError) -> Diagnostic {
    let span = match e {
        cspm::CspmError::Lex { pos, .. } | cspm::CspmError::Parse { pos, .. } => {
            Span::point(pos.line, pos.col)
        }
        _ => Span::unknown(),
    };
    Diagnostic::error(lint::codes::CSP_PARSE_ERROR, span, e.to_string())
}

fn check(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [script_path] = flags.positional.as_slice() else {
        return Err("check needs exactly one CSPm file".into());
    };
    let source = read(script_path)?;
    let script = cspm::Script::parse(&source).map_err(|e| e.to_string())?;
    let findings = [FileFindings {
        file: script_path.clone(),
        source: source.clone(),
        diagnostics: lint::lint_module(script.module()),
    }];
    gate(&findings, flags.deny_warnings)?;
    let loaded = script.load().map_err(|e| e.to_string())?;
    if loaded.assertions().is_empty() {
        return Err("script contains no `assert` declarations".into());
    }
    let options = cspm::CheckOptions {
        threads: flags.threads,
        collect_stats: flags.stats || flags.stats_json.is_some(),
    };
    let results = loaded
        .check_with(&Checker::new(), &options)
        .map_err(|e| e.to_string())?;
    let mut failures = 0;
    for r in &results {
        match r.verdict.counterexample() {
            None => println!("assert {}  ...  PASS", r.description),
            Some(cex) => {
                failures += 1;
                println!("assert {}  ...  FAIL", r.description);
                println!("  {}", cex.display(loaded.alphabet()));
            }
        }
        if flags.stats {
            if let Some(stats) = &r.stats {
                eprintln!("  stats: {stats}");
            }
        }
    }
    if let Some(path) = &flags.stats_json {
        let lines: Vec<String> = results
            .iter()
            .map(|r| {
                let stats = r
                    .stats
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), fdrlite::CheckStats::to_json);
                format!(
                    "{{\"assertion\":{:?},\"pass\":{},\"stats\":{stats}}}",
                    r.description,
                    r.verdict.is_pass()
                )
            })
            .collect();
        fs::write(path, format!("[{}]\n", lines.join(",")))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        Err(format!("{failures} assertion(s) failed"))
    } else {
        Ok(())
    }
}

fn compose(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [gateway_path, ecu_path] = flags.positional.as_slice() else {
        return Err("compose needs a gateway CAPL file and an ECU CAPL file".into());
    };
    let db = flags
        .dbc
        .as_deref()
        .map(|p| candb::parse(&read(p)?).map_err(|e| e.to_string()))
        .transpose()?;

    let mut findings = Vec::new();
    let mut programs = Vec::new();
    for path in [gateway_path, ecu_path] {
        let source = read(path)?;
        let program = capl::parse(&source).map_err(|e| e.to_string())?;
        let mut diagnostics = lint::lint_program(&program);
        if let Some(db) = &db {
            diagnostics.extend(lint::cross_check(&program, db));
        }
        findings.push(FileFindings {
            file: path.clone(),
            source,
            diagnostics,
        });
        programs.push(program);
    }
    gate(&findings, flags.deny_warnings)?;

    let ecu = programs.pop().expect("two programs parsed");
    let gateway = programs.pop().expect("two programs parsed");
    let mut builder = SystemBuilder::new()
        .node(NodeSpec::gateway(
            &node_name_from(gateway_path, "VMG"),
            gateway,
        ))
        .node(NodeSpec::ecu(&node_name_from(ecu_path, "ECU"), ecu));
    if let Some(db) = db {
        builder = builder.database(db);
    }
    if let Some(capacity) = flags.buffered {
        builder = builder.buffered(capacity);
    }
    let out = builder.build().map_err(|e| e.to_string())?;
    emit(&flags.output, &out.script)
}

fn simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.positional.is_empty() {
        return Err("simulate needs at least one CAPL file".into());
    }
    let db = flags
        .dbc
        .as_deref()
        .map(|p| candb::parse(&read(p)?).map_err(|e| e.to_string()))
        .transpose()?;
    let mut sim = canoe_sim::Simulation::new(db);
    for path in &flags.positional {
        let program = capl::parse(&read(path)?).map_err(|e| e.to_string())?;
        sim.add_node(&node_name_from(path, "NODE"), program)
            .map_err(|e| e.to_string())?;
    }
    sim.run_for(flags.for_ms * 1_000)
        .map_err(|e| e.to_string())?;
    for entry in sim.trace() {
        use canoe_sim::TraceEvent::*;
        let text = match &entry.event {
            Queued { node, message, .. } => format!("{node:>8}  queued    {message}"),
            Transmit {
                node, message, id, ..
            } => {
                format!("{node:>8}  transmit  {message} (0x{id:x})")
            }
            Receive { node, message, .. } => format!("{node:>8}  receive   {message}"),
            Log { node, text } => format!("{node:>8}  log       {text}"),
            TimerFired { node, timer } => format!("{node:>8}  timer     {timer}"),
            Intercepted { action, id } => format!("{:>8}  intercept {action} (0x{id:x})", "<mitm>"),
        };
        println!("{:>9} µs  {text}", entry.time_us);
    }
    Ok(())
}
