//! Umbrella crate for the `auto-csp` workspace: security checking of
//! automotive ECUs with formal CSP models.
//!
//! This crate re-exports every subsystem so that examples, integration tests
//! and downstream users can depend on a single crate:
//!
//! * [`csp`] — the CSP process algebra core (events, processes, operational
//!   semantics, LTS exploration, traces model).
//! * [`cspm`] — the machine-readable CSPm language: parser, evaluator,
//!   elaboration to core processes, pretty-printer and assertions.
//! * [`fdrlite`] — the refinement checker (FDR substitute): normalisation,
//!   trace and stable-failures refinement, deadlock/divergence checks and
//!   counterexample extraction.
//! * [`capl`] — frontend for Vector's CAPL language (lexer, parser, AST).
//! * [`candb`] — CAN database (`.dbc`) parser and signal codec.
//! * [`canoe_sim`] — a discrete-event CAN bus simulator plus CAPL interpreter,
//!   substituting for the proprietary CANoe environment.
//! * [`sttpl`] — a small template engine (StringTemplate substitute).
//! * [`translator`] — the paper's contribution: the CAPL → CSPm model
//!   extractor.
//! * [`secmod`] — Dolev-Yao intruders, attack trees and security property
//!   builders.
//! * [`faults`] — deterministic, seeded fault injection for the simulated
//!   bus: declarative fault plans, trace→CSP-event lifting, conformance
//!   checking against CSPm models and counterexample replay.
//! * [`ota`] — the ITU-T X.1373 over-the-air software update case study.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use candb;
pub use canoe_sim;
pub use capl;
pub use csp;
pub use cspm;
pub use faults;
pub use fdrlite;
pub use ota;
pub use secmod;
pub use sttpl;
pub use translator;
