//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1);
        let n = self.len.start + rng.below(span);
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}

/// A vector of `element` values with length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
