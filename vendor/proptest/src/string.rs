//! A tiny regex-shaped generator for string strategies.
//!
//! Supports the pattern subset this workspace's tests use: literal
//! characters, character classes with ranges (`[a-z0-9_]`), class
//! subtraction (`[ -~&&[^"\\]]`), escapes, and `{m}` / `{m,n}` repetition.
//! Anything else panics — these patterns are developer-written test inputs,
//! not user data.

use crate::test_runner::TestRng;

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let (lo, hi) = atom.repeat;
        let n = if lo == hi {
            lo
        } else {
            lo + rng.below(hi - lo + 1)
        };
        for _ in 0..n {
            assert!(
                !atom.chars.is_empty(),
                "string pattern `{pattern}`: empty character class"
            );
            out.push(atom.chars[rng.below(atom.chars.len())]);
        }
    }
    out
}

struct Atom {
    /// The candidate characters.
    chars: Vec<char>,
    /// `(min, max)` repetitions, inclusive.
    repeat: (usize, usize),
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                i += 2;
                vec![unescape(chars[i - 1])]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let repeat = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("string pattern `{pattern}`: unclosed {{"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition bound");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: candidates,
            repeat,
        });
    }
    atoms
}

/// Parse a `[...]` class starting after the `[`; returns the candidate set
/// and the index just past the closing `]`.
fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut include = Vec::new();
    let mut exclude = Vec::new();
    let mut negated_sub = false;
    loop {
        assert!(i < chars.len(), "string pattern `{pattern}`: unclosed [");
        match chars[i] {
            ']' => {
                i += 1;
                break;
            }
            '&' if chars.get(i + 1) == Some(&'&') => {
                // `&&[^...]`: subtraction of the following negated class.
                assert_eq!(
                    (chars.get(i + 2), chars.get(i + 3)),
                    (Some(&'['), Some(&'^')),
                    "string pattern `{pattern}`: only `&&[^...]` subtraction is supported"
                );
                let (sub, next) = parse_class(pattern, chars, i + 4);
                exclude = sub;
                negated_sub = true;
                i = next;
                // The subtracted class's `]` closed it; expect the outer `]`.
                assert_eq!(
                    chars.get(i),
                    Some(&']'),
                    "string pattern `{pattern}`: expected ] after subtraction"
                );
                i += 1;
                break;
            }
            _ => {
                let c = if chars[i] == '\\' {
                    i += 2;
                    unescape(chars[i - 1])
                } else {
                    i += 1;
                    chars[i - 1]
                };
                // Range `c-d` (a `-` right before `]` is a literal).
                if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&d| d != ']') {
                    let d = if chars[i + 1] == '\\' {
                        i += 3;
                        unescape(chars[i - 1])
                    } else {
                        i += 2;
                        chars[i - 1]
                    };
                    for v in c as u32..=d as u32 {
                        include.push(char::from_u32(v).expect("bad class range"));
                    }
                } else {
                    include.push(c);
                }
            }
        }
    }
    if negated_sub {
        include.retain(|c| !exclude.contains(c));
    }
    (include, i)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::deterministic("identifier_pattern");
        for _ in 0..200 {
            let s = "[a-z][a-zA-Z0-9_]{0,6}".gen(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn printable_with_subtraction() {
        let mut rng = TestRng::deterministic("printable_with_subtraction");
        for _ in 0..200 {
            let s = "[ -~&&[^\"\\\\%']]{0,8}".gen(&mut rng);
            assert!(s.len() <= 8);
            for c in s.chars() {
                assert!((' '..='~').contains(&c), "{s:?}");
                assert!(!"\"\\%'".contains(c), "{s:?}");
            }
        }
    }

    #[test]
    fn fixed_repetition() {
        let mut rng = TestRng::deterministic("fixed_repetition");
        let s = "[01]{4}x".gen(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.ends_with('x'));
    }
}
