//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace uses —
//! [`Strategy`](strategy::Strategy) with `prop_map`/`prop_filter`/
//! `prop_flat_map`/`prop_recursive`/`boxed`, range and tuple strategies,
//! regex-character-class string strategies, `collection::vec`, `option::of`,
//! `any`, and the `proptest!`/`prop_oneof!`/`prop_assert*!` macros — as a
//! *generation-only* harness: random cases are generated deterministically
//! per test, failures panic with the offending values, but there is no
//! shrinking and no persistence (`.proptest-regressions` files are ignored).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The customary glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic pseudo-random source and test-case plumbing.
pub mod __runtime {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
}

/// Uniform choice between strategies: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Discard the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` header
/// followed by `#[test]` functions whose arguments are drawn from
/// strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$attr:meta])* fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(64).saturating_add(256),
                        "proptest stand-in: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::gen(&($strategy), &mut rng);
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match result {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", accepted + 1, msg)
                        }
                    }
                }
            }
        )*
    };
}
