//! The deterministic RNG and case-level plumbing behind `proptest!`.

/// Why a generated case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is regenerated without counting.
    Reject(String),
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A deterministic xorshift64* generator seeded from the test's path, so
/// every `cargo test` run explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a), typically the test path.
    pub fn deterministic(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash | 1 }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform index in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}
