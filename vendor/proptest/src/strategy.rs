//! The [`Strategy`] trait and its combinators, generation-only.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: `gen`
/// produces a value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f`, re-sampling otherwise.
    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves and `recurse`
    /// wraps an inner strategy into one layer of branches. `depth` bounds the
    /// nesting; the remaining two parameters (desired size, expected branch
    /// size) are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.inner.gen(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len());
        self.options[ix].gen(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.gen(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn gen(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strings generate from a regex-like character-class pattern; see
/// [`crate::string`].
impl Strategy for &'static str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
