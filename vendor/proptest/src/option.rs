//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Bias towards Some, matching proptest's default 3:1 ratio.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen(rng))
        }
    }
}

/// `None` a quarter of the time, otherwise `Some` of the inner strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
