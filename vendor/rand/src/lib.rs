//! Offline stand-in for the `rand` crate.
//!
//! Implements the small API surface the workspace actually uses: a seedable
//! [`rngs::SmallRng`] and [`Rng::gen_range`] over integer ranges. The
//! generator is a fixed xorshift64* — deterministic across platforms, which
//! is exactly what the discrete-event simulator wants from a seeded run.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` using `next` as entropy source.
    fn sample(low: Self, high: Self, next: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(low: Self, high: Self, next: u64) -> Self {
                debug_assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = (u128::from(next) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait (stand-in for `rand::Rng`).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let next = self.next_u64();
        T::sample(range.start, range.end, next)
    }

    /// A bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(0i64..7);
            assert!((0..7).contains(&v));
            let u = rng.gen_range(5u32..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
