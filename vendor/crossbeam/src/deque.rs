//! Work-stealing deques (stand-in for `crossbeam-deque`).
//!
//! A [`Worker`] is an owner-side queue; [`Stealer`] handles clone freely and
//! take work from the opposite ("cold") end; an [`Injector`] is a shared
//! global FIFO used to seed work and absorb overflow. Steal operations
//! return [`Steal`], mirroring the real crate so callers can retry on
//! contention.
//!
//! The implementation is a mutex-guarded ring buffer instead of a lock-free
//! Chase–Lev deque (no `unsafe` in this workspace). Owner operations and
//! steals therefore serialise per queue, which is still far finer-grained
//! than a single global queue: contention is spread across one lock per
//! worker.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty at the time of the attempt.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Did the attempt find the queue empty?
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Did the attempt steal a task?
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Should the attempt be retried?
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

#[derive(Debug)]
struct Queue<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Queue<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // A panicking worker must not wedge its siblings: recover the data
        // and let the panic surface at join time instead.
        self.items.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The owner side of a work-stealing deque.
///
/// `Worker` is `Send` (it can be moved into its thread) and hands out
/// [`Stealer`]s for every other thread.
#[derive(Debug)]
pub struct Worker<T> {
    queue: Arc<Queue<T>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// A FIFO worker: `pop` takes the oldest task (queue discipline).
    pub fn new_fifo() -> Worker<T> {
        Worker {
            queue: Arc::new(Queue {
                items: Mutex::new(VecDeque::new()),
            }),
            flavor: Flavor::Fifo,
        }
    }

    /// A LIFO worker: `pop` takes the newest task (stack discipline, the
    /// cache-friendly choice for graph exploration).
    pub fn new_lifo() -> Worker<T> {
        Worker {
            queue: Arc::new(Queue {
                items: Mutex::new(VecDeque::new()),
            }),
            flavor: Flavor::Lifo,
        }
    }

    /// A stealer handle onto this worker's queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Push a task onto the owner end.
    pub fn push(&self, task: T) {
        self.queue.lock().push_back(task);
    }

    /// Pop a task from the owner end.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.queue.lock();
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// Number of queued tasks (a racy snapshot, as in the real crate).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A handle for stealing tasks from another thread's [`Worker`].
#[derive(Debug)]
pub struct Stealer<T> {
    queue: Arc<Queue<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one task from the cold (front) end.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal up to half of the queue into `dest`, returning one task
    /// directly. This is the amortisation that keeps stragglers from
    /// stealing one task at a time.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch: Vec<T> = {
            let mut src = self.queue.lock();
            let n = src.len();
            if n == 0 {
                return Steal::Empty;
            }
            let take = (n / 2).max(1);
            src.drain(..take).collect()
        };
        let mut batch = batch.into_iter();
        let first = batch.next().expect("batch holds at least one task");
        let mut dst = dest.queue.lock();
        dst.extend(batch);
        Steal::Success(first)
    }

    /// Number of stealable tasks (racy snapshot).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared FIFO queue every thread may push to and steal from; used to
/// seed the initial work and to absorb overflow.
#[derive(Debug, Default)]
pub struct Injector<T> {
    queue: Queue<T>,
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Queue {
            items: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Queue::default(),
        }
    }

    /// Push a task onto the back.
    pub fn push(&self, task: T) {
        self.queue.lock().push_back(task);
    }

    /// Steal one task from the front.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal up to half of the queue into `dest`, returning one task.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch: Vec<T> = {
            let mut src = self.queue.lock();
            let n = src.len();
            if n == 0 {
                return Steal::Empty;
            }
            let take = (n / 2).max(1);
            src.drain(..take).collect()
        };
        let mut batch = batch.into_iter();
        let first = batch.next().expect("batch holds at least one task");
        let mut dst = dest.queue.lock();
        dst.extend(batch);
        Steal::Success(first)
    }

    /// Number of queued tasks (racy snapshot).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_pops_newest_stealers_take_oldest() {
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn fifo_owner_pops_oldest() {
        let w: Worker<u32> = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn batch_steal_moves_half() {
        let victim: Worker<u32> = Worker::new_lifo();
        for i in 0..10 {
            victim.push(i);
        }
        let thief: Worker<u32> = Worker::new_lifo();
        let got = victim.stealer().steal_batch_and_pop(&thief);
        assert_eq!(got, Steal::Success(0));
        assert_eq!(thief.len(), 4);
        assert_eq!(victim.len(), 5);
    }

    #[test]
    fn injector_seeds_workers() {
        let inj: Injector<u32> = Injector::new();
        inj.push(7);
        inj.push(8);
        let w: Worker<u32> = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(7));
        assert_eq!(inj.steal(), Steal::Success(8));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn steal_accessors() {
        let s: Steal<u32> = Steal::Success(1);
        assert!(s.is_success());
        assert_eq!(s.success(), Some(1));
        assert!(Steal::<u32>::Empty.is_empty());
        assert!(Steal::<u32>::Retry.is_retry());
        assert_eq!(Steal::<u32>::Retry.success(), None);
    }

    #[test]
    fn concurrent_producers_and_thieves_conserve_tasks() {
        let w: Worker<u64> = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let total: u64 = crate::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    scope.spawn(move |_| {
                        let local: Worker<u64> = Worker::new_lifo();
                        let mut sum = 0u64;
                        loop {
                            let next = local
                                .pop()
                                .or_else(|| s.steal_batch_and_pop(&local).success());
                            match next {
                                Some(v) => sum += v,
                                None => break,
                            }
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 1000 * 999 / 2);
    }
}
