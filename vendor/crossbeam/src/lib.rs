//! Offline stand-in for `crossbeam`, implementing the subsets of the
//! `crossbeam` API this workspace uses:
//!
//! * [`scope`] / [`thread`] — scoped threads over `std::thread::scope`;
//! * [`deque`] — work-stealing deques (`Worker`, `Stealer`, `Injector`,
//!   `Steal`), the substrate of the parallel refinement engine;
//! * [`utils`] — [`utils::CachePadded`] and [`utils::Backoff`].
//!
//! The deques are lock-based rather than lock-free (the real crate's
//! Chase–Lev deque needs `unsafe`, which this workspace forbids), but they
//! preserve crossbeam's API shape and semantics — LIFO/FIFO owner access,
//! stealing from the cold end, batched steals — so swapping the real crate
//! back in is a `Cargo.toml` change, not a code change.

#![forbid(unsafe_code)]

pub mod deque;
pub mod thread;
pub mod utils;

pub use thread::{scope, Scope, ScopedJoinHandle};
