//! Scoped threads (stand-in for `crossbeam::thread`), implemented on top of
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from real crossbeam are deliberate simplifications: a panic
//! that escapes the scope closure propagates (std semantics) instead of
//! being collected, so the `Result` returned here is always `Ok`. Panics in
//! *workers* are still reported through [`ScopedJoinHandle::join`], exactly
//! as in crossbeam.

use std::any::Any;
use std::thread;

/// A scope handle that can spawn borrowing threads (stand-in for
/// `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to join a scoped worker (stand-in for `ScopedJoinHandle`).
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the worker and return its result.
    ///
    /// # Errors
    ///
    /// Returns the worker's panic payload if it panicked.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside the scope. As in crossbeam, the closure receives
    /// the scope itself so workers can spawn nested workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Create a scope in which spawned threads may borrow from the caller's
/// stack. All workers are joined before `scope` returns.
///
/// # Errors
///
/// Always `Ok` in this stand-in; the `Result` exists for signature
/// compatibility with crossbeam.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawns_work() {
        let n = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
