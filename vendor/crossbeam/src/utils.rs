//! Concurrency utilities (stand-in for `crossbeam-utils`).

use std::cell::Cell;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) a cache-line boundary so that
/// adjacent values in an array do not false-share a line. 128 bytes covers
/// the spatial-prefetcher pairing on modern x86 as well as common ARM
/// configurations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops: spin briefly first, then start
/// yielding to the scheduler, and report when blocking would be better.
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    /// A fresh backoff counter.
    pub fn new() -> Backoff {
        Backoff::default()
    }

    /// Reset to the initial (pure-spin) state.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Back off after a failed compare-and-swap style retry: spin only.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..1u32 << step {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Back off while waiting for another thread to make progress: spin
    /// first, then yield the timeslice.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Whether backing off further is pointless and the caller should park
    /// or re-check its exit condition.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_transparent_and_aligned() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let q: CachePadded<u8> = 5u8.into();
        assert_eq!(*q, 5);
    }

    #[test]
    fn backoff_completes_after_yield_limit() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
        b.spin();
        assert!(!b.is_completed());
    }
}
