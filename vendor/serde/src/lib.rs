//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types as a
//! forward-compatibility marker but never serialises anything, so this
//! stand-in only needs to make those derives compile: it re-exports the
//! no-op derive macros and declares empty marker traits of the same names.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::ser::Serialize` in name only.
pub trait Serialize {}

/// Marker trait matching `serde::de::Deserialize` in name only.
pub trait Deserialize<'de> {}
