//! Offline stand-in for `serde_derive`.
//!
//! The repository uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker — nothing serialises at runtime — so the
//! derives here accept any input and expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
