//! Offline stand-in for `criterion`.
//!
//! Provides just enough of the criterion 0.5 API for this workspace's
//! benches to compile and produce useful numbers: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple calibrated loop (median of a few batches)
//! rather than criterion's full statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only the parameter rendering.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    /// Median per-iteration time of the routine, filled in by `iter`.
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes ≥ ~5ms.
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || n >= 1 << 20 {
                // Three measured batches; keep the fastest (least noisy).
                let mut best = elapsed;
                for _ in 0..2 {
                    let t = Instant::now();
                    for _ in 0..n {
                        black_box(routine());
                    }
                    best = best.min(t.elapsed());
                }
                self.elapsed = best;
                self.iterations = n;
                return;
            }
            n = n.saturating_mul(2);
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iterations == 0 {
        println!("{name:<50} (not measured)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iterations);
    println!("{name:<50} {per_iter:>12} ns/iter");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's batch count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<S: fmt::Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        report(name, &b);
    }

    /// Benchmark a single named routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Declare a benchmark group the way criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point the way criterion does.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
