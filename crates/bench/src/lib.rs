//! Shared workload generators for the benchmark harness.
//!
//! The paper's evaluation is qualitative (one case study, three tables,
//! three figures); the benches regenerate each artefact and quantify the
//! toolchain costs the paper's §VII-A scalability discussion leaves open.
//! `EXPERIMENTS.md` records the measured numbers next to the paper's
//! claims.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// Generate a CAPL ECU application with `n` request/response message
/// handlers (message names `m0 … m{2n-1}`), used to scale the Fig. 1
/// pipeline benchmarks.
pub fn synthetic_capl(n: usize) -> String {
    let mut out = String::from("variables\n{\n");
    for i in 0..n {
        let _ = writeln!(out, "  message req{i} vReq{i};");
        let _ = writeln!(out, "  message rpt{i} vRpt{i};");
    }
    out.push_str("  int total = 0;\n}\n\n");
    for i in 0..n {
        let _ = writeln!(
            out,
            "on message req{i}\n{{\n  total = total + 1;\n  output(vRpt{i});\n}}\n"
        );
    }
    out
}

/// The CAN database matching [`synthetic_capl`].
pub fn synthetic_dbc(n: usize) -> String {
    let mut out = String::from("BU_: VMG ECU\n");
    for i in 0..n {
        let _ = writeln!(
            out,
            "BO_ {} req{i}: 8 VMG\n SG_ x : 0|8@1+ (1,0) [0|255] \"\" ECU",
            256 + i
        );
        let _ = writeln!(
            out,
            "BO_ {} rpt{i}: 8 ECU\n SG_ x : 0|8@1+ (1,0) [0|255] \"\" VMG",
            512 + i
        );
    }
    out
}

/// A CSPm script with `n` interleaved two-event components — state space
/// `3^n` — used for checker-scaling benchmarks.
pub fn interleave_script(n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "channel c : {{0..{}}}.{{0..1}}", n.saturating_sub(1));
    for i in 0..n {
        let _ = writeln!(out, "P{i} = c.{i}.0 -> c.{i}.1 -> P{i}");
    }
    out.push_str("SYSTEM = ");
    let body = (0..n)
        .map(|i| format!("P{i}"))
        .collect::<Vec<_>>()
        .join(" ||| ");
    out.push_str(&body);
    out.push('\n');
    out.push_str("RUN = c?i?v -> RUN\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_capl_parses_and_translates() {
        let src = synthetic_capl(4);
        let dbc = synthetic_dbc(4);
        let pipeline = translator::Pipeline::new(translator::TranslateConfig::ecu("ECU"));
        let out = pipeline.run(&src, Some(&dbc)).unwrap();
        assert!(out.loaded.process("ECU_INIT").is_some(), "{}", out.script);
    }

    #[test]
    fn interleave_script_loads() {
        let loaded = cspm::Script::parse(&interleave_script(3))
            .unwrap()
            .load()
            .unwrap();
        assert!(loaded.process("SYSTEM").is_some());
    }
}
