//! Checking-service throughput and overhead — the probe behind the
//! `BENCH_service.json` report.
//!
//! The workload drives an in-process worker farm (same orchestrator, HTTP
//! front-end and wire protocol as `autocsp serve`, workers as threads
//! instead of child processes) through three phases:
//!
//! 1. **latency** — single jobs submitted and long-polled one at a time;
//!    reports submit→verdict p50/p95.
//! 2. **throughput** — one manifest of many jobs fanned out across the
//!    farm; reports jobs/sec.
//! 3. **dedup** — the same manifest resubmitted verbatim; reports the
//!    dedup hit rate and the (memory-served) re-poll wall.
//!
//! A direct [`service::exec::Executor`] baseline runs the same jobs with
//! no service in between, so the report carries the orchestration
//! overhead as a measured ratio, not a guess. Every service verdict is
//! compared against the baseline's — a farm that is fast but wrong gates
//! the build unconditionally.
//!
//! Knobs (environment variables):
//!
//! * `SERVICE_BENCH_QUICK=1` — shrink to a smoke-test size.
//! * `SERVICE_BENCH_JOBS=n` — throughput-phase job count (default 48;
//!   quick 12).
//! * `SERVICE_BENCH_SAMPLES=n` — latency-phase sample count (default 16;
//!   quick 6).
//! * `SERVICE_BENCH_WORKERS=n` — farm size (default 4).
//! * `SERVICE_BENCH_OUT=path` — where to write the JSON report (default
//!   `BENCH_service.json` in the working directory).
//! * `SERVICE_BENCH_MAX_OVERHEAD_US=n` — perf gate: fail (exit 2) if the
//!   *per-job* orchestration overhead — `(service wall − direct wall) /
//!   jobs` on the throughput phase — exceeds `n` microseconds. The jobs
//!   here are deliberately tiny, so this number **is** the cost of the
//!   queue, dispatch, HTTP polling and journal machinery (single-digit
//!   milliseconds); a real regression (a sleeping dispatch loop, re-run
//!   verdicts) lands at 10x that. Unset = no gate, the right default on
//!   slow shared builders.
//!
//! Run directly: `cargo bench -p bench --bench service_throughput`.

use std::env;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use diag::json::{self, Value};
use fdrlite::supervisor::RetryPolicy;
use service::exec::{ExecConfig, Executor};
use service::http::client_request;
use service::server::{LauncherKind, Server, ServerConfig};
use service::ResolvedJob;

/// The paper's OTA spine with one honest and one rogue implementation:
/// each job filters to one assertion, so the farm sees a mix of passing
/// and refuted verdicts with nontrivial (but small) exploration work.
const MODEL: &str = "
datatype MsgT = reqSw | rptSw | reqApp | rptUpd
channel rec, send : MsgT
SP02 = rec.reqSw -> send.rptSw -> SP02 [] rec.reqApp -> send.rptUpd -> SP02
ECU = rec.reqSw -> send.rptSw -> ECU [] rec.reqApp -> send.rptUpd -> ECU
VMG = rec.reqSw -> send.rptSw -> rec.reqApp -> send.rptUpd -> VMG
SYSTEM = VMG [| {| rec, send |} |] ECU
ROGUE = rec.reqSw -> send.rptSw -> send.rptSw -> ROGUE
assert SP02 [T= SYSTEM
assert SP02 [T= ROGUE
";

/// The two assertion filters jobs alternate between.
const FILTERS: [&str; 2] = ["SYSTEM", "ROGUE"];

fn env_usize(name: &str, default: usize) -> usize {
    env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "svc-bench-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn server_config(dir: &Path, workers: usize, queue_cap: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        state_dir: dir.join("state"),
        cache_dir: None,
        scripts_root: dir.to_path_buf(),
        queue_cap,
        heartbeat_ms: 100,
        checkpoint_every: None,
        retry: RetryPolicy::default(),
        default_threads: 1,
        default_max_states: None,
        default_timeout_ms: Some(60_000),
        launcher: LauncherKind::InProcess {
            die_after_states: None,
        },
    }
}

fn manifest_for(names_and_filters: &[(String, &str)]) -> String {
    let mut out = String::new();
    for (name, filter) in names_and_filters {
        let _ = write!(
            out,
            "[[job]]\nname = \"{name}\"\nkind = \"check\"\nscript = \"m.csp\"\n\
             assertion = \"{filter}\"\n\n"
        );
    }
    out
}

/// Submit a manifest, returning the accepted job ids in manifest order.
fn submit(addr: &str, manifest: &str) -> Vec<String> {
    let (status, body) = client_request(addr, "POST", "/v1/jobs", manifest).expect("http");
    assert_eq!(status, 202, "{body}");
    json::parse(&body)
        .expect("accepted json")
        .get("jobs")
        .and_then(Value::as_array)
        .expect("jobs array")
        .iter()
        .map(|j| j.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect()
}

/// Long-poll one job to a terminal state and return its verdict lines.
fn wait_done(addr: &str, id: &str) -> Vec<String> {
    let (status, body) =
        client_request(addr, "GET", &format!("/v1/jobs/{id}?wait=120"), "").expect("http");
    assert_eq!(status, 200, "{body}");
    let view = json::parse(&body).expect("job json");
    assert_eq!(
        view.get("state").and_then(Value::as_str),
        Some("done"),
        "{body}"
    );
    view.get("lines")
        .and_then(Value::as_array)
        .expect("lines")
        .iter()
        .map(|l| l.as_str().unwrap().to_string())
        .collect()
}

fn counter(addr: &str, name: &str) -> u64 {
    let (_, body) = client_request(addr, "GET", "/v1/health", "").expect("http");
    json::parse(&body)
        .expect("health json")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .expect("counter")
}

fn percentile(sorted_us: &[u128], p: f64) -> u128 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    // `cargo bench` passes harness flags such as `--bench`; this binary
    // is configured entirely through the environment, so ignore argv.
    let quick = env::var("SERVICE_BENCH_QUICK").is_ok_and(|v| v != "0");
    let jobs = env_usize("SERVICE_BENCH_JOBS", if quick { 12 } else { 48 });
    let samples = env_usize("SERVICE_BENCH_SAMPLES", if quick { 6 } else { 16 });
    let workers = env_usize("SERVICE_BENCH_WORKERS", 4);
    let out_path =
        env::var("SERVICE_BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_owned());

    let dir = scratch();
    std::fs::write(dir.join("m.csp"), MODEL).expect("write model");
    eprintln!(
        "service_throughput: {jobs} job(s), {samples} latency sample(s), {workers} worker(s)"
    );

    // Direct-executor baseline: the same jobs with no service in between.
    // One executor, warm after the first job — exactly what one farm
    // worker sees — so the ratio isolates orchestration overhead.
    let job_specs: Vec<(String, &str)> = (0..jobs)
        .map(|i| (format!("tp-{i:03}"), FILTERS[i % FILTERS.len()]))
        .collect();
    let mut executor = Executor::new(&ExecConfig::default()).expect("executor");
    let resolved = |name: &str, filter: &str| ResolvedJob {
        name: name.to_string(),
        kind: cspm::manifest::JobKind::Check,
        script: dir.join("m.csp"),
        spec: None,
        corpus: None,
        assertion: Some(filter.to_string()),
        threads: 1,
        max_states: None,
        timeout_ms: Some(60_000),
        chaos: None,
    };
    let start = Instant::now();
    let mut baseline: Vec<Vec<String>> = Vec::with_capacity(jobs);
    for (name, filter) in &job_specs {
        let outcome = executor
            .run(&resolved(name, filter), 1)
            .expect("baseline job");
        baseline.push(outcome.lines);
    }
    let direct_wall = start.elapsed();
    eprintln!(
        "  direct executor: wall={:>9} µs  ({:.0} jobs/s)",
        direct_wall.as_micros(),
        jobs as f64 / direct_wall.as_secs_f64().max(1e-9)
    );

    let server =
        Server::start(server_config(&dir, workers, jobs * 2 + samples + 8)).expect("server starts");
    let addr = server.http_addr().to_string();

    // Phase 1: submit→verdict latency, one job at a time.
    let mut latencies_us: Vec<u128> = Vec::with_capacity(samples);
    for i in 0..samples {
        let manifest = manifest_for(&[(format!("lat-{i:03}"), FILTERS[i % FILTERS.len()])]);
        let start = Instant::now();
        let ids = submit(&addr, &manifest);
        wait_done(&addr, &ids[0]);
        latencies_us.push(start.elapsed().as_micros());
    }
    latencies_us.sort_unstable();
    let p50 = percentile(&latencies_us, 0.50);
    let p95 = percentile(&latencies_us, 0.95);
    eprintln!("  latency: p50={p50} µs  p95={p95} µs  ({samples} samples)");

    // Phase 2: one manifest fanned out across the farm.
    let manifest = manifest_for(&job_specs);
    let start = Instant::now();
    let ids = submit(&addr, &manifest);
    let verdicts: Vec<Vec<String>> = ids.iter().map(|id| wait_done(&addr, id)).collect();
    let service_wall = start.elapsed();
    let jobs_per_sec = jobs as f64 / service_wall.as_secs_f64().max(1e-9);
    let verdicts_agree = verdicts == baseline;
    eprintln!(
        "  farm ({workers} workers): wall={:>9} µs  ({jobs_per_sec:.0} jobs/s, verdicts_agree={verdicts_agree})",
        service_wall.as_micros()
    );

    // Phase 3: verbatim resubmission — every job must dedup and be served
    // from memory.
    let dedup_before = counter(&addr, "dedup_hits");
    let start = Instant::now();
    let again = submit(&addr, &manifest);
    for id in &again {
        wait_done(&addr, id);
    }
    let dedup_wall = start.elapsed();
    let dedup_hits = counter(&addr, "dedup_hits") - dedup_before;
    let dedup_rate = dedup_hits as f64 / jobs as f64;
    let ids_stable = again == ids;
    eprintln!(
        "  dedup: {dedup_hits}/{jobs} hit(s), re-poll wall={} µs, ids_stable={ids_stable}",
        dedup_wall.as_micros()
    );

    let overhead_us_per_job = (service_wall
        .as_micros()
        .saturating_sub(direct_wall.as_micros())) as f64
        / jobs as f64;
    eprintln!("  overhead: {overhead_us_per_job:.0} µs/job over the direct executor");
    server.shutdown();
    fdrlite::clear_interrupt();
    let _ = std::fs::remove_dir_all(&dir);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"bench\":\"service_throughput\",\"quick\":{quick},\"jobs\":{jobs},\
         \"workers\":{workers},\"latency\":{{\"samples\":{samples},\"p50_us\":{p50},\
         \"p95_us\":{p95}}},\"throughput\":{{\"wall_us\":{},\"jobs_per_sec\":{jobs_per_sec:.1}}},\
         \"direct\":{{\"wall_us\":{}}},\"overhead_us_per_job\":{overhead_us_per_job:.1},\
         \"dedup\":{{\"hits\":{dedup_hits},\"rate\":{dedup_rate:.3},\"repoll_wall_us\":{}}},\
         \"verdicts_agree\":{verdicts_agree},\"ids_stable\":{ids_stable}}}",
        service_wall.as_micros(),
        direct_wall.as_micros(),
        dedup_wall.as_micros()
    );
    if let Err(e) = std::fs::write(&out_path, &out) {
        eprintln!("cannot write `{out_path}`: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    // Gates. Correctness is unconditional: a farm that is fast but wrong
    // (or forgets that it already ran a job) fails regardless of knobs.
    if !verdicts_agree {
        eprintln!("GATE: farm verdicts diverged from the direct executor");
        return ExitCode::from(2);
    }
    if !ids_stable || dedup_hits < jobs as u64 {
        eprintln!("GATE: verbatim resubmission was not fully deduplicated");
        return ExitCode::from(2);
    }
    if let Some(gate) = env::var("SERVICE_BENCH_MAX_OVERHEAD_US")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if overhead_us_per_job > gate {
            eprintln!(
                "GATE: {overhead_us_per_job:.0} µs/job overhead > \
                 SERVICE_BENCH_MAX_OVERHEAD_US={gate}"
            );
            return ExitCode::from(2);
        }
        eprintln!("gate ok: {overhead_us_per_job:.0} µs/job overhead ≤ {gate}");
    }
    ExitCode::SUCCESS
}
