//! Table III — requirements R01–R05. Benchmarks each requirement's
//! refinement check on the honest system, the attack-scenario checks, and
//! the MAC-secured R05 models.

use criterion::{criterion_group, criterion_main, Criterion};
use fdrlite::{Checker, RefinementModel};
use ota::{attacks, requirements, secured, system::OtaSystem};

fn honest_requirements(c: &mut Criterion) {
    let mut study = OtaSystem::build().unwrap();
    let reqs = requirements::all(&mut study).unwrap();
    let checker = Checker::new();
    for req in reqs {
        c.bench_function(&format!("table3/honest/{}", req.id), |b| {
            b.iter(|| {
                let verdict = checker
                    .trace_refinement(&req.spec, &req.scoped_system, study.definitions())
                    .unwrap();
                assert!(verdict.is_pass());
                verdict
            });
        });
    }

    let sp02 = requirements::sp02(&mut study).unwrap();
    c.bench_function("table3/honest/SP02", |b| {
        b.iter(|| {
            checker
                .trace_refinement(&sp02.spec, &sp02.scoped_system, study.definitions())
                .unwrap()
        });
    });
}

fn attacked_requirements(c: &mut Criterion) {
    let mut study = OtaSystem::build().unwrap();
    let scenarios = attacks::scenarios(&mut study).unwrap();
    let checker = Checker::new();
    for sc in scenarios {
        c.bench_function(&format!("table3/attacked/{:?}", sc.kind), |b| {
            b.iter(|| {
                let verdict = match sc.requirement.model {
                    RefinementModel::Traces => checker
                        .trace_refinement(
                            &sc.requirement.spec,
                            &sc.requirement.scoped_system,
                            study.definitions(),
                        )
                        .unwrap(),
                    RefinementModel::Failures => checker
                        .failures_refinement(
                            &sc.requirement.spec,
                            &sc.requirement.scoped_system,
                            study.definitions(),
                        )
                        .unwrap(),
                };
                assert!(!verdict.is_pass());
                verdict
            });
        });
    }
}

fn r05_mac_models(c: &mut Criterion) {
    let checker = Checker::new();
    let mut group = c.benchmark_group("table3/R05");
    group.sample_size(10);
    group.bench_function("mac_verifying", |b| {
        b.iter(|| secured::check_script(secured::MAC_SCRIPT, &checker).unwrap());
    });
    group.bench_function("no_verification", |b| {
        b.iter(|| secured::check_script(secured::INSECURE_SCRIPT, &checker).unwrap());
    });
    group.bench_function("signatures", |b| {
        b.iter(|| secured::check_script(secured::SIGNATURE_SCRIPT, &checker).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    honest_requirements,
    attacked_requirements,
    r05_mac_models
);
criterion_main!(benches);
