//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * synchronous vs buffered composition (the Fig. 1 network model),
//! * alphabetised vs full-alphabet synchronisation,
//! * state-variable finitisation bound (`MAXV`),
//! * counterexample reconstruction (pass vs fail checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdrlite::Checker;
use translator::{NodeSpec, SystemBuilder, TranslateConfig, Translator};

fn sync_vs_buffered(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/composition");
    group.sample_size(10);
    let build = |buffered: Option<usize>| {
        let mut b = SystemBuilder::new().database(ota::messages::database());
        if let Some(cap) = buffered {
            b = b.buffered(cap);
        }
        let out = b
            .node(NodeSpec::gateway(
                "VMG",
                capl::parse(ota::sources::VMG_CAPL).unwrap(),
            ))
            .node(NodeSpec::ecu(
                "ECU",
                capl::parse(ota::sources::ECU_CAPL).unwrap(),
            ))
            .build()
            .unwrap();
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        let system = loaded.process("SYSTEM").unwrap().clone();
        let defs = loaded.definitions().clone();
        (system, defs)
    };

    group.bench_function("synchronous", |b| {
        let (system, defs) = build(None);
        b.iter(|| {
            csp::Lts::build(system.clone(), &defs, 2_000_000)
                .unwrap()
                .state_count()
        });
    });
    group.bench_function("buffered_2", |b| {
        let (system, defs) = build(Some(2));
        b.iter(|| {
            csp::Lts::build(system.clone(), &defs, 2_000_000)
                .unwrap()
                .state_count()
        });
    });
    group.finish();
}

fn finitisation_bound(c: &mut Criterion) {
    // The translator's MAXV bound: larger domains → more parameter
    // instantiations → more definitions and states.
    let src = "
        variables { message reqSw a; message rptSw b; int n = 0; }
        on message reqSw { n = n + 1; output(b); }
    ";
    let program = capl::parse(src).unwrap();
    let mut group = c.benchmark_group("ablation/maxv_bound");
    group.sample_size(10);
    for bound in [3i64, 15, 63] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                let mut cfg = TranslateConfig::ecu("ECU");
                cfg.int_bound = bound;
                let out = Translator::new(cfg).translate(&program).unwrap();
                let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
                let entry = loaded.process("ECU_INIT").unwrap().clone();
                csp::Lts::build(entry, loaded.definitions(), 1_000_000)
                    .unwrap()
                    .state_count()
            });
        });
    }
    group.finish();
}

fn pass_vs_fail_checks(c: &mut Criterion) {
    // Counterexample extraction cost: a failing check stops early but pays
    // for trace reconstruction; a passing check explores everything.
    let src = "
        datatype MsgT = reqSw | rptSw
        channel send, rec : MsgT
        SP02 = rec.reqSw -> send.rptSw -> SP02
        GOOD = rec.reqSw -> send.rptSw -> GOOD
        BAD  = rec.reqSw -> send.rptSw -> send.rptSw -> BAD
    ";
    let loaded = cspm::Script::parse(src).unwrap().load().unwrap();
    let spec = loaded.process("SP02").unwrap().clone();
    let good = loaded.process("GOOD").unwrap().clone();
    let bad = loaded.process("BAD").unwrap().clone();
    let defs = loaded.definitions().clone();
    let checker = Checker::new();

    c.bench_function("ablation/check_pass", |b| {
        b.iter(|| checker.trace_refinement(&spec, &good, &defs).unwrap());
    });
    c.bench_function("ablation/check_fail_with_counterexample", |b| {
        b.iter(|| {
            let v = checker.trace_refinement(&spec, &bad, &defs).unwrap();
            assert!(!v.is_pass());
            v
        });
    });
}

criterion_group!(
    benches,
    sync_vs_buffered,
    finitisation_bound,
    pass_vs_fail_checks
);
criterion_main!(benches);
