//! Table I — the CSPm basic operators. Benchmarks the per-operator cost of
//! parsing + elaboration and of state-space exploration, one entry per
//! table row.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const HEADER: &str = "channel a, b, c\nchannel d : {0..7}\nchannel e : {0..7}\n";

/// (table row, CSPm definition of `P` exercising it)
const ROWS: &[(&str, &str)] = &[
    ("prefix", "P = a -> b -> c -> STOP"),
    ("input", "P = d?x -> e!x -> STOP"),
    ("output", "P = d!3 -> e!4 -> STOP"),
    ("sequential", "P = (a -> SKIP) ; (b -> SKIP) ; c -> STOP"),
    ("external_choice", "P = a -> STOP [] b -> STOP [] c -> STOP"),
    (
        "internal_choice",
        "P = a -> STOP |~| b -> STOP |~| c -> STOP",
    ),
    (
        "alphabetised_parallel",
        "P = (a -> b -> STOP) [| {| a |} |] (a -> c -> STOP)",
    ),
    (
        "interleaving",
        "P = (a -> STOP) ||| (b -> STOP) ||| (c -> STOP)",
    ),
];

fn per_operator(c: &mut Criterion) {
    for (name, def) in ROWS {
        let src = format!("{HEADER}{def}");

        c.bench_function(&format!("table1/elaborate/{name}"), |b| {
            b.iter(|| {
                cspm::Script::parse(black_box(&src))
                    .unwrap()
                    .load()
                    .unwrap()
            });
        });

        let loaded = cspm::Script::parse(&src).unwrap().load().unwrap();
        let p = loaded.process("P").unwrap().clone();
        let defs = loaded.definitions().clone();
        c.bench_function(&format!("table1/explore/{name}"), |b| {
            b.iter(|| csp::Lts::build(black_box(p.clone()), &defs, 100_000).unwrap());
        });
    }
}

fn trace_law_checks(c: &mut Criterion) {
    // The cost of verifying the union law for external choice, the shape
    // used throughout the Table I reproduction tests.
    c.bench_function("table1/trace_union_law", |b| {
        let mut ab = csp::Alphabet::new();
        let x = ab.intern("x");
        let y = ab.intern("y");
        let p1 = csp::Process::prefix(x, csp::Process::Stop);
        let p2 = csp::Process::prefix(y, csp::Process::Stop);
        let both = csp::Process::external_choice(p1.clone(), p2.clone());
        let defs = csp::Definitions::new();
        b.iter(|| {
            let t1 = csp::laws::bounded_traces(&p1, &defs, 8, 10_000).unwrap();
            let t2 = csp::laws::bounded_traces(&p2, &defs, 8, 10_000).unwrap();
            let tb = csp::laws::bounded_traces(&both, &defs, 8, 10_000).unwrap();
            assert_eq!(tb.len(), t1.union(&t2).count());
        });
    });
}

criterion_group!(benches, per_operator, trace_law_checks);
criterion_main!(benches);
