//! Fig. 1 — the workflow/toolchain. Benchmarks each stage of the pipeline
//! (CAPL parse, model extraction, CSPm elaboration) and the end-to-end run,
//! over growing application sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use translator::{Pipeline, TranslateConfig};

fn stage_benchmarks(c: &mut Criterion) {
    let capl_src = ota::sources::ECU_CAPL;
    let dbc_src = ota::messages::NETWORK_DBC;

    c.bench_function("fig1/parse_capl", |b| {
        b.iter(|| capl::parse(black_box(capl_src)).unwrap());
    });
    c.bench_function("fig1/parse_dbc", |b| {
        b.iter(|| candb::parse(black_box(dbc_src)).unwrap());
    });
    c.bench_function("fig1/translate", |b| {
        let program = capl::parse(capl_src).unwrap();
        let db = candb::parse(dbc_src).unwrap();
        b.iter(|| {
            translator::Translator::new(TranslateConfig::ecu("ECU"))
                .with_database(db.clone())
                .translate(black_box(&program))
                .unwrap()
        });
    });
    c.bench_function("fig1/elaborate_cspm", |b| {
        let program = capl::parse(capl_src).unwrap();
        let out = translator::Translator::new(TranslateConfig::ecu("ECU"))
            .translate(&program)
            .unwrap();
        b.iter(|| {
            cspm::Script::parse(black_box(&out.script))
                .unwrap()
                .load()
                .unwrap()
        });
    });
    c.bench_function("fig1/end_to_end", |b| {
        let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
        b.iter(|| pipeline.run(black_box(capl_src), Some(dbc_src)).unwrap());
    });
}

fn scaling_with_program_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/pipeline_vs_handlers");
    group.sample_size(10);
    for n in [1usize, 4, 16, 64] {
        let src = bench::synthetic_capl(n);
        let dbc = bench::synthetic_dbc(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
            b.iter(|| pipeline.run(black_box(&src), Some(&dbc)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, stage_benchmarks, scaling_with_program_size);
criterion_main!(benches);
