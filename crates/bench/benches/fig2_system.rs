//! Fig. 2 — the case-study scope `SYSTEM = VMG ∥ ECU`. Benchmarks the
//! composed-model construction, its state-space exploration, and the
//! system-level checks, for both the synchronous and the buffered (network
//! model) composition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdrlite::Checker;
use ota::system::OtaSystem;
use std::hint::black_box;
use translator::{NodeSpec, SystemBuilder};

fn compose_and_explore(c: &mut Criterion) {
    c.bench_function("fig2/compose_system_model", |b| {
        b.iter(|| OtaSystem::build().unwrap());
    });

    let study = OtaSystem::build().unwrap();
    c.bench_function("fig2/explore_system_lts", |b| {
        b.iter(|| {
            csp::Lts::build(
                black_box(study.system().clone()),
                study.definitions(),
                100_000,
            )
            .unwrap()
        });
    });
    c.bench_function("fig2/divergence_free", |b| {
        let checker = Checker::new();
        b.iter(|| {
            checker
                .divergence_free(black_box(study.system()), study.definitions())
                .unwrap()
        });
    });
    c.bench_function("fig2/deterministic", |b| {
        let checker = Checker::new();
        b.iter(|| {
            checker
                .deterministic(black_box(study.system()), study.definitions())
                .unwrap()
        });
    });
}

fn buffered_network_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/buffered_capacity");
    group.sample_size(10);
    for capacity in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let out = SystemBuilder::new()
                        .database(ota::messages::database())
                        .buffered(capacity)
                        .node(NodeSpec::gateway(
                            "VMG",
                            capl::parse(ota::sources::VMG_CAPL).unwrap(),
                        ))
                        .node(NodeSpec::ecu(
                            "ECU",
                            capl::parse(ota::sources::ECU_CAPL).unwrap(),
                        ))
                        .build()
                        .unwrap();
                    let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
                    let system = loaded.process("SYSTEM").unwrap().clone();
                    csp::Lts::build(system, loaded.definitions(), 2_000_000)
                        .unwrap()
                        .state_count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, compose_and_explore, buffered_network_model);
criterion_main!(benches);
