//! Fig. 3 — the auto-generated ECU CSPm script. Benchmarks regeneration of
//! the exact figure artefact and the template-rendering machinery behind
//! it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use translator::{TranslateConfig, Translator};

const FIG3_ECU_CAPL: &str = "
variables
{
  message reqSw msgReq;
  message rptSw msgRpt;
}

on message reqSw
{
  output(msgRpt);
}
";

fn fig3(c: &mut Criterion) {
    let program = capl::parse(FIG3_ECU_CAPL).unwrap();

    c.bench_function("fig3/generate_script", |b| {
        b.iter(|| {
            Translator::new(TranslateConfig::ecu("ECU"))
                .translate(black_box(&program))
                .unwrap()
        });
    });

    c.bench_function("fig3/generate_and_verify_golden", |b| {
        let golden = Translator::new(TranslateConfig::ecu("ECU"))
            .translate(&program)
            .unwrap()
            .script;
        b.iter(|| {
            let out = Translator::new(TranslateConfig::ecu("ECU"))
                .translate(black_box(&program))
                .unwrap();
            assert_eq!(out.script, golden);
            out
        });
    });

    c.bench_function("fig3/roundtrip_through_cspm", |b| {
        let out = Translator::new(TranslateConfig::ecu("ECU"))
            .translate(&program)
            .unwrap();
        b.iter(|| {
            cspm::Script::parse(black_box(&out.script))
                .unwrap()
                .load()
                .unwrap()
        });
    });

    c.bench_function("fig3/template_render", |b| {
        let t = sttpl::Template::parse("$msgs:{m | ON_$m$ = rec.$m$ -> SKIP}; separator=\"\\n\"$")
            .unwrap();
        let mut ctx = sttpl::Value::map();
        ctx.set(
            "msgs",
            sttpl::Value::from_iter(["reqSw", "rptSw", "reqApp", "rptUpd"]),
        );
        b.iter(|| t.render(black_box(&ctx)).unwrap());
    });
}

criterion_group!(benches, fig3);
criterion_main!(benches);
