//! Table II — the X.1373 message set. Benchmarks the artefacts that carry
//! the messages: database parsing, signal coding, bus-level exchange in the
//! simulator, and the model's event machinery.

use canoe_sim::Simulation;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn database_and_signals(c: &mut Criterion) {
    c.bench_function("table2/parse_network_dbc", |b| {
        b.iter(|| candb::parse(black_box(ota::messages::NETWORK_DBC)).unwrap());
    });

    let db = ota::messages::database();
    let req = db.message_by_name("reqSw").unwrap().clone();
    let sig = req.signal("seq").unwrap().clone();
    c.bench_function("table2/signal_encode_decode", |b| {
        let mut payload = [0u8; 8];
        b.iter(|| {
            for v in 0..64 {
                sig.encode(&mut payload, black_box(v));
                assert_eq!(sig.decode(&payload), v);
            }
        });
    });
}

fn simulated_exchange(c: &mut Criterion) {
    c.bench_function("table2/simulate_update_cycle", |b| {
        let vmg = capl::parse(ota::sources::VMG_CAPL).unwrap();
        let ecu = capl::parse(ota::sources::ECU_CAPL).unwrap();
        b.iter(|| {
            let mut sim = Simulation::new(Some(ota::messages::database()));
            sim.add_node("VMG", vmg.clone()).unwrap();
            sim.add_node("ECU", ecu.clone()).unwrap();
            sim.run_for(100_000).unwrap();
            assert_eq!(
                sim.trace()
                    .iter()
                    .filter(|e| e.event.transmit_name().is_some())
                    .count(),
                4
            );
            sim
        });
    });

    c.bench_function("table2/simulate_periodic_1s", |b| {
        // One simulated second of 1 kHz periodic traffic.
        let sender = capl::parse(
            "variables { message reqSw m; msTimer t; }
             on start { setTimer(t, 1); }
             on timer t { output(m); setTimer(t, 1); }",
        )
        .unwrap();
        let receiver =
            capl::parse("variables { int n = 0; } on message reqSw { n = n + 1; }").unwrap();
        b.iter(|| {
            let mut sim = Simulation::new(Some(ota::messages::database()));
            sim.add_node("VMG", sender.clone()).unwrap();
            sim.add_node("ECU", receiver.clone()).unwrap();
            sim.run_for(1_000_000).unwrap();
            sim.trace().len()
        });
    });
}

fn model_side(c: &mut Criterion) {
    c.bench_function("table2/event_interning", |b| {
        b.iter(|| {
            let mut ab = csp::Alphabet::new();
            for spec in ota::messages::TABLE_II {
                for ch in ["rec", "send"] {
                    black_box(ab.intern(&format!("{ch}.{}", spec.id)));
                }
            }
            ab
        });
    });
}

criterion_group!(
    benches,
    database_and_signals,
    simulated_exchange,
    model_side
);
criterion_main!(benches);
