//! Batch trace-conformance throughput — the probe behind the
//! `conformance-throughput` CI gate.
//!
//! The workload generates a seeded corpus of lifted traces (random walks
//! over the specification's own normal form, with injected violations and
//! unknown events), checks it once with the per-trace sequential loop and
//! once with the batch hypertrace engine at each requested thread count,
//! asserts the per-trace verdicts agree **verbatim**, and reports
//! traces/sec plus the trie dedup ratio.
//!
//! Knobs (environment variables):
//!
//! * `CONFORMANCE_BENCH_QUICK=1` — shrink to a smoke-test size.
//! * `CONFORMANCE_BENCH_TRACES=n` — corpus size (default 5000; quick 500).
//! * `CONFORMANCE_BENCH_THREADS=1,8` — thread counts to sweep.
//! * `CONFORMANCE_BENCH_SEED=n` — corpus RNG seed (default 3405691582).
//! * `CONFORMANCE_BENCH_OUT=path` — where to write the JSON report
//!   (default `BENCH_conformance.json` in the working directory).
//! * `CONFORMANCE_BENCH_MIN_TPS=r` — perf gate: fail (exit 2) if any batch
//!   point's traces/sec falls below `r`. Unset = no gate, the right
//!   default on slow shared builders.
//!
//! Run directly: `cargo bench -p bench --bench conformance_throughput`.

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use faults::batch::BatchRun;
use faults::conformance::{check_lifted_with, ConformanceVerdict};
use fdrlite::{Checker, ModelStore};

/// The paper's OTA update dialogue, made cyclic so the corpus can hold
/// arbitrarily long conformant sessions (heavy prefix sharing by design:
/// every honest walk rides the same four-event spine).
const MODEL: &str = "
datatype MsgT = reqSw | rptSw | reqApp | rptUpd
channel rec, send : MsgT
SPEC = rec.reqSw -> send.rptSw -> UPDATE
UPDATE = rec.reqApp -> send.rptUpd -> SPEC
";

/// Event the model does not declare, for unknown-event traces.
const GHOST: &str = "ghost.evt";

/// Deterministic corpus RNG (splitmix-style LCG): same seed, same corpus,
/// on every platform — the CI gate depends on reproducibility.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A seeded corpus of `count` traces: ~80% random walks of the normal form
/// (conformant by construction), ~15% walks with one event swapped for a
/// random alphabet event (mostly refused), ~5% with an unknown name.
fn generate_corpus(
    loaded: &cspm::LoadedScript,
    checker: &Checker,
    count: usize,
    seed: u64,
) -> Vec<Vec<String>> {
    let store = ModelStore::new();
    let spec = loaded.process("SPEC").expect("SPEC defined");
    let norm = store
        .normalised(checker, spec, loaded.definitions())
        .expect("SPEC normalises");
    let alphabet = loaded.alphabet();
    let names: Vec<&str> = (0..alphabet.len())
        .map(|i| alphabet.name(csp::EventId::from_index(i)))
        .collect();

    let mut rng = Lcg(seed | 1);
    let mut corpus = Vec::with_capacity(count);
    for _ in 0..count {
        let length = rng.below(12);
        let mut node = norm.initial();
        let mut events: Vec<String> = Vec::with_capacity(length);
        for _ in 0..length {
            let enabled: Vec<_> = norm.enabled(node).collect();
            if enabled.is_empty() {
                break;
            }
            let event = enabled[rng.below(enabled.len())];
            events.push(alphabet.name(event).to_owned());
            node = norm.after(node, event).expect("enabled event steps");
        }
        match rng.below(20) {
            0..=2 if !events.is_empty() => {
                // Swap one event for a random alphabet name; usually refused.
                let at = rng.below(events.len());
                events[at] = names[rng.below(names.len())].to_owned();
            }
            3 => {
                let at = rng.below(events.len() + 1);
                events.insert(at, GHOST.to_owned());
            }
            _ => {}
        }
        corpus.push(events);
    }
    corpus
}

struct BatchPoint {
    threads: usize,
    wall_us: u128,
    traces_per_sec: f64,
    stats_json: String,
    verdicts_agree: bool,
}

fn env_usize(name: &str, default: usize) -> usize {
    env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    // `cargo bench` passes harness flags such as `--bench`; this binary
    // is configured entirely through the environment, so ignore argv.
    let quick = env::var("CONFORMANCE_BENCH_QUICK").is_ok_and(|v| v != "0");
    let traces = env_usize("CONFORMANCE_BENCH_TRACES", if quick { 500 } else { 5_000 });
    let seed = env::var("CONFORMANCE_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xCAFE_BABEu64);
    let threads: Vec<usize> = env::var("CONFORMANCE_BENCH_THREADS")
        .unwrap_or_else(|_| "1,8".to_owned())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let out_path =
        env::var("CONFORMANCE_BENCH_OUT").unwrap_or_else(|_| "BENCH_conformance.json".to_owned());

    let loaded = cspm::Script::parse(MODEL)
        .expect("model parses")
        .load()
        .expect("model loads");
    let checker = Checker::new();
    let corpus = generate_corpus(&loaded, &checker, traces, seed);
    let total_events: usize = corpus.iter().map(Vec::len).sum();
    eprintln!(
        "conformance_throughput: {traces} trace(s), {total_events} event(s), \
         seed={seed}, threads={threads:?}"
    );

    // Baseline: the per-trace sequential loop, warm store (the spec still
    // compiles once; what it pays per trace is the product exploration).
    let sequential_store = ModelStore::new();
    let start = Instant::now();
    let expected: Vec<ConformanceVerdict> = corpus
        .iter()
        .map(|trace| {
            check_lifted_with(&loaded, "SPEC", trace, &checker, &sequential_store)
                .expect("SPEC resolves")
                .verdict
        })
        .collect();
    let seq_wall = start.elapsed();
    let seq_tps = traces as f64 / seq_wall.as_secs_f64().max(1e-9);
    let conformant = expected
        .iter()
        .filter(|v| matches!(v, ConformanceVerdict::Conformant))
        .count();
    eprintln!(
        "  sequential: wall={:>9} µs  ({seq_tps:.0}/s, {conformant}/{traces} conformant)",
        seq_wall.as_micros()
    );

    let mut points: Vec<BatchPoint> = Vec::new();
    let mut dedup_ratio = 1.0f64;
    for &t in &threads {
        let store = ModelStore::new();
        let start = Instant::now();
        let mut run = BatchRun::new(&loaded, "SPEC", &checker, &store).expect("SPEC resolves");
        for trace in &corpus {
            run.push(trace);
        }
        let report = run.finish(t);
        let wall = start.elapsed();
        let verdicts_agree = report.verdicts == expected;
        dedup_ratio = report.stats.dedup_ratio;
        eprintln!(
            "  batch threads={t:<2} wall={:>9} µs  ({})",
            wall.as_micros(),
            report.stats
        );
        points.push(BatchPoint {
            threads: t,
            wall_us: wall.as_micros(),
            traces_per_sec: report.stats.traces_per_sec(),
            stats_json: report.stats.to_json(),
            verdicts_agree,
        });
    }

    let all_agree = points.iter().all(|p| p.verdicts_agree);
    let min_tps = points
        .iter()
        .map(|p| p.traces_per_sec)
        .fold(f64::INFINITY, f64::min);

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"conformance_throughput\",\"quick\":{quick},\"traces\":{traces},\
         \"total_events\":{total_events},\"seed\":{seed},\"dedup_ratio\":{dedup_ratio:.3},\
         \"verdicts_agree\":{all_agree},\
         \"sequential\":{{\"wall_us\":{},\"traces_per_sec\":{seq_tps:.1}}},\"batch\":[",
        seq_wall.as_micros()
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"threads\":{},\"wall_us\":{},\"traces_per_sec\":{:.1},\
             \"verdicts_agree\":{},\"stats\":{}}}",
            p.threads, p.wall_us, p.traces_per_sec, p.verdicts_agree, p.stats_json
        );
    }
    json.push_str("]}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write `{out_path}`: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    // Gates. Verdict equivalence is unconditional — a batch engine that is
    // fast but wrong gates the build no matter how the knobs are set.
    if !all_agree {
        eprintln!("GATE: batch verdicts diverged from the sequential loop");
        return ExitCode::from(2);
    }
    if let Some(gate) = env::var("CONFORMANCE_BENCH_MIN_TPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if min_tps < gate {
            eprintln!("GATE: {min_tps:.1} traces/sec < CONFORMANCE_BENCH_MIN_TPS={gate}");
            return ExitCode::from(2);
        }
        eprintln!("gate ok: {min_tps:.1} traces/sec ≥ {gate}");
    }
    ExitCode::SUCCESS
}
