//! Checker scaling — quantifying the §VII-A discussion: how the refinement
//! checker behaves as the model grows (the paper claims FDR-class tooling
//! "opens the door for automating component-level security checks at
//! scale" but reports no numbers).
//!
//! Axes:
//! * interleaved components (state space `3^n`),
//! * intruder message-space size (knowledge lattice `2^m`),
//! * NSPK end-to-end check (the heaviest single model in the repo).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp::{Alphabet, Definitions, EventSet, Process};
use fdrlite::Checker;
use secmod::Intruder;

fn component_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/interleaved_components");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let src = bench::interleave_script(n);
        let loaded = cspm::Script::parse(&src).unwrap().load().unwrap();
        let system = loaded.process("SYSTEM").unwrap().clone();
        let run = loaded.process("RUN").unwrap().clone();
        let defs = loaded.definitions().clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let checker = Checker::new();
            b.iter(|| {
                let verdict = checker.trace_refinement(&run, &system, &defs).unwrap();
                assert!(verdict.is_pass());
                verdict
            });
        });
    }
    group.finish();
}

fn intruder_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/intruder_messages");
    group.sample_size(10);
    for m in [2usize, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let mut ab = Alphabet::new();
                let mut defs = Definitions::new();
                let names: Vec<String> = (0..m).map(|i| format!("m{i}")).collect();
                let mut builder = Intruder::builder("EVE").tap("net", "dlv");
                for n in &names {
                    builder = builder.message(n);
                }
                let intruder = builder.build(&mut ab, &mut defs);
                let lts = csp::Lts::build(intruder.process().clone(), &defs, 1 << 20).unwrap();
                assert_eq!(lts.state_count(), 1 << m);
                lts.state_count()
            });
        });
    }
    group.finish();
}

fn parallel_vs_serial(c: &mut Criterion) {
    // The §VII-A "grid/cloud" story in miniature: the multi-threaded
    // decision procedure against the serial one on a 3^8-state check.
    let src = bench::interleave_script(8);
    let loaded = cspm::Script::parse(&src).unwrap().load().unwrap();
    let system = loaded.process("SYSTEM").unwrap().clone();
    let run = loaded.process("RUN").unwrap().clone();
    let defs = loaded.definitions().clone();
    let checker = Checker::new();

    let mut group = c.benchmark_group("scaling/parallelism");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| checker.trace_refinement(&run, &system, &defs).unwrap());
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    fdrlite::parallel::trace_refinement(&checker, &run, &system, &defs, threads)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn nspk_check(c: &mut Criterion) {
    const NSPK: &str = include_str!("nspk_model.cspm");
    let mut group = c.benchmark_group("scaling/needham_schroeder");
    group.sample_size(10);
    group.bench_function("load_and_find_attack", |b| {
        b.iter(|| {
            let loaded = cspm::Script::parse(NSPK).unwrap().load().unwrap();
            let results = loaded.check(&Checker::new()).unwrap();
            assert!(!results[0].verdict.is_pass());
            results
        });
    });
    group.finish();
}

fn normalisation_cost(c: &mut Criterion) {
    // Spec normalisation (subset construction) on an intentionally
    // nondeterministic specification.
    let mut ab = Alphabet::new();
    let events: Vec<_> = (0..6).map(|i| ab.intern(&format!("e{i}"))).collect();
    let mut defs = Definitions::new();
    // A union of nondeterministic branches over the same alphabet.
    let branches: Vec<Process> = events
        .iter()
        .map(|&e| {
            Process::prefix(
                e,
                Process::internal_choice(
                    Process::prefix(events[0], Process::Stop),
                    Process::prefix(events[1], Process::Skip),
                ),
            )
        })
        .collect();
    let spec_id = defs.declare("SPEC");
    let spec_body = Process::external_choice_all(
        branches
            .iter()
            .map(|b| Process::seq(b.clone(), Process::var(spec_id)))
            .collect(),
    );
    defs.define(spec_id, spec_body);
    let spec = Process::var(spec_id);
    let checker = Checker::new();
    let lts = checker.compile(&spec, &defs).unwrap();
    c.bench_function("scaling/normalise_nondeterministic_spec", |b| {
        b.iter(|| checker.normalise(&lts).unwrap().node_count());
    });

    let _ = EventSet::empty();
}

criterion_group!(
    benches,
    component_scaling,
    intruder_scaling,
    parallel_vs_serial,
    nspk_check,
    normalisation_cost
);
criterion_main!(benches);
