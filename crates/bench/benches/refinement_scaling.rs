//! Refinement-engine scaling on the OTA X.1373 model — the benchmark
//! behind the CI perf gate.
//!
//! The workload interleaves `k` independent copies of the paper's
//! VMG ∥ ECU update dialogue (5 states each, so the product has `5^k`
//! pairs) and checks it against a `RUN` specification, which forces a
//! full exploration. A second, failing workload adds a rogue component
//! whose event the specification forbids, to time parallel
//! counterexample reconstruction and to assert the parallel engine's
//! witness agrees with the serial one at every thread count.
//!
//! All three semantic models are swept: `[T=` and a `CHAOS`-spec variant
//! for `[F=`/`[FD=` (everything failures-refines `CHAOS`, so the product
//! is fully explored), with the rogue workload re-checked in both
//! failures-family models to pin their counterexamples across thread
//! counts. A normalisation probe separates the subset-construction wall
//! (`CheckStats::normalise_wall`) cold vs warm.
//!
//! Knobs (environment variables):
//!
//! * `REFINEMENT_BENCH_QUICK=1` — shrink to a smoke-test size.
//! * `REFINEMENT_BENCH_SCALE=k` — number of interleaved copies
//!   (default 7; quick mode 5).
//! * `REFINEMENT_BENCH_THREADS=1,2,4,8` — thread counts to sweep.
//! * `REFINEMENT_BENCH_REPS=n` — repetitions per point (min is kept).
//! * `REFINEMENT_BENCH_OUT=path` — where to write the JSON report
//!   (default `BENCH_refinement.json` in the working directory).
//! * `REFINEMENT_BENCH_MAX_RATIO=r` — perf gate: fail (exit 2) if
//!   `wall(max threads) / wall(1 thread)` exceeds `r`. Unset = no gate,
//!   which is the right default on single-core builders.
//! * `REFINEMENT_BENCH_SUPERVISE_MAX_RATIO=r` — overhead gate for the
//!   supervised-run probe: fail (exit 2) if running the warm workload
//!   through `fdrlite::supervisor` (journal + retry machinery) costs more
//!   than `r`× the bare sequential loop. Unset = no gate.
//!
//! Run directly: `cargo bench -p bench --bench refinement_scaling`.

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use csp::{Definitions, EventSet, Process};
use fdrlite::{CheckStats, Checker, Verdict};
use ota::system::OtaSystem;

/// Which refinement check a sweep times.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BenchModel {
    Traces,
    Failures,
    FailuresDivergences,
}

impl BenchModel {
    fn tag(self) -> &'static str {
        match self {
            BenchModel::Traces => "T",
            BenchModel::Failures => "F",
            BenchModel::FailuresDivergences => "FD",
        }
    }
}

struct Workload {
    defs: Definitions,
    spec: Process,
    impl_: Process,
    /// Expected product size for the passing variant, `None` for failing.
    expect_pairs: Option<u64>,
}

/// `k` interleaved copies of the OTA update dialogue against `RUN` over
/// its communication alphabet; passes, exploring all `5^k` pairs.
fn passing_workload(scale: u32) -> Workload {
    let system = OtaSystem::build().expect("OTA model builds");
    let comm: EventSet = system.comm_set().expect("communication alphabet");
    let mut defs = system.definitions().clone();
    let copies: Vec<Process> = (0..scale).map(|_| system.system().clone()).collect();
    let impl_ = Process::interleave_all(copies);
    let spec = fdrlite::properties::run(&mut defs, "BENCH_RUN", &comm);
    Workload {
        defs,
        spec,
        impl_,
        expect_pairs: Some(5u64.pow(scale)),
    }
}

/// `k` interleaved copies against `CHAOS` over the communication
/// alphabet. `CHAOS` is refined by everything in the stable-failures and
/// FD models (it may refuse anything), so the check passes only after
/// exploring all `5^k` pairs — the failures-family analogue of
/// [`passing_workload`]. The OTA dialogue hides nothing, so it is
/// divergence-free and the `[FD=` divergence phase is a pure pass.
fn chaos_workload(scale: u32) -> Workload {
    let system = OtaSystem::build().expect("OTA model builds");
    let comm: EventSet = system.comm_set().expect("communication alphabet");
    let mut defs = system.definitions().clone();
    let copies: Vec<Process> = (0..scale).map(|_| system.system().clone()).collect();
    let impl_ = Process::interleave_all(copies);
    let spec = fdrlite::properties::chaos(&mut defs, "BENCH_CHAOS", &comm);
    Workload {
        defs,
        spec,
        impl_,
        expect_pairs: Some(5u64.pow(scale)),
    }
}

/// The passing workload plus a rogue component that injects an event the
/// specification forbids; fails with a short witness inside a large
/// product, timing parallel counterexample reconstruction.
fn failing_workload(scale: u32) -> Workload {
    let mut system = OtaSystem::build().expect("OTA model builds");
    let comm: EventSet = system.comm_set().expect("communication alphabet");
    let first = comm.iter().next().expect("non-empty alphabet");
    let (ab, defs_mut) = system.parts_mut();
    let forged = ab.intern("send.forgedReport");
    let _ = defs_mut;
    let mut defs = system.definitions().clone();
    let mut copies: Vec<Process> = (0..scale).map(|_| system.system().clone()).collect();
    copies.push(Process::prefix(
        first,
        Process::prefix(forged, Process::Stop),
    ));
    let impl_ = Process::interleave_all(copies);
    let spec = fdrlite::properties::run(&mut defs, "BENCH_RUN", &comm);
    Workload {
        defs,
        spec,
        impl_,
        expect_pairs: None,
    }
}

struct Point {
    threads: usize,
    wall_us_min: u128,
    wall_us_mean: u128,
    stats: CheckStats,
    pass: bool,
    cex_len: Option<usize>,
}

/// Run `workload` under `model` at `threads` for `reps` repetitions; keep
/// the fastest. Each measurement goes through a pre-warmed [`ModelStore`],
/// so compilation, normalisation and (for `[FD=`) the cached
/// `GraphAnalysis` divergence bits are off the clock — the sweep times the
/// product exploration the way `autocsp check --threads` dispatches it.
fn measure(workload: &Workload, model: BenchModel, threads: usize, reps: u32) -> Point {
    let checker = Checker::new();
    let store = fdrlite::ModelStore::new();
    let options = fdrlite::CheckOptions::UNBOUNDED;
    let run = || -> (Verdict, CheckStats) {
        let res = match model {
            BenchModel::Traces => store.trace_refinement(
                &checker,
                &workload.spec,
                &workload.impl_,
                &workload.defs,
                threads,
                &options,
            ),
            BenchModel::Failures => store.failures_refinement(
                &checker,
                &workload.spec,
                &workload.impl_,
                &workload.defs,
                threads,
                &options,
            ),
            BenchModel::FailuresDivergences => store.failures_divergences_refinement(
                &checker,
                &workload.spec,
                &workload.impl_,
                &workload.defs,
                threads,
                &options,
            ),
        };
        res.expect("refinement succeeds")
    };
    let _ = run(); // warm: compile + normalise + analysis now cached

    let mut best: Option<(u128, Verdict, CheckStats)> = None;
    let mut total_us: u128 = 0;
    for _ in 0..reps {
        let started = Instant::now();
        let (verdict, stats) = run();
        let wall = started.elapsed().as_micros();
        total_us += wall;
        if best.as_ref().is_none_or(|(b, _, _)| wall < *b) {
            best = Some((wall, verdict, stats));
        }
    }
    let (wall_us_min, verdict, stats) = best.expect("at least one repetition");
    if let Some(expect) = workload.expect_pairs {
        assert_eq!(
            stats.pairs_discovered, expect,
            "passing workload must explore the full product"
        );
    }
    Point {
        threads,
        wall_us_min,
        wall_us_mean: total_us / u128::from(reps.max(1)),
        cex_len: verdict.counterexample().map(|c| c.trace().len()),
        pass: verdict.is_pass(),
        stats,
    }
}

struct StoreProbe {
    cold_compile_us: u128,
    warm_compile_us: u128,
    cold_explore_us: u128,
    warm_explore_us: u128,
    cold_misses: u64,
    warm_hits: u64,
    warm_misses: u64,
    verdicts_agree: bool,
}

/// Run the workload twice through one [`fdrlite::ModelStore`]: the cold run
/// compiles everything, the warm run must be served entirely from cache
/// (zero misses, near-zero compile wall) with a verbatim-equal verdict.
fn probe_store(workload: &Workload, threads: usize) -> StoreProbe {
    let checker = Checker::new();
    let store = fdrlite::ModelStore::new();
    let options = fdrlite::CheckOptions::UNBOUNDED;
    let run = || {
        store
            .trace_refinement(
                &checker,
                &workload.spec,
                &workload.impl_,
                &workload.defs,
                threads,
                &options,
            )
            .expect("store refinement succeeds")
    };
    let (cold_verdict, cold) = run();
    let (warm_verdict, warm) = run();
    let probe = StoreProbe {
        cold_compile_us: cold.compile_wall.as_micros(),
        warm_compile_us: warm.compile_wall.as_micros(),
        cold_explore_us: cold.explore_wall.as_micros(),
        warm_explore_us: warm.explore_wall.as_micros(),
        cold_misses: cold.store_misses,
        warm_hits: warm.store_hits,
        warm_misses: warm.store_misses,
        verdicts_agree: cold_verdict == warm_verdict,
    };
    assert!(probe.verdicts_agree, "warm verdict must equal cold");
    assert!(probe.warm_hits > 0, "warm run must hit the store");
    assert_eq!(probe.warm_misses, 0, "warm run must compile nothing");
    probe
}

struct NormProbe {
    cold_normalise_us: u128,
    warm_normalise_us: u128,
    cold_compile_us: u128,
}

/// Separate the subset-construction wall from the rest of compilation:
/// a cold `[F=` run pays `CheckStats::normalise_wall` once, and a warm run
/// through the same store must report it as zero (normal form served from
/// cache, no rebuild).
fn probe_normalise(workload: &Workload) -> NormProbe {
    let checker = Checker::new();
    let store = fdrlite::ModelStore::new();
    let options = fdrlite::CheckOptions::UNBOUNDED;
    let run = || {
        store
            .failures_refinement(
                &checker,
                &workload.spec,
                &workload.impl_,
                &workload.defs,
                1,
                &options,
            )
            .expect("refinement succeeds")
    };
    let (_, cold) = run();
    let (_, warm) = run();
    let probe = NormProbe {
        cold_normalise_us: cold.normalise_wall.as_micros(),
        warm_normalise_us: warm.normalise_wall.as_micros(),
        cold_compile_us: cold.compile_wall.as_micros(),
    };
    assert!(
        probe.cold_normalise_us <= probe.cold_compile_us,
        "normalise_wall is a carve-out of compile_wall"
    );
    assert_eq!(
        probe.warm_normalise_us, 0,
        "warm run must serve the normal form from cache"
    );
    probe
}

struct DiskProbe {
    cold_compile_us: u128,
    warm_compile_us: u128,
    cold_normalise_us: u128,
    warm_normalise_us: u128,
    cold_disk_misses: u64,
    warm_disk_hits: u64,
    warm_disk_misses: u64,
    verdicts_agree: bool,
}

/// Run the workload through two *fresh* [`fdrlite::ModelStore`]s sharing
/// one on-disk cache: the second store starts with an empty in-process
/// cache, so everything it serves cheaply must come from disk — the
/// cross-invocation analogue of [`probe_store`]. The check runs in the
/// `[FD=` model so the current-version normal-form encoding round-trips
/// through disk; the warm run must be served entirely from disk (zero
/// disk misses, zero normalisation wall) with a verbatim verdict.
fn probe_disk(workload: &Workload, threads: usize) -> DiskProbe {
    let dir = env::temp_dir().join(format!("fdrlite-bench-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let checker = Checker::new();
    let options = fdrlite::CheckOptions::UNBOUNDED;
    let run = |cache: &Arc<fdrlite::PersistentCache>| {
        let store = fdrlite::ModelStore::new();
        store.set_persist(fdrlite::PersistConfig {
            cache: Arc::clone(cache),
            checkpoint_every: None,
            resume: fdrlite::ResumePolicy::Off,
        });
        store
            .failures_divergences_refinement(
                &checker,
                &workload.spec,
                &workload.impl_,
                &workload.defs,
                threads,
                &options,
            )
            .expect("disk-backed refinement succeeds")
    };
    let cold_cache = Arc::new(fdrlite::PersistentCache::open(&dir).expect("cache opens"));
    let (cold_verdict, cold) = run(&cold_cache);
    let cold_disk_misses = cold_cache.disk_misses();
    let warm_cache = Arc::new(fdrlite::PersistentCache::open(&dir).expect("cache reopens"));
    let (warm_verdict, warm) = run(&warm_cache);
    let probe = DiskProbe {
        cold_compile_us: cold.compile_wall.as_micros(),
        warm_compile_us: warm.compile_wall.as_micros(),
        cold_normalise_us: cold.normalise_wall.as_micros(),
        warm_normalise_us: warm.normalise_wall.as_micros(),
        cold_disk_misses,
        warm_disk_hits: warm_cache.disk_hits(),
        warm_disk_misses: warm_cache.disk_misses(),
        verdicts_agree: cold_verdict == warm_verdict,
    };
    let _ = std::fs::remove_dir_all(&dir);
    assert!(probe.verdicts_agree, "disk-warm verdict must equal cold");
    assert!(probe.warm_disk_hits > 0, "warm run must hit the disk cache");
    assert_eq!(probe.warm_disk_misses, 0, "warm run must compile nothing");
    assert_eq!(
        probe.warm_normalise_us, 0,
        "warm run must load the normal form, not rebuild it"
    );
    probe
}

struct AnalysisProbe {
    wall_us: u128,
    predicted_states: u64,
    actual_states: u64,
    estimate_exact: bool,
    divergence_free: bool,
    deadlock_free: bool,
    warm_wall_us: u128,
    warm_hits: u64,
}

/// Time the semantic analysis pass on the workload's implementation — the
/// same computation `autocsp analyze` and the `check` prelude run — and
/// validate its accuracy: the compositional state prediction must bound
/// the states the compile really discovered, and a repeat call must be
/// served from the store's analysis cache.
fn probe_analysis(workload: &Workload) -> AnalysisProbe {
    let checker = Checker::new();
    let store = fdrlite::ModelStore::new();

    let started = Instant::now();
    let analysis = store
        .graph_analysis(&checker, &workload.impl_, &workload.defs)
        .expect("impl compiles under default bounds");
    let mut arena = csp::TermArena::new();
    let root = arena.intern(&workload.impl_);
    let est = csp::analysis::estimate(&mut arena, root, &workload.defs, 1_000_000);
    let wall_us = started.elapsed().as_micros();

    let warm_started = Instant::now();
    let warm = store
        .graph_analysis(&checker, &workload.impl_, &workload.defs)
        .expect("warm analysis");
    let warm_wall_us = warm_started.elapsed().as_micros();
    assert!(
        Arc::ptr_eq(&analysis, &warm),
        "warm analysis must be cached"
    );

    let probe = AnalysisProbe {
        wall_us,
        predicted_states: est.predicted_states(),
        actual_states: analysis.state_count() as u64,
        estimate_exact: est.is_exact(),
        divergence_free: analysis.is_divergence_free(),
        deadlock_free: analysis.is_deadlock_free(),
        warm_wall_us,
        warm_hits: store.analysis_hits(),
    };
    assert!(
        !probe.estimate_exact || probe.predicted_states >= probe.actual_states,
        "exact prediction {} must bound actual {}",
        probe.predicted_states,
        probe.actual_states
    );
    assert!(probe.warm_hits > 0, "repeat analysis must hit the cache");
    probe
}

struct SuperviseProbe {
    jobs: u32,
    bare_us: u128,
    supervised_us: u128,
    /// supervised wall over bare wall — the price of catch_unwind, retry
    /// accounting and the per-job journal rewrite.
    overhead_ratio: f64,
    retries: u64,
    verdicts_agree: bool,
}

/// Run `jobs` identical warm checks bare, then through the supervisor with
/// its full machinery engaged — panic isolation, a journal rewritten after
/// every job, and a chaos-style transient failure on every other job (with
/// a zero-delay retry schedule, so the probe times bookkeeping, not
/// sleeping). The supervised loop must report the same verdicts; the gate
/// bounds how much its scaffolding may cost.
fn probe_supervise(workload: &Workload, jobs: u32) -> SuperviseProbe {
    use fdrlite::supervisor as sup;

    let checker = Checker::new();
    let store = Arc::new(fdrlite::ModelStore::new());
    let options = fdrlite::CheckOptions::UNBOUNDED;
    // Warm the store first: both loops then measure per-check dispatch,
    // not one-off compilation.
    let (expected, _) = store
        .trace_refinement(
            &checker,
            &workload.spec,
            &workload.impl_,
            &workload.defs,
            1,
            &options,
        )
        .expect("warm-up refinement succeeds");
    let expected_pass = expected.is_pass();

    let started = Instant::now();
    let mut bare_agree = true;
    for _ in 0..jobs {
        let (v, _) = store
            .trace_refinement(
                &checker,
                &workload.spec,
                &workload.impl_,
                &workload.defs,
                1,
                &options,
            )
            .expect("bare refinement succeeds");
        bare_agree &= v == expected;
    }
    let bare_us = started.elapsed().as_micros().max(1);

    let dir = env::temp_dir().join(format!("fdrlite-bench-supervise-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("journal dir");
    let mut diags = Vec::new();
    let mut journal = sup::Journal::open(dir.join("bench.journal"), 0x1373, &mut diags);
    let supervisor = sup::Supervisor::new(sup::SupervisorConfig {
        retry: sup::RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 0,
            max_delay_ms: 0,
            seed: 7,
        },
        run_timeout_ms: None,
    });
    let job_list: Vec<sup::Job> = (0..jobs)
        .map(|i| {
            let store = Arc::clone(&store);
            let checker = Checker::new();
            let spec = workload.spec.clone();
            let impl_ = workload.impl_.clone();
            let defs = workload.defs.clone();
            let exec = move |ctx: &sup::JobCtx| {
                if i % 2 == 0 && ctx.attempt == 1 {
                    return Err(sup::JobError::Transient("injected (bench chaos)".into()));
                }
                let (v, _) = store
                    .trace_refinement(
                        &checker,
                        &spec,
                        &impl_,
                        &defs,
                        1,
                        &fdrlite::CheckOptions::UNBOUNDED,
                    )
                    .map_err(|e| sup::JobError::Permanent(e.to_string()))?;
                Ok(sup::JobReport {
                    status: if v.is_pass() {
                        sup::JobStatus::Passed
                    } else {
                        sup::JobStatus::Refuted
                    },
                    lines: Vec::new(),
                    interrupted: false,
                })
            };
            sup::Job {
                name: format!("bench-{i}"),
                key: u64::from(i),
                exec: Box::new(exec),
            }
        })
        .collect();
    let started = Instant::now();
    let outcome = supervisor.run(job_list, &mut journal);
    let supervised_us = started.elapsed().as_micros().max(1);
    journal.remove();
    let _ = std::fs::remove_dir_all(&dir);

    let supervised_agree = outcome.jobs.iter().all(|j| {
        j.status
            == if expected_pass {
                sup::JobStatus::Passed
            } else {
                sup::JobStatus::Refuted
            }
    });
    let probe = SuperviseProbe {
        jobs,
        bare_us,
        supervised_us,
        overhead_ratio: supervised_us as f64 / bare_us as f64,
        retries: outcome.retries,
        verdicts_agree: bare_agree && supervised_agree && outcome.jobs.len() == jobs as usize,
    };
    assert!(probe.verdicts_agree, "supervised verdicts must match bare");
    assert!(!outcome.any_failed(), "no bench job may fail");
    assert_eq!(probe.retries, u64::from(jobs.div_ceil(2)), "chaos retries");
    probe
}

fn env_u32(name: &str, default: u32) -> u32 {
    env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    // `cargo bench` passes harness flags such as `--bench`; this binary
    // is configured entirely through the environment, so ignore argv.
    let quick = env::var("REFINEMENT_BENCH_QUICK").is_ok_and(|v| v != "0");
    let scale = env_u32("REFINEMENT_BENCH_SCALE", if quick { 5 } else { 7 });
    let reps = env_u32("REFINEMENT_BENCH_REPS", if quick { 2 } else { 3 });
    let threads: Vec<usize> = env::var("REFINEMENT_BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".to_owned())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let out_path =
        env::var("REFINEMENT_BENCH_OUT").unwrap_or_else(|_| "BENCH_refinement.json".to_owned());

    eprintln!(
        "refinement_scaling: scale={scale} (5^{scale} pairs), reps={reps}, threads={threads:?}"
    );

    let sweep = |workload: &Workload, model: BenchModel, expect_pass: bool| -> Vec<Point> {
        threads
            .iter()
            .map(|&t| {
                let p = measure(workload, model, t, reps);
                assert_eq!(
                    p.pass,
                    expect_pass,
                    "[{}=: workload verdict flipped at {t} threads",
                    model.tag()
                );
                eprintln!(
                    "  [{:>2}= {} threads={:<2} wall={:>9} µs  cex_len={:?}",
                    model.tag(),
                    if expect_pass { "pass" } else { "fail" },
                    t,
                    p.wall_us_min,
                    p.cex_len
                );
                p
            })
            .collect()
    };
    // Acceptance: every thread count reports the same verdict and the same
    // counterexample length as the serial engine.
    let assert_cex_agree = |points: &[Point], tag: &str| -> bool {
        let cex_lens: Vec<Option<usize>> = points.iter().map(|p| p.cex_len).collect();
        let agree = cex_lens.windows(2).all(|w| w[0] == w[1]);
        assert!(
            agree,
            "[{tag}=: counterexample lengths diverged: {cex_lens:?}"
        );
        agree
    };

    let passing = passing_workload(scale);
    let failing = failing_workload(scale);
    let chaos = chaos_workload(scale);

    let pass_points = sweep(&passing, BenchModel::Traces, true);
    let fail_points = sweep(&failing, BenchModel::Traces, false);
    let pass_f_points = sweep(&chaos, BenchModel::Failures, true);
    let fail_f_points = sweep(&failing, BenchModel::Failures, false);
    let pass_fd_points = sweep(&chaos, BenchModel::FailuresDivergences, true);
    let fail_fd_points = sweep(&failing, BenchModel::FailuresDivergences, false);

    let cex_agree = assert_cex_agree(&fail_points, "T")
        && assert_cex_agree(&fail_f_points, "F")
        && assert_cex_agree(&fail_fd_points, "FD");

    let store = probe_store(&passing, threads.iter().copied().max().unwrap_or(1));
    eprintln!(
        "  store cold compile={} µs ({} misses), warm compile={} µs ({} hits)",
        store.cold_compile_us, store.cold_misses, store.warm_compile_us, store.warm_hits
    );

    let disk = probe_disk(&passing, 1);
    eprintln!(
        "  disk  cold compile={} µs ({} misses), warm compile={} µs ({} hits, norm={} µs)",
        disk.cold_compile_us,
        disk.cold_disk_misses,
        disk.warm_compile_us,
        disk.warm_disk_hits,
        disk.warm_normalise_us
    );

    let norm = probe_normalise(&chaos);
    eprintln!(
        "  norm  cold={} µs of {} µs compile, warm={} µs",
        norm.cold_normalise_us, norm.cold_compile_us, norm.warm_normalise_us
    );

    let analysis = probe_analysis(&passing);
    eprintln!(
        "  analyze wall={} µs  predicted ≤ {} state(s) vs {} actual, warm={} µs",
        analysis.wall_us, analysis.predicted_states, analysis.actual_states, analysis.warm_wall_us
    );

    let supervise = probe_supervise(&passing, if quick { 20 } else { 50 });
    eprintln!(
        "  supervise {} job(s): bare={} µs, supervised={} µs ({:.2}x, {} retries)",
        supervise.jobs,
        supervise.bare_us,
        supervise.supervised_us,
        supervise.overhead_ratio,
        supervise.retries
    );

    // `wall(max threads) / wall(1 thread)` per model, < 1.0 = speedup.
    let scaling_ratio = |points: &[Point]| -> Option<(usize, f64)> {
        let base = points.iter().find(|p| p.threads == 1);
        let peak = points.iter().max_by_key(|p| p.threads);
        match (base, peak) {
            (Some(b), Some(p)) if b.wall_us_min > 0 && p.threads > 1 => {
                Some((p.threads, p.wall_us_min as f64 / b.wall_us_min as f64))
            }
            _ => None,
        }
    };
    let ratios: Vec<(&str, Option<(usize, f64)>)> = vec![
        ("T", scaling_ratio(&pass_points)),
        ("F", scaling_ratio(&pass_f_points)),
        ("FD", scaling_ratio(&pass_fd_points)),
    ];

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"refinement_scaling\",\"quick\":{quick},\"scale\":{scale},\
         \"pairs\":{},\"reps\":{reps},\"cex_agree\":{cex_agree}",
        5u64.pow(scale)
    );
    for (tag, ratio) in &ratios {
        if let Some((_, r)) = ratio {
            let key = match *tag {
                "T" => "peak_over_serial_ratio".to_owned(),
                t => format!("peak_over_serial_ratio_{}", t.to_lowercase()),
            };
            let _ = write!(json, ",\"{key}\":{r:.4}");
        }
    }
    let _ = write!(
        json,
        ",\"normalise\":{{\"cold_normalise_us\":{},\"warm_normalise_us\":{},\
         \"cold_compile_us\":{}}}",
        norm.cold_normalise_us, norm.warm_normalise_us, norm.cold_compile_us
    );
    let _ = write!(
        json,
        ",\"store\":{{\"cold_compile_us\":{},\"warm_compile_us\":{},\
         \"cold_explore_us\":{},\"warm_explore_us\":{},\"cold_misses\":{},\
         \"warm_hits\":{},\"warm_misses\":{},\"verdicts_agree\":{}}}",
        store.cold_compile_us,
        store.warm_compile_us,
        store.cold_explore_us,
        store.warm_explore_us,
        store.cold_misses,
        store.warm_hits,
        store.warm_misses,
        store.verdicts_agree
    );
    let _ = write!(
        json,
        ",\"disk\":{{\"cold_compile_us\":{},\"warm_compile_us\":{},\
         \"cold_normalise_us\":{},\"warm_normalise_us\":{},\
         \"cold_disk_misses\":{},\"warm_disk_hits\":{},\"warm_disk_misses\":{},\
         \"verdicts_agree\":{}}}",
        disk.cold_compile_us,
        disk.warm_compile_us,
        disk.cold_normalise_us,
        disk.warm_normalise_us,
        disk.cold_disk_misses,
        disk.warm_disk_hits,
        disk.warm_disk_misses,
        disk.verdicts_agree
    );
    let _ = write!(
        json,
        ",\"analyze\":{{\"wall_us\":{},\"warm_wall_us\":{},\
         \"predicted_states\":{},\"actual_states\":{},\"estimate_exact\":{},\
         \"divergence_free\":{},\"deadlock_free\":{},\"warm_hits\":{}}}",
        analysis.wall_us,
        analysis.warm_wall_us,
        analysis.predicted_states,
        analysis.actual_states,
        analysis.estimate_exact,
        analysis.divergence_free,
        analysis.deadlock_free,
        analysis.warm_hits
    );
    let _ = write!(
        json,
        ",\"supervise\":{{\"jobs\":{},\"bare_us\":{},\"supervised_us\":{},\
         \"overhead_ratio\":{:.4},\"retries\":{},\"verdicts_agree\":{}}}",
        supervise.jobs,
        supervise.bare_us,
        supervise.supervised_us,
        supervise.overhead_ratio,
        supervise.retries,
        supervise.verdicts_agree
    );
    for (key, points) in [
        ("pass", &pass_points),
        ("fail", &fail_points),
        ("pass_f", &pass_f_points),
        ("fail_f", &fail_f_points),
        ("pass_fd", &pass_fd_points),
        ("fail_fd", &fail_fd_points),
    ] {
        let _ = write!(json, ",\"{key}\":[");
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"threads\":{},\"wall_us_min\":{},\"wall_us_mean\":{},\
                 \"cex_len\":{},\"stats\":{}}}",
                p.threads,
                p.wall_us_min,
                p.wall_us_mean,
                p.cex_len
                    .map_or_else(|| "null".to_owned(), |l| l.to_string()),
                p.stats.to_json()
            );
        }
        json.push(']');
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write `{out_path}`: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    if let Some(max_ratio) = env::var("REFINEMENT_BENCH_MAX_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        for (tag, ratio) in &ratios {
            match ratio {
                Some((peak_threads, r)) if *r > max_ratio => {
                    eprintln!(
                        "PERF GATE FAILED: [{tag}= at {peak_threads} threads ran {r:.2}x \
                         the 1-thread wall (limit {max_ratio:.2}x)"
                    );
                    return ExitCode::from(2);
                }
                Some((_, r)) => {
                    eprintln!("perf gate ok: [{tag}= ratio {r:.2}x ≤ {max_ratio:.2}x");
                }
                None => eprintln!(
                    "perf gate skipped for [{tag}=: need a 1-thread baseline and a \
                     >1-thread point"
                ),
            }
        }
    }

    if let Some(max_ratio) = env::var("REFINEMENT_BENCH_SUPERVISE_MAX_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if supervise.overhead_ratio > max_ratio {
            eprintln!(
                "SUPERVISE GATE FAILED: the supervisor's retry + journal machinery cost \
                 {:.2}x the bare checks (limit {max_ratio:.2}x)",
                supervise.overhead_ratio
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "supervise gate ok: {:.2}x ≤ {max_ratio:.2}x",
            supervise.overhead_ratio
        );
    }
    ExitCode::SUCCESS
}
