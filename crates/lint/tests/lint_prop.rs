//! Property: linting any parser-accepted CAPL program never panics, and the
//! findings it produces always render and serialise cleanly.
//!
//! The generator mirrors `capl/tests/roundtrip_prop.rs`: build a random AST,
//! pretty-print it, and re-parse — everything the parser accepts goes through
//! the full lint stack (symbol pass, dataflow, database cross-checks).

use capl::ast::*;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,6}".prop_filter("keyword", |s| {
        ![
            "on",
            "if",
            "else",
            "while",
            "for",
            "switch",
            "case",
            "default",
            "return",
            "break",
            "continue",
            "int",
            "long",
            "byte",
            "word",
            "dword",
            "char",
            "float",
            "double",
            "message",
            "msTimer",
            "timer",
            "void",
            "this",
            "includes",
            "variables",
            "output",
            "start",
        ]
        .contains(&s.as_str())
    })
}

fn scalar_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Int),
        Just(Type::Long),
        Just(Type::Byte),
        Just(Type::Word),
        Just(Type::Dword),
        Just(Type::Char),
    ]
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::Int),
        ident().prop_map(Expr::Ident),
        Just(Expr::This),
        "[ -~&&[^\"\\\\%']]{0,8}".prop_map(Expr::Str),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }),
            (inner.clone(), ident()).prop_map(|(o, m)| Expr::Member {
                object: Box::new(o),
                member: m,
            }),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Call { name, args }),
            (ident(), inner.clone()).prop_map(|(v, idx)| Expr::Index {
                array: Box::new(Expr::Ident(v)),
                index: Box::new(idx),
            }),
        ]
    })
    .boxed()
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        (ident(), arb_expr(2)).prop_map(|(v, e)| Stmt::Expr(Expr::Assign {
            target: Box::new(Expr::Ident(v)),
            value: Box::new(e),
        })),
        (ident(), proptest::collection::vec(arb_expr(1), 0..3))
            .prop_map(|(name, args)| Stmt::Expr(Expr::Call { name, args })),
        Just(Stmt::Break),
        Just(Stmt::Continue),
        proptest::option::of(arb_expr(1)).prop_map(Stmt::Return),
        (scalar_type(), ident(), proptest::option::of(arb_expr(1))).prop_map(|(ty, name, init)| {
            Stmt::VarDecl(VarDecl {
                ty,
                name,
                array: None,
                init,
                pos: capl::Pos::default(),
            })
        }),
    ];
    leaf.prop_recursive(depth, 12, 2, |inner| {
        let blk = proptest::collection::vec(inner.clone(), 0..3).prop_map(|stmts| Block { stmts });
        prop_oneof![
            (arb_expr(1), blk.clone(), proptest::option::of(blk.clone()))
                .prop_map(|(cond, then, els)| Stmt::If { cond, then, els }),
            (arb_expr(1), blk.clone()).prop_map(|(cond, body)| Stmt::While { cond, body }),
            blk.prop_map(Stmt::Block),
        ]
    })
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(
            (scalar_type(), ident(), proptest::option::of(arb_expr(1))),
            0..4,
        ),
        proptest::collection::vec(arb_stmt(2), 0..4),
        proptest::collection::vec(arb_stmt(2), 0..4),
    )
        .prop_map(|(vars, start_body, msg_body)| Program {
            includes: vec![],
            variables: vars
                .into_iter()
                .map(|(ty, name, init)| VarDecl {
                    ty,
                    name,
                    array: None,
                    init,
                    pos: capl::Pos::default(),
                })
                .collect(),
            handlers: vec![
                EventHandler {
                    event: EventKind::Start,
                    body: Block { stmts: start_body },
                    pos: capl::Pos::default(),
                },
                EventHandler {
                    event: EventKind::Message(MsgRef::Name("reqSw".to_owned())),
                    body: Block { stmts: msg_body },
                    pos: capl::Pos::default(),
                },
            ],
            functions: vec![],
        })
}

const DBC: &str = "BU_: VMG ECU\nBO_ 256 reqSw: 8 VMG\n SG_ x : 0|8@1+ (1,0) [0|255] \"\" ECU\n";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn linting_parser_accepted_programs_never_panics(program in arb_program()) {
        let printed = capl::pretty::program(&program);
        // Only parser-accepted programs are in scope; generated ASTs that the
        // printer cannot round-trip are skipped, not failures.
        let Ok(reparsed) = capl::parse(&printed) else { return Ok(()) };

        let db = candb::parse(DBC).expect("fixture database parses");
        let mut diags = lint::lint_program(&reparsed);
        diags.extend(lint::cross_check(&reparsed, &db));

        // Every finding renders against the real source and serialises.
        for d in &diags {
            let rendered = d.render("prop.can", &printed);
            prop_assert!(rendered.starts_with(d.severity.label()), "{rendered}");
            prop_assert!(!d.to_json("prop.can").is_empty());
        }
    }
}
