//! Keeps `docs/LINTS.md` in sync with the published code catalogue.

const LINTS_MD: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/LINTS.md"));

#[test]
fn every_published_code_is_documented() {
    let missing: Vec<&str> = lint::codes::CATALOGUE
        .iter()
        .map(|(code, _)| code.0)
        .filter(|code| !LINTS_MD.contains(code))
        .collect();
    assert!(
        missing.is_empty(),
        "codes missing from docs/LINTS.md: {missing:?}"
    );
}

#[test]
fn documentation_mentions_no_unpublished_codes() {
    // Any CAPL/DBC/CSP/SIM/ANA-prefixed number in the docs must be in the
    // catalogue. (STO4xx storage diagnostics are documented in LINTS.md
    // too but live with `fdrlite::persist`, which this crate does not
    // depend on — they are deliberately outside this scan.)
    let published: Vec<&str> = lint::codes::CATALOGUE.iter().map(|(c, _)| c.0).collect();
    let mut stale = Vec::new();
    for (prefix, digits) in [("CAPL", 3), ("DBC", 3), ("CSP", 3), ("SIM", 3), ("ANA", 3)] {
        let mut rest = LINTS_MD;
        while let Some(at) = rest.find(prefix) {
            let tail = &rest[at + prefix.len()..];
            let num: String = tail.chars().take_while(char::is_ascii_digit).collect();
            if num.len() == digits {
                let code = format!("{prefix}{num}");
                if !published.contains(&code.as_str()) && !stale.contains(&code) {
                    stale.push(code);
                }
            }
            rest = &rest[at + prefix.len()..];
        }
    }
    assert!(stale.is_empty(), "undocumented codes referenced: {stale:?}");
}
