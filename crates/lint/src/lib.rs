//! `lint` — static analysis for the auto-csp toolchain.
//!
//! One crate collects every pre-execution check the pipeline can run, all
//! reporting on the shared [`diag`] currency:
//!
//! - [`lint_program`] — CAPL lints: the frontend symbol pass plus
//!   use-before-init dataflow, dead stores, unreachable code and timer/handler
//!   pairing (`CAPL0xx`).
//! - [`lint_database`] / [`cross_check`] — `.dbc` hygiene and CAPL ↔ database
//!   cross-validation (`DBC1xx`).
//! - [`lint_module`] — CSPm structural analysis before any LTS is built:
//!   alphabet coverage of parallel compositions, unguarded recursion,
//!   unreachable definitions (`CSP2xx`).
//!
//! The [`codes`] module is the complete stable catalogue. [`LintReport`]
//! groups one run's findings per stage for rendering and gating.
//!
//! ```
//! let program = capl::parse("on start { ghost = 1; }").unwrap();
//! let report = lint::LintReport::for_capl(lint::lint_program(&program));
//! assert!(report.error_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use diag::{self, Code, Diagnostic, Severity, Span};

pub mod codes;

mod capl_rules;
mod csp_rules;
mod dbc_rules;

pub use capl_rules::lint_program;
pub use csp_rules::lint_module;
pub use dbc_rules::{cross_check, lint_database};

/// Which analysis stage produced a group of diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// CAPL program analysis (`CAPL0xx`, plus `DBC1xx` cross-checks anchored
    /// in the CAPL source).
    Capl,
    /// CAN database hygiene (`DBC1xx`).
    Dbc,
    /// CSPm structural analysis (`CSP2xx`).
    Csp,
}

impl Stage {
    /// Lower-case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Capl => "capl",
            Stage::Dbc => "dbc",
            Stage::Csp => "csp",
        }
    }
}

/// All findings of one lint run, grouped by stage.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// CAPL-stage findings (including cross-checks against the database).
    pub capl: Vec<Diagnostic>,
    /// Database-hygiene findings.
    pub dbc: Vec<Diagnostic>,
    /// CSPm-stage findings.
    pub csp: Vec<Diagnostic>,
}

impl LintReport {
    /// A report holding only CAPL-stage findings.
    pub fn for_capl(diagnostics: Vec<Diagnostic>) -> LintReport {
        LintReport {
            capl: diagnostics,
            ..LintReport::default()
        }
    }

    /// Every finding, in stage order.
    pub fn all(&self) -> impl Iterator<Item = (Stage, &Diagnostic)> {
        self.capl
            .iter()
            .map(|d| (Stage::Capl, d))
            .chain(self.dbc.iter().map(|d| (Stage::Dbc, d)))
            .chain(self.csp.iter().map(|d| (Stage::Csp, d)))
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.all()
            .filter(|(_, d)| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.all()
            .filter(|(_, d)| d.severity == Severity::Warning)
            .count()
    }

    /// Whether no stage found anything.
    pub fn is_clean(&self) -> bool {
        self.capl.is_empty() && self.dbc.is_empty() && self.csp.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_across_stages() {
        let mut r = LintReport::for_capl(vec![Diagnostic::error(
            codes::UNDECLARED_NAME,
            Span::unknown(),
            "x",
        )]);
        r.csp.push(Diagnostic::warning(
            codes::SYNC_ONE_SIDED,
            Span::unknown(),
            "y",
        ));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert_eq!(r.all().count(), 2);
    }

    #[test]
    fn empty_report_is_clean() {
        assert!(LintReport::default().is_clean());
    }
}
