//! Structural analysis of CSPm modules, before any LTS is built.
//!
//! Three families of checks, all purely syntactic and conservative:
//!
//! - `CSP201`/`CSP204` — alphabet coverage of parallel compositions: an event
//!   in the synchronisation set that only one side (or neither side) can ever
//!   perform blocks the interface forever.
//! - `CSP202` — unguarded recursion: a process that can reach itself without
//!   performing an event first can unwind forever (divergence risk).
//! - `CSP203` — definitions unreachable from every assertion (only reported
//!   when the module has assertions, so plain libraries stay quiet).
//!
//! Whenever a construct defeats the syntactic approximation (renaming,
//! hiding, computed sync sets), the affected check bails out silently rather
//! than risk a false positive.

use std::collections::{HashMap, HashSet};

use cspm::ast::{Assertion, Decl, Expr, Module};
use diag::{Diagnostic, Span};

use crate::codes;

/// One process definition as the linter sees it.
struct Def<'a> {
    params: &'a [String],
    body: &'a Expr,
    span: Span,
}

struct Ctx<'a> {
    defs: HashMap<&'a str, Def<'a>>,
    channels: HashSet<&'a str>,
}

/// All CSPm structural lints for `module`.
pub fn lint_module(module: &Module) -> Vec<Diagnostic> {
    let mut ctx = Ctx {
        defs: HashMap::new(),
        channels: HashSet::new(),
    };
    for d in &module.decls {
        match d {
            Decl::Channel { names, .. } => {
                ctx.channels.extend(names.iter().map(String::as_str));
            }
            Decl::Definition {
                name,
                params,
                body,
                pos,
                ..
            } => {
                ctx.defs.insert(
                    name,
                    Def {
                        params,
                        body,
                        span: Span::new(pos.line, pos.col, name.len().max(1) as u32),
                    },
                );
            }
            _ => {}
        }
    }

    let mut out = Vec::new();
    alphabet_coverage(module, &ctx, &mut out);
    unguarded_recursion(&ctx, &mut out);
    unreachable_definitions(module, &ctx, &mut out);
    out
}

// ---------------------------------------------------------------------------
// CSP201 / CSP204: alphabet coverage of parallel compositions.
// ---------------------------------------------------------------------------

fn alphabet_coverage(module: &Module, ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let mut memo: HashMap<&str, Option<HashSet<&str>>> = HashMap::new();
    for d in &module.decls {
        match d {
            Decl::Definition {
                body, name, pos, ..
            } => {
                let span = Span::new(pos.line, pos.col, name.len().max(1) as u32);
                visit_parallels(body, ctx, span, &mut memo, out);
            }
            Decl::Assert(a) => {
                let (lhs, rhs) = match a {
                    Assertion::Refinement { spec, impl_, .. } => (spec, Some(impl_)),
                    Assertion::Property { process, .. } => (process, None),
                };
                visit_parallels(lhs, ctx, Span::unknown(), &mut memo, out);
                if let Some(r) = rhs {
                    visit_parallels(r, ctx, Span::unknown(), &mut memo, out);
                }
            }
            _ => {}
        }
    }
}

fn visit_parallels<'a>(
    e: &'a Expr,
    ctx: &Ctx<'a>,
    anchor: Span,
    memo: &mut HashMap<&'a str, Option<HashSet<&'a str>>>,
    out: &mut Vec<Diagnostic>,
) {
    if let Expr::Parallel { left, sync, right } = e {
        check_parallel(left, sync, right, ctx, anchor, memo, out);
    }
    each_child(e, &mut |c| visit_parallels(c, ctx, anchor, memo, out));
}

#[allow(clippy::too_many_arguments)]
fn check_parallel<'a>(
    left: &'a Expr,
    sync: &'a Expr,
    right: &'a Expr,
    ctx: &Ctx<'a>,
    anchor: Span,
    memo: &mut HashMap<&'a str, Option<HashSet<&'a str>>>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(sync_chans) = sync_channels(sync, ctx) else {
        return;
    };
    let mut in_progress = HashSet::new();
    let Some(left_alpha) = alphabet(left, ctx, memo, &mut in_progress) else {
        return;
    };
    in_progress.clear();
    let Some(right_alpha) = alphabet(right, ctx, memo, &mut in_progress) else {
        return;
    };

    for chan in sync_chans {
        let l = left_alpha.contains(chan);
        let r = right_alpha.contains(chan);
        if l && r {
            continue;
        }
        if l != r {
            let (can, cannot) = if l {
                ("left", "right")
            } else {
                ("right", "left")
            };
            out.push(
                Diagnostic::warning(
                    codes::SYNC_ONE_SIDED,
                    anchor,
                    format!(
                        "channel `{chan}` is in the synchronisation set but only the {can} side \
                         of the parallel can perform it"
                    ),
                )
                .with_note(format!(
                    "the {cannot} side never offers `{chan}`, so every `{chan}` event \
                     deadlocks the composition"
                )),
            );
        } else {
            out.push(Diagnostic::warning(
                codes::SYNC_DEAD_EVENT,
                anchor,
                format!(
                    "channel `{chan}` is in the synchronisation set but neither side of the \
                     parallel ever performs it"
                ),
            ));
        }
    }
}

/// The channel names a synchronisation-set expression denotes, or `None` if
/// the set is computed in a way this syntactic pass cannot resolve.
fn sync_channels<'a>(set: &'a Expr, ctx: &Ctx<'a>) -> Option<Vec<&'a str>> {
    match set {
        Expr::Productions(pats) => {
            let mut chans = Vec::new();
            for p in pats {
                if !ctx.channels.contains(p.channel.as_str()) {
                    return None;
                }
                push_unique(&mut chans, p.channel.as_str());
            }
            Some(chans)
        }
        Expr::SetLit(items) => {
            let mut chans = Vec::new();
            for item in items {
                let name = match item {
                    Expr::Name(n) => n.as_str(),
                    Expr::Dotted { name, .. } => name.as_str(),
                    _ => return None,
                };
                if !ctx.channels.contains(name) {
                    return None;
                }
                push_unique(&mut chans, name);
            }
            Some(chans)
        }
        // A named constant set: resolve through its (parameterless) definition.
        Expr::Name(n) => {
            let def = ctx.defs.get(n.as_str())?;
            if def.params.is_empty() {
                sync_channels(def.body, ctx)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn push_unique<'a>(v: &mut Vec<&'a str>, s: &'a str) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// The set of channels a process expression can ever perform, following
/// definition references; `None` when renaming/hiding defeats the
/// approximation.
fn alphabet<'a>(
    e: &'a Expr,
    ctx: &Ctx<'a>,
    memo: &mut HashMap<&'a str, Option<HashSet<&'a str>>>,
    in_progress: &mut HashSet<&'a str>,
) -> Option<HashSet<&'a str>> {
    match e {
        Expr::Stop | Expr::Skip => Some(HashSet::new()),
        Expr::Prefix { event, body } => {
            let mut a = alphabet(body, ctx, memo, in_progress)?;
            if ctx.channels.contains(event.channel.as_str()) {
                a.insert(event.channel.as_str());
            }
            a.into()
        }
        Expr::Guard { body, .. } => alphabet(body, ctx, memo, in_progress),
        Expr::ExtChoice(a, b)
        | Expr::IntChoice(a, b)
        | Expr::Seq(a, b)
        | Expr::Interleave(a, b)
        | Expr::Interrupt(a, b)
        | Expr::Timeout(a, b) => {
            let mut s = alphabet(a, ctx, memo, in_progress)?;
            s.extend(alphabet(b, ctx, memo, in_progress)?);
            Some(s)
        }
        Expr::Parallel { left, right, .. } => {
            let mut s = alphabet(left, ctx, memo, in_progress)?;
            s.extend(alphabet(right, ctx, memo, in_progress)?);
            Some(s)
        }
        // Hiding removes events and renaming rewrites them; both defeat the
        // purely syntactic alphabet, so bail out.
        Expr::Hide { .. } | Expr::Rename { .. } => None,
        Expr::Replicated { body, .. } => alphabet(body, ctx, memo, in_progress),
        Expr::If { then, els, .. } => {
            let mut s = alphabet(then, ctx, memo, in_progress)?;
            s.extend(alphabet(els, ctx, memo, in_progress)?);
            Some(s)
        }
        Expr::Let { body, .. } => alphabet(body, ctx, memo, in_progress),
        Expr::Name(n) | Expr::Call { name: n, .. } => {
            let name = n.as_str();
            let Some(def) = ctx.defs.get(name) else {
                // Unknown name: a parameter or local — contributes nothing.
                return Some(HashSet::new());
            };
            if let Some(cached) = memo.get(name) {
                return cached.clone();
            }
            if !in_progress.insert(name) {
                // Recursive knot: the fixpoint contribution is already being
                // accumulated higher up the stack.
                return Some(HashSet::new());
            }
            let result = alphabet(def.body, ctx, memo, in_progress);
            in_progress.remove(name);
            memo.insert(name, result.clone());
            result
        }
        // Value-level expressions perform no events.
        _ => Some(HashSet::new()),
    }
}

// ---------------------------------------------------------------------------
// CSP202: unguarded recursion.
// ---------------------------------------------------------------------------

fn unguarded_recursion(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    // Edges: definition -> definitions reachable without passing a prefix.
    let mut edges: HashMap<&str, Vec<&str>> = HashMap::new();
    for (name, def) in &ctx.defs {
        let mut succ = Vec::new();
        let mut shadow: Vec<&str> = def.params.iter().map(String::as_str).collect();
        unguarded_succ(def.body, ctx, &mut shadow, &mut succ);
        edges.insert(name, succ);
    }

    let mut names: Vec<&str> = ctx.defs.keys().copied().collect();
    names.sort_unstable();
    for name in names {
        if reaches(name, name, &edges, &mut HashSet::new()) {
            out.push(
                Diagnostic::warning(
                    codes::UNGUARDED_RECURSION,
                    ctx.defs[name].span,
                    format!("process `{name}` can recurse without performing an event first"),
                )
                .with_note("unguarded recursion lets the process unwind forever (divergence)"),
            );
        }
    }
}

fn reaches<'a>(
    from: &'a str,
    target: &str,
    edges: &HashMap<&'a str, Vec<&'a str>>,
    visited: &mut HashSet<&'a str>,
) -> bool {
    let Some(succ) = edges.get(from) else {
        return false;
    };
    for s in succ {
        if *s == target {
            return true;
        }
        if visited.insert(s) && reaches(s, target, edges, visited) {
            return true;
        }
    }
    false
}

/// Names of definitions reachable from `e` without passing through an event
/// prefix. `shadow` holds locally-bound names that must not be mistaken for
/// definitions.
fn unguarded_succ<'a>(
    e: &'a Expr,
    ctx: &Ctx<'a>,
    shadow: &mut Vec<&'a str>,
    out: &mut Vec<&'a str>,
) {
    match e {
        // Everything beyond a prefix is guarded by its event.
        Expr::Prefix { .. } => {}
        Expr::Name(n) | Expr::Call { name: n, .. } => {
            let name = n.as_str();
            if ctx.defs.contains_key(name) && !shadow.contains(&name) && !out.contains(&name) {
                out.push(name);
            }
        }
        Expr::Guard { body, .. } => unguarded_succ(body, ctx, shadow, out),
        Expr::ExtChoice(a, b)
        | Expr::IntChoice(a, b)
        | Expr::Interleave(a, b)
        | Expr::Interrupt(a, b)
        | Expr::Timeout(a, b) => {
            unguarded_succ(a, ctx, shadow, out);
            unguarded_succ(b, ctx, shadow, out);
        }
        Expr::Seq(a, b) => {
            unguarded_succ(a, ctx, shadow, out);
            if terminates_silently(a) {
                unguarded_succ(b, ctx, shadow, out);
            }
        }
        Expr::Parallel { left, right, .. } => {
            unguarded_succ(left, ctx, shadow, out);
            unguarded_succ(right, ctx, shadow, out);
        }
        Expr::Hide { process, .. } => unguarded_succ(process, ctx, shadow, out),
        Expr::Rename { process, .. } => unguarded_succ(process, ctx, shadow, out),
        Expr::Replicated { var, body, .. } => {
            shadow.push(var);
            unguarded_succ(body, ctx, shadow, out);
            shadow.pop();
        }
        Expr::If { then, els, .. } => {
            unguarded_succ(then, ctx, shadow, out);
            unguarded_succ(els, ctx, shadow, out);
        }
        Expr::Let { bindings, body } => {
            let depth = shadow.len();
            for (name, _) in bindings {
                shadow.push(name);
            }
            unguarded_succ(body, ctx, shadow, out);
            shadow.truncate(depth);
        }
        _ => {}
    }
}

/// Whether `e` can terminate (reach `SKIP`) without performing any event —
/// purely syntactic, erring towards `false`.
fn terminates_silently(e: &Expr) -> bool {
    match e {
        Expr::Skip => true,
        Expr::Seq(a, b) => terminates_silently(a) && terminates_silently(b),
        Expr::ExtChoice(a, b) | Expr::IntChoice(a, b) | Expr::Timeout(a, b) => {
            terminates_silently(a) || terminates_silently(b)
        }
        Expr::If { then, els, .. } => terminates_silently(then) || terminates_silently(els),
        Expr::Guard { body, .. } => terminates_silently(body),
        Expr::Let { body, .. } => terminates_silently(body),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// CSP203: definitions unreachable from every assertion.
// ---------------------------------------------------------------------------

fn unreachable_definitions(module: &Module, ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let mut roots: Vec<&str> = Vec::new();
    let mut saw_assert = false;
    for d in &module.decls {
        if let Decl::Assert(a) = d {
            saw_assert = true;
            let exprs: Vec<&Expr> = match a {
                Assertion::Refinement { spec, impl_, .. } => vec![spec, impl_],
                Assertion::Property { process, .. } => vec![process],
            };
            for e in exprs {
                collect_names(e, &mut |n| {
                    if ctx.defs.contains_key(n) && !roots.contains(&n) {
                        roots.push(n);
                    }
                });
            }
        }
    }
    // A module without assertions is a library; reachability is meaningless.
    if !saw_assert {
        return;
    }

    let mut reachable: HashSet<&str> = HashSet::new();
    let mut queue = roots;
    while let Some(name) = queue.pop() {
        if !reachable.insert(name) {
            continue;
        }
        if let Some(def) = ctx.defs.get(name) {
            collect_names(def.body, &mut |n| {
                if ctx.defs.contains_key(n) && !reachable.contains(n) {
                    queue.push(n);
                }
            });
        }
    }

    let mut names: Vec<&str> = ctx.defs.keys().copied().collect();
    names.sort_unstable();
    for name in names {
        if !reachable.contains(name) {
            out.push(Diagnostic::warning(
                codes::UNREACHABLE_DEFINITION,
                ctx.defs[name].span,
                format!("definition `{name}` is not reachable from any assertion"),
            ));
        }
    }
}

/// Apply `f` to every name referenced anywhere in `e` (including calls).
fn collect_names<'a>(e: &'a Expr, f: &mut impl FnMut(&'a str)) {
    if let Expr::Name(n) | Expr::Call { name: n, .. } = e {
        f(n);
    }
    each_child(e, &mut |c| collect_names(c, f));
}

/// Apply `f` to each direct child expression of `e`.
fn each_child<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    match e {
        Expr::Call { args, .. } => args.iter().for_each(f),
        Expr::Dotted { fields, .. } => fields.iter().for_each(f),
        Expr::SetLit(items) | Expr::SeqLit(items) | Expr::Tuple(items) => {
            items.iter().for_each(f);
        }
        Expr::SetComprehension {
            head,
            binders,
            guards,
        } => {
            f(head);
            binders.iter().for_each(|(_, b)| f(b));
            guards.iter().for_each(f);
        }
        Expr::RangeSet { lo, hi } => {
            f(lo);
            f(hi);
        }
        Expr::Unary { expr, .. } => f(expr),
        Expr::Binary { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Expr::If { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        Expr::Let { bindings, body } => {
            bindings.iter().for_each(|(_, b)| f(b));
            f(body);
        }
        Expr::Prefix { event, body } => {
            for field in &event.fields {
                match field {
                    cspm::ast::FieldPat::Dot(e) | cspm::ast::FieldPat::Output(e) => f(e),
                    cspm::ast::FieldPat::Input {
                        restrict: Some(e), ..
                    } => f(e),
                    cspm::ast::FieldPat::Input { restrict: None, .. } => {}
                }
            }
            f(body);
        }
        Expr::Guard { cond, body } => {
            f(cond);
            f(body);
        }
        Expr::ExtChoice(a, b)
        | Expr::IntChoice(a, b)
        | Expr::Seq(a, b)
        | Expr::Interleave(a, b)
        | Expr::Interrupt(a, b)
        | Expr::Timeout(a, b) => {
            f(a);
            f(b);
        }
        Expr::Parallel { left, sync, right } => {
            f(left);
            f(sync);
            f(right);
        }
        Expr::Hide { process, set } => {
            f(process);
            f(set);
        }
        Expr::Rename { process, .. } => f(process),
        Expr::Replicated { set, body, .. } => {
            f(set);
            f(body);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Code;

    fn lints(src: &str) -> Vec<Diagnostic> {
        let script = cspm::Script::parse(src).expect("fixture parses");
        lint_module(script.module())
    }

    fn has(diags: &[Diagnostic], code: Code) -> bool {
        diags.iter().any(|d| d.code == code)
    }

    #[test]
    fn one_sided_sync_is_flagged() {
        let d = lints(
            "channel a, b, c\n\
             P = a -> P\n\
             Q = b -> Q\n\
             SYS = P [| {a, c} |] Q\n",
        );
        // `a` is performed only by P, `c` by neither.
        assert!(has(&d, codes::SYNC_ONE_SIDED), "{d:?}");
        assert!(has(&d, codes::SYNC_DEAD_EVENT), "{d:?}");
    }

    #[test]
    fn covered_sync_is_clean() {
        let d = lints(
            "channel a, b\n\
             P = a -> b -> P\n\
             Q = a -> b -> Q\n\
             SYS = P [| {a, b} |] Q\n",
        );
        assert!(!has(&d, codes::SYNC_ONE_SIDED), "{d:?}");
        assert!(!has(&d, codes::SYNC_DEAD_EVENT), "{d:?}");
    }

    #[test]
    fn renamed_side_bails_out() {
        let d = lints(
            "channel a, b\n\
             P = a -> P\n\
             Q = b -> Q\n\
             SYS = P [[ a <- b ]] [| {b} |] Q\n",
        );
        assert!(!has(&d, codes::SYNC_ONE_SIDED), "{d:?}");
    }

    #[test]
    fn unguarded_recursion_is_flagged() {
        let d = lints("channel a\nP = P [] a -> STOP\n");
        assert!(has(&d, codes::UNGUARDED_RECURSION), "{d:?}");
    }

    #[test]
    fn mutual_unguarded_recursion_is_flagged() {
        let d = lints("channel a\nP = Q\nQ = P [] a -> STOP\n");
        let hits = d
            .iter()
            .filter(|x| x.code == codes::UNGUARDED_RECURSION)
            .count();
        assert_eq!(hits, 2, "{d:?}");
    }

    #[test]
    fn guarded_recursion_is_clean() {
        let d = lints("channel a\nP = a -> P\n");
        assert!(!has(&d, codes::UNGUARDED_RECURSION), "{d:?}");
    }

    #[test]
    fn skip_seq_recursion_is_flagged() {
        let d = lints("channel a\nP = SKIP ; P\n");
        assert!(has(&d, codes::UNGUARDED_RECURSION), "{d:?}");
    }

    #[test]
    fn event_seq_recursion_is_clean() {
        let d = lints("channel a\nP = (a -> SKIP) ; P\n");
        assert!(!has(&d, codes::UNGUARDED_RECURSION), "{d:?}");
    }

    #[test]
    fn unreachable_definition_is_flagged() {
        let d = lints(
            "channel a, b\n\
             P = a -> P\n\
             ORPHAN = b -> ORPHAN\n\
             assert P :[deadlock free]\n",
        );
        assert!(has(&d, codes::UNREACHABLE_DEFINITION), "{d:?}");
        let hit = d
            .iter()
            .find(|x| x.code == codes::UNREACHABLE_DEFINITION)
            .unwrap();
        assert!(hit.message.contains("ORPHAN"), "{d:?}");
    }

    #[test]
    fn module_without_assertions_reports_no_reachability() {
        let d = lints("channel a\nP = a -> P\nORPHAN = a -> ORPHAN\n");
        assert!(!has(&d, codes::UNREACHABLE_DEFINITION), "{d:?}");
    }

    #[test]
    fn reachability_follows_references() {
        let d = lints(
            "channel a\n\
             HELPER = a -> HELPER\n\
             P = HELPER\n\
             assert P :[deadlock free]\n",
        );
        assert!(!has(&d, codes::UNREACHABLE_DEFINITION), "{d:?}");
    }

    #[test]
    fn productions_sync_set_is_resolved() {
        let d = lints(
            "channel rec : {0..1}\n\
             channel send : {0..1}\n\
             P = rec?x -> send!x -> P\n\
             Q = rec!0 -> Q\n\
             SYS = P [| {| rec, send |} |] Q\n",
        );
        // `send` is synchronised but only P performs it.
        assert!(has(&d, codes::SYNC_ONE_SIDED), "{d:?}");
    }
}
