//! CAPL program lints beyond the frontend's symbol pass.
//!
//! [`lint_program`] re-reports everything `capl::analyze` finds (the
//! `CAPL001`–`CAPL009` symbol diagnostics) and layers on:
//!
//! - `CAPL010` — timers armed with `setTimer` that have no `on timer` handler,
//! - `CAPL011` — conservative use-before-initialisation dataflow over locals,
//! - `CAPL012` — dead stores (locals assigned but never read),
//! - `CAPL013` — statements unreachable after `return`/`break`/`continue`.
//!
//! The dataflow is a straight-line abstract interpretation with three-point
//! states (`No`/`Maybe`/`Yes`) joined at control-flow merges; anything merged
//! becomes `Maybe`, which never fires, so the pass errs towards silence.

use std::collections::{HashMap, HashSet};

use capl::ast::{Block, EventKind, Expr, Program, Stmt, Type, VarDecl};
use capl::symbols::span_at;
use capl::Pos;
use diag::Diagnostic;

use crate::codes;

/// All CAPL lints for `program`: the symbol pass plus the dataflow lints.
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut out = capl::analyze(program).diagnostics().to_vec();
    timer_pairing(program, &mut out);
    for h in &program.handlers {
        body_lints(&h.body, &[], h.pos, &mut out);
    }
    for f in &program.functions {
        body_lints(&f.body, &f.params, f.pos, &mut out);
    }
    out
}

/// `CAPL010`: a timer armed somewhere but with no `on timer` handler never
/// does anything when it expires.
fn timer_pairing(program: &Program, out: &mut Vec<Diagnostic>) {
    let timer_decls: HashMap<&str, &VarDecl> = program
        .variables
        .iter()
        .filter(|v| matches!(v.ty, Type::MsTimer | Type::Timer))
        .map(|v| (v.name.as_str(), v))
        .collect();
    let handled: HashSet<&str> = program
        .handlers
        .iter()
        .filter_map(|h| match &h.event {
            EventKind::Timer(t) => Some(t.as_str()),
            _ => None,
        })
        .collect();

    let mut armed: Vec<&str> = Vec::new();
    let mut collect = |e: &Expr| {
        if let Expr::Call { name, args } = e {
            if name == "setTimer" {
                if let Some(Expr::Ident(t)) = args.first() {
                    if let Some(v) = timer_decls.get(t.as_str()) {
                        armed.push_unique(&v.name);
                    }
                }
            }
        }
    };
    for h in &program.handlers {
        visit_exprs(&h.body, &mut collect);
    }
    for f in &program.functions {
        visit_exprs(&f.body, &mut collect);
    }

    for t in armed {
        if !handled.contains(t) {
            let v = timer_decls[t];
            out.push(
                Diagnostic::warning(
                    codes::TIMER_WITHOUT_HANDLER,
                    span_at(v.pos, v.name.len()),
                    format!("timer `{t}` is set but has no `on timer {t}` handler"),
                )
                .with_note("the expiry event is silently dropped"),
            );
        }
    }
}

trait PushUnique<'a> {
    fn push_unique(&mut self, item: &'a str);
}

impl<'a> PushUnique<'a> for Vec<&'a str> {
    fn push_unique(&mut self, item: &'a str) {
        if !self.contains(&item) {
            self.push(item);
        }
    }
}

/// Apply `f` to every expression in `block`, recursively.
pub(crate) fn visit_exprs(block: &Block, f: &mut impl FnMut(&Expr)) {
    for s in &block.stmts {
        visit_stmt_exprs(s, f);
    }
}

fn visit_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::VarDecl(v) => {
            if let Some(init) = &v.init {
                visit_expr(init, f);
            }
        }
        Stmt::Expr(e) => visit_expr(e, f),
        Stmt::If { cond, then, els } => {
            visit_expr(cond, f);
            visit_exprs(then, f);
            if let Some(e) = els {
                visit_exprs(e, f);
            }
        }
        Stmt::While { cond, body } => {
            visit_expr(cond, f);
            visit_exprs(body, f);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                visit_stmt_exprs(i, f);
            }
            if let Some(c) = cond {
                visit_expr(c, f);
            }
            if let Some(st) = step {
                visit_expr(st, f);
            }
            visit_exprs(body, f);
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            visit_expr(scrutinee, f);
            for (k, b) in cases {
                visit_expr(k, f);
                visit_exprs(b, f);
            }
            if let Some(d) = default {
                visit_exprs(d, f);
            }
        }
        Stmt::Return(Some(e)) => visit_expr(e, f),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        Stmt::Block(b) => visit_exprs(b, f),
    }
}

fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Member { object, .. } => visit_expr(object, f),
        Expr::Index { array, index } => {
            visit_expr(array, f);
            visit_expr(index, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        Expr::Unary { expr, .. } => visit_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        Expr::Assign { target, value } => {
            visit_expr(target, f);
            visit_expr(value, f);
        }
        _ => {}
    }
}

/// Per-body lints: use-before-init, dead stores, unreachable statements.
fn body_lints(body: &Block, params: &[(Type, String)], anchor: Pos, out: &mut Vec<Diagnostic>) {
    // Use-before-init dataflow.
    let mut flow = Flow {
        locals: Vec::new(),
        decl_pos: HashMap::new(),
        reported: HashSet::new(),
        out,
    };
    for (_, name) in params {
        flow.locals.push((name.clone(), Init::Yes));
    }
    flow.walk_block(body);

    dead_stores(body, out);
    unreachable_stmts(body, anchor, out);
}

/// `CAPL012`: locals that are written (initialised or assigned) but whose
/// value is never read anywhere in the body. Counting is name-based and
/// whole-body, so loops and shadowing can only suppress findings, never
/// invent them.
fn dead_stores(body: &Block, out: &mut Vec<Diagnostic>) {
    struct Usage {
        decl: Option<Pos>,
        written: bool,
        read: bool,
    }
    fn scan_block(b: &Block, usage: &mut HashMap<String, Usage>) {
        for s in &b.stmts {
            scan_stmt(s, usage);
        }
    }
    fn scan_stmt(s: &Stmt, usage: &mut HashMap<String, Usage>) {
        match s {
            Stmt::VarDecl(v) => {
                if let Some(init) = &v.init {
                    scan_read(init, usage);
                }
                let entry = usage.entry(v.name.clone()).or_insert(Usage {
                    decl: None,
                    written: false,
                    read: false,
                });
                entry.decl.get_or_insert(v.pos);
                entry.written |= v.init.is_some();
            }
            Stmt::Expr(e) => scan_read(e, usage),
            Stmt::If { cond, then, els } => {
                scan_read(cond, usage);
                scan_block(then, usage);
                if let Some(e) = els {
                    scan_block(e, usage);
                }
            }
            Stmt::While { cond, body } => {
                scan_read(cond, usage);
                scan_block(body, usage);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    scan_stmt(i, usage);
                }
                if let Some(c) = cond {
                    scan_read(c, usage);
                }
                if let Some(st) = step {
                    scan_read(st, usage);
                }
                scan_block(body, usage);
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                scan_read(scrutinee, usage);
                for (k, b) in cases {
                    scan_read(k, usage);
                    scan_block(b, usage);
                }
                if let Some(d) = default {
                    scan_block(d, usage);
                }
            }
            Stmt::Return(Some(e)) => scan_read(e, usage),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
            Stmt::Block(b) => scan_block(b, usage),
        }
    }
    /// Mark reads within `e`; a plain identifier assignment target is a write.
    fn scan_read(e: &Expr, usage: &mut HashMap<String, Usage>) {
        match e {
            Expr::Assign { target, value } => {
                scan_read(value, usage);
                match &**target {
                    Expr::Ident(x) => {
                        if let Some(u) = usage.get_mut(x) {
                            u.written = true;
                        }
                    }
                    other => scan_read(other, usage),
                }
            }
            Expr::Ident(x) => {
                if let Some(u) = usage.get_mut(x) {
                    u.read = true;
                }
            }
            Expr::Member { object, .. } => scan_read(object, usage),
            Expr::Index { array, index } => {
                scan_read(array, usage);
                scan_read(index, usage);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    scan_read(a, usage);
                }
            }
            Expr::Unary { expr, .. } => scan_read(expr, usage),
            Expr::Binary { lhs, rhs, .. } => {
                scan_read(lhs, usage);
                scan_read(rhs, usage);
            }
            _ => {}
        }
    }

    let mut usage: HashMap<String, Usage> = HashMap::new();
    scan_block(body, &mut usage);
    let mut findings: Vec<(&String, &Usage)> =
        usage.iter().filter(|(_, u)| u.written && !u.read).collect();
    findings.sort_by_key(|(name, _)| name.as_str());
    for (name, u) in findings {
        let pos = u.decl.unwrap_or_default();
        out.push(
            Diagnostic::warning(
                codes::DEAD_STORE,
                span_at(pos, name.len()),
                format!("value of local `{name}` is never read"),
            )
            .with_note("remove the variable or the stores into it"),
        );
    }
}

/// `CAPL013`: statements following an unconditional `return`, `break` or
/// `continue` in the same block never execute.
fn unreachable_stmts(body: &Block, anchor: Pos, out: &mut Vec<Diagnostic>) {
    fn terminates(s: &Stmt) -> bool {
        match s {
            Stmt::Return(_) | Stmt::Break | Stmt::Continue => true,
            Stmt::Block(b) => block_terminates(b),
            Stmt::If {
                then, els: Some(e), ..
            } => block_terminates(then) && block_terminates(e),
            _ => false,
        }
    }
    fn block_terminates(b: &Block) -> bool {
        b.stmts.iter().any(terminates)
    }
    fn walk(b: &Block, anchor: Pos, out: &mut Vec<Diagnostic>) {
        if let Some(i) = b.stmts.iter().position(terminates) {
            if i + 1 < b.stmts.len() {
                out.push(Diagnostic::warning(
                    codes::UNREACHABLE_CODE,
                    span_at(anchor, 2),
                    format!(
                        "unreachable statement{}: control flow cannot pass the preceding exit",
                        if b.stmts.len() - i > 2 { "s" } else { "" }
                    ),
                ));
            }
        }
        for s in &b.stmts {
            match s {
                Stmt::If { then, els, .. } => {
                    walk(then, anchor, out);
                    if let Some(e) = els {
                        walk(e, anchor, out);
                    }
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => walk(body, anchor, out),
                Stmt::Switch { cases, default, .. } => {
                    for (_, cb) in cases {
                        walk(cb, anchor, out);
                    }
                    if let Some(d) = default {
                        walk(d, anchor, out);
                    }
                }
                Stmt::Block(nested) => walk(nested, anchor, out),
                _ => {}
            }
        }
    }
    walk(body, anchor, out);
}

/// Three-point initialisation state for one local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Init {
    /// Definitely unassigned.
    No,
    /// Assigned on some paths only.
    Maybe,
    /// Definitely assigned.
    Yes,
}

fn join(a: Init, b: Init) -> Init {
    if a == b {
        a
    } else {
        Init::Maybe
    }
}

struct Flow<'a> {
    /// Stack of in-scope locals (innermost last; lookup scans backwards).
    locals: Vec<(String, Init)>,
    decl_pos: HashMap<String, Pos>,
    reported: HashSet<String>,
    out: &'a mut Vec<Diagnostic>,
}

impl Flow<'_> {
    fn states(&self) -> Vec<Init> {
        self.locals.iter().map(|(_, s)| *s).collect()
    }

    fn set_states(&mut self, states: &[Init]) {
        for ((_, s), new) in self.locals.iter_mut().zip(states) {
            *s = *new;
        }
    }

    fn set_yes(&mut self, name: &str) {
        if let Some((_, s)) = self.locals.iter_mut().rev().find(|(n, _)| n == name) {
            *s = Init::Yes;
        }
    }

    fn walk_block(&mut self, b: &Block) {
        let depth = self.locals.len();
        for s in &b.stmts {
            self.walk_stmt(s);
        }
        self.locals.truncate(depth);
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl(v) => {
                if let Some(init) = &v.init {
                    self.read_expr(init);
                }
                // Timers, message objects and arrays are usable as declared;
                // only bare scalars start life unassigned.
                let scalar = matches!(
                    v.ty,
                    Type::Int
                        | Type::Long
                        | Type::Byte
                        | Type::Word
                        | Type::Dword
                        | Type::Char
                        | Type::Float
                );
                let state = if v.init.is_some() || v.array.is_some() || !scalar {
                    Init::Yes
                } else {
                    Init::No
                };
                self.decl_pos.entry(v.name.clone()).or_insert(v.pos);
                self.locals.push((v.name.clone(), state));
            }
            Stmt::Expr(e) => self.read_expr(e),
            Stmt::If { cond, then, els } => {
                self.read_expr(cond);
                let base = self.states();
                self.walk_block(then);
                let after_then = self.states();
                self.set_states(&base);
                if let Some(e) = els {
                    self.walk_block(e);
                }
                let after_else = self.states();
                let merged: Vec<Init> = after_then
                    .iter()
                    .zip(&after_else)
                    .map(|(a, b)| join(*a, *b))
                    .collect();
                self.set_states(&merged);
            }
            Stmt::While { cond, body } => {
                self.read_expr(cond);
                let base = self.states();
                self.walk_block(body);
                let after = self.states();
                let merged: Vec<Init> =
                    base.iter().zip(&after).map(|(a, b)| join(*a, *b)).collect();
                self.set_states(&merged);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let depth = self.locals.len();
                if let Some(i) = init {
                    self.walk_stmt(i);
                }
                if let Some(c) = cond {
                    self.read_expr(c);
                }
                let base = self.states();
                self.walk_block(body);
                if let Some(st) = step {
                    self.read_expr(st);
                }
                let after = self.states();
                let merged: Vec<Init> =
                    base.iter().zip(&after).map(|(a, b)| join(*a, *b)).collect();
                self.set_states(&merged);
                self.locals.truncate(depth);
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                self.read_expr(scrutinee);
                let base = self.states();
                let mut merged = match default {
                    // Without a default arm, the fall-through path keeps the
                    // pre-switch states.
                    None => base.clone(),
                    Some(d) => {
                        self.walk_block(d);
                        let out = self.states();
                        self.set_states(&base);
                        out
                    }
                };
                for (k, b) in cases {
                    self.read_expr(k);
                    self.walk_block(b);
                    let arm = self.states();
                    self.set_states(&base);
                    merged = merged.iter().zip(&arm).map(|(a, b)| join(*a, *b)).collect();
                }
                self.set_states(&merged);
            }
            Stmt::Return(Some(e)) => self.read_expr(e),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
            Stmt::Block(b) => self.walk_block(b),
        }
    }

    fn read_expr(&mut self, e: &Expr) {
        match e {
            Expr::Assign { target, value } => {
                self.read_expr(value);
                match &**target {
                    Expr::Ident(x) => self.set_yes(x),
                    other => self.read_expr(other),
                }
            }
            Expr::Ident(x) => {
                let state = self
                    .locals
                    .iter()
                    .rev()
                    .find(|(n, _)| n == x)
                    .map(|(_, s)| *s);
                if state == Some(Init::No) && self.reported.insert(x.clone()) {
                    let pos = self.decl_pos.get(x).copied().unwrap_or_default();
                    self.out.push(
                        Diagnostic::warning(
                            codes::USE_BEFORE_INIT,
                            span_at(pos, x.len()),
                            format!("local `{x}` may be read before it is assigned"),
                        )
                        .with_note("give it an initialiser or assign it on every path first"),
                    );
                }
            }
            Expr::Member { object, .. } => self.read_expr(object),
            Expr::Index { array, index } => {
                self.read_expr(array);
                self.read_expr(index);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.read_expr(a);
                }
            }
            Expr::Unary { expr, .. } => self.read_expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.read_expr(lhs);
                self.read_expr(rhs);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Code;

    fn lints(src: &str) -> Vec<Diagnostic> {
        lint_program(&capl::parse(src).unwrap())
    }

    fn has(diags: &[Diagnostic], code: Code) -> bool {
        diags.iter().any(|d| d.code == code)
    }

    #[test]
    fn timer_set_without_handler_is_flagged() {
        let d = lints("variables { msTimer t; } on start { setTimer(t, 100); }");
        assert!(has(&d, codes::TIMER_WITHOUT_HANDLER), "{d:?}");
    }

    #[test]
    fn timer_with_handler_is_clean() {
        let d = lints(
            "variables { msTimer t; }
             on start { setTimer(t, 100); }
             on timer t { }",
        );
        assert!(!has(&d, codes::TIMER_WITHOUT_HANDLER), "{d:?}");
    }

    #[test]
    fn use_before_init_straight_line() {
        let d = lints("void f() { int x; int y; y = x + 1; write(\"%d\", y); }");
        assert!(has(&d, codes::USE_BEFORE_INIT), "{d:?}");
    }

    #[test]
    fn init_on_both_branches_is_clean() {
        let d = lints(
            "void f(int c) {
                int x;
                if (c > 0) { x = 1; } else { x = 2; }
                write(\"%d\", x);
             }",
        );
        assert!(!has(&d, codes::USE_BEFORE_INIT), "{d:?}");
    }

    #[test]
    fn init_on_one_branch_stays_silent() {
        // Maybe-states never fire: the lint is conservative.
        let d = lints(
            "void f(int c) {
                int x;
                if (c > 0) { x = 1; }
                write(\"%d\", x);
             }",
        );
        assert!(!has(&d, codes::USE_BEFORE_INIT), "{d:?}");
    }

    #[test]
    fn initialised_declaration_is_clean() {
        let d = lints("void f() { int x = 3; write(\"%d\", x); }");
        assert!(!has(&d, codes::USE_BEFORE_INIT), "{d:?}");
    }

    #[test]
    fn dead_store_is_flagged() {
        let d = lints("void f() { int x; x = 5; }");
        assert!(has(&d, codes::DEAD_STORE), "{d:?}");
    }

    #[test]
    fn read_store_is_clean() {
        let d = lints("void f() { int x; x = 5; write(\"%d\", x); }");
        assert!(!has(&d, codes::DEAD_STORE), "{d:?}");
    }

    #[test]
    fn self_increment_counts_as_read() {
        // `x = x + 1` reads x, so it is not a dead store.
        let d = lints("void f() { int x = 0; x = x + 1; }");
        assert!(!has(&d, codes::DEAD_STORE), "{d:?}");
    }

    #[test]
    fn unreachable_after_return_is_flagged() {
        let d = lints("int f() { return 1; write(\"no\"); }");
        assert!(has(&d, codes::UNREACHABLE_CODE), "{d:?}");
    }

    #[test]
    fn trailing_return_is_clean() {
        let d = lints("int f() { write(\"yes\"); return 1; }");
        assert!(!has(&d, codes::UNREACHABLE_CODE), "{d:?}");
    }

    #[test]
    fn unreachable_after_exhaustive_if_is_flagged() {
        let d = lints(
            "int f(int c) {
                if (c > 0) { return 1; } else { return 2; }
                return 3;
             }",
        );
        assert!(has(&d, codes::UNREACHABLE_CODE), "{d:?}");
    }

    #[test]
    fn loop_assignment_then_use_is_clean() {
        let d = lints(
            "void f(int n) {
                int acc = 0;
                int i;
                for (i = 0; i < n; i = i + 1) { acc = acc + i; }
                write(\"%d\", acc);
             }",
        );
        assert!(!has(&d, codes::USE_BEFORE_INIT), "{d:?}");
        assert!(!has(&d, codes::DEAD_STORE), "{d:?}");
    }

    #[test]
    fn symbol_pass_diagnostics_flow_through() {
        let d = lints("on start { ghost = 1; }");
        assert!(has(&d, capl::symbols::UNDECLARED_NAME), "{d:?}");
    }
}
