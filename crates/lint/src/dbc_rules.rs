//! CAN-database hygiene and CAPL ↔ `.dbc` cross-validation.
//!
//! [`lint_database`] checks a parsed `.dbc` on its own: oversized DLCs,
//! signals that overlap or run past the payload, duplicate identifiers.
//! [`cross_check`] validates a CAPL program against the database it will run
//! on: every `message` declaration, `on message` handler and `output()` of a
//! symbolic name must resolve to a database message, handlers must not
//! collide on one message, and signal accesses must name real signals.
//!
//! Database findings carry no source span (the data model keeps no
//! positions); cross-check findings anchor in the CAPL source.

use std::collections::HashMap;

use candb::{ByteOrder, Database, Message, Signal};
use capl::ast::{EventKind, Expr, MsgRef, Program, Type};
use capl::symbols::span_at;
use diag::{Diagnostic, Span};

use crate::codes;

/// Message selectors CAPL exposes on every message object, besides signals.
const MESSAGE_SELECTORS: &[&str] = &["id", "dlc", "dir", "can", "time", "rtr"];

/// Hygiene lints over the database itself.
pub fn lint_database(db: &Database) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let mut by_id: HashMap<u32, &str> = HashMap::new();
    let mut by_name: HashMap<&str, u32> = HashMap::new();
    for m in &db.messages {
        if let Some(first) = by_id.insert(m.id, &m.name) {
            out.push(Diagnostic::error(
                codes::DUPLICATE_DB_ID,
                Span::unknown(),
                format!(
                    "messages `{first}` and `{}` share CAN id 0x{:x}",
                    m.name, m.id
                ),
            ));
        }
        if by_name.insert(&m.name, m.id).is_some() {
            out.push(Diagnostic::error(
                codes::DUPLICATE_DB_ID,
                Span::unknown(),
                format!("message `{}` is defined more than once", m.name),
            ));
        }

        if m.dlc > 8 {
            out.push(
                Diagnostic::error(
                    codes::DLC_TOO_LARGE,
                    Span::unknown(),
                    format!(
                        "message `{}` declares DLC {} (classic CAN caps at 8)",
                        m.name, m.dlc
                    ),
                )
                .with_note(
                    "frames longer than 8 bytes need CAN FD, which this model does not cover",
                ),
            );
        }

        lint_signals(m, &mut out);
    }

    out
}

/// The absolute payload bit positions a signal occupies, following the same
/// numbering the codec uses for each byte order.
fn occupied_bits(sig: &Signal) -> Vec<usize> {
    let mut bits = Vec::with_capacity(sig.length as usize);
    match sig.byte_order {
        ByteOrder::LittleEndian => {
            for i in 0..sig.length as usize {
                bits.push(sig.start_bit as usize + i);
            }
        }
        ByteOrder::BigEndian => {
            // Sawtooth: start bit is the MSB, stepping down within each byte.
            let mut byte = sig.start_bit as usize / 8;
            let mut bit = sig.start_bit as usize % 8;
            for _ in 0..sig.length {
                bits.push(byte * 8 + bit);
                if bit == 0 {
                    byte += 1;
                    bit = 7;
                } else {
                    bit -= 1;
                }
            }
        }
    }
    bits
}

fn lint_signals(m: &Message, out: &mut Vec<Diagnostic>) {
    let payload_bits = m.dlc * 8;
    let mut occupancy: HashMap<usize, &str> = HashMap::new();
    for sig in &m.signals {
        let bits = occupied_bits(sig);
        if bits.iter().any(|&b| b >= payload_bits) {
            out.push(Diagnostic::error(
                codes::SIGNAL_PAST_DLC,
                Span::unknown(),
                format!(
                    "signal `{}.{}` extends beyond the {}-byte payload (bits {}..={} of {})",
                    m.name,
                    sig.name,
                    m.dlc,
                    bits.iter().min().copied().unwrap_or(0),
                    bits.iter().max().copied().unwrap_or(0),
                    payload_bits
                ),
            ));
        }
        let mut clashed = false;
        for &b in &bits {
            if let Some(other) = occupancy.insert(b, &sig.name) {
                if other != sig.name && !clashed {
                    clashed = true;
                    out.push(Diagnostic::error(
                        codes::SIGNAL_OVERLAP,
                        Span::unknown(),
                        format!(
                            "signals `{}.{}` and `{}.{other}` occupy overlapping bits",
                            m.name, sig.name, m.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Cross-validate `program` against `db`.
pub fn cross_check(program: &Program, db: &Database) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Resolve every declared message variable to its database message.
    let mut var_msgs: HashMap<&str, Option<&Message>> = HashMap::new();
    for v in &program.variables {
        if let Type::Message(mref) = &v.ty {
            let resolved = match mref {
                MsgRef::Name(n) => {
                    let m = db.message_by_name(n);
                    if m.is_none() {
                        out.push(unknown_name(n, span_at(v.pos, v.name.len()), db));
                    }
                    m
                }
                MsgRef::Id(id) => {
                    let m = db.message_by_id(*id);
                    if m.is_none() {
                        out.push(unknown_id(*id, span_at(v.pos, v.name.len())));
                    }
                    m
                }
                MsgRef::Any => None,
            };
            var_msgs.insert(v.name.as_str(), resolved);
        }
    }

    // Handlers: each must resolve, and no two may resolve to one message.
    let mut handled: HashMap<u32, &MsgRef> = HashMap::new();
    for h in &program.handlers {
        let EventKind::Message(mref) = &h.event else {
            continue;
        };
        let resolved = match mref {
            // A handler may name either a database message or a declared
            // message variable (which aliases one).
            MsgRef::Name(n) => match var_msgs.get(n.as_str()) {
                Some(via_var) => *via_var,
                None => {
                    let m = db.message_by_name(n);
                    if m.is_none() {
                        out.push(unknown_name(n, span_at(h.pos, 2), db));
                    }
                    m
                }
            },
            MsgRef::Id(id) => {
                let m = db.message_by_id(*id);
                if m.is_none() {
                    out.push(unknown_id(*id, span_at(h.pos, 2)));
                }
                m
            }
            MsgRef::Any => None,
        };
        if let Some(m) = resolved {
            if let Some(first) = handled.insert(m.id, mref) {
                out.push(
                    Diagnostic::error(
                        codes::HANDLER_COLLISION,
                        span_at(h.pos, 2),
                        format!(
                            "handler `on message {}` matches database message `{}` already \
                             handled by `on message {}`",
                            msg_ref_text(mref),
                            m.name,
                            msg_ref_text(first)
                        ),
                    )
                    .with_note("only one handler per CAN message ever runs"),
                );
            }
        }
    }

    // Body checks: output() of unresolvable symbolic names, unknown signals.
    for h in &program.handlers {
        let this_msg = match &h.event {
            EventKind::Message(MsgRef::Name(n)) => match var_msgs.get(n.as_str()) {
                Some(via_var) => *via_var,
                None => db.message_by_name(n),
            },
            EventKind::Message(MsgRef::Id(id)) => db.message_by_id(*id),
            _ => None,
        };
        let anchor = span_at(h.pos, 2);
        let mut check = |e: &Expr| check_expr(e, this_msg, &var_msgs, db, anchor, &mut out);
        crate::capl_rules::visit_exprs(&h.body, &mut check);
    }
    for f in &program.functions {
        let anchor = span_at(f.pos, 2);
        let mut check = |e: &Expr| check_expr(e, None, &var_msgs, db, anchor, &mut out);
        crate::capl_rules::visit_exprs(&f.body, &mut check);
    }

    out
}

fn check_expr(
    e: &Expr,
    this_msg: Option<&Message>,
    var_msgs: &HashMap<&str, Option<&Message>>,
    db: &Database,
    anchor: Span,
    out: &mut Vec<Diagnostic>,
) {
    match e {
        // `output(name)` of a bare symbolic name must exist in the database.
        Expr::Call { name, args } if name == "output" => {
            if let Some(Expr::Ident(m)) = args.first() {
                if !var_msgs.contains_key(m.as_str()) && db.message_by_name(m).is_none() {
                    out.push(unknown_name(m, anchor, db));
                }
            }
        }
        // Signal access on `this` or on a resolved message variable.
        Expr::Member { object, member } => {
            let target = match &**object {
                Expr::This => this_msg,
                Expr::Ident(v) => var_msgs.get(v.as_str()).copied().flatten(),
                _ => None,
            };
            if let Some(m) = target {
                if m.signal(member).is_none() && !MESSAGE_SELECTORS.contains(&member.as_str()) {
                    let mut d = Diagnostic::warning(
                        codes::UNKNOWN_SIGNAL,
                        anchor,
                        format!("message `{}` has no signal `{member}`", m.name),
                    );
                    if let Some(close) = nearest(member, m.signals.iter().map(|s| s.name.as_str()))
                    {
                        d = d.with_note(format!("did you mean `{close}`?"));
                    }
                    out.push(d);
                }
            }
        }
        _ => {}
    }
}

fn unknown_name(name: &str, span: Span, db: &Database) -> Diagnostic {
    let mut d = Diagnostic::error(
        codes::UNKNOWN_DB_MESSAGE,
        span,
        format!("message `{name}` is not defined in the database"),
    );
    if let Some(close) = nearest(name, db.messages.iter().map(|m| m.name.as_str())) {
        d = d.with_note(format!("did you mean `{close}`?"));
    }
    d
}

/// Render a handler's message reference the way it appears in source.
fn msg_ref_text(mref: &MsgRef) -> String {
    match mref {
        MsgRef::Name(n) => n.clone(),
        MsgRef::Id(id) => format!("0x{id:x}"),
        MsgRef::Any => "*".to_owned(),
    }
}

fn unknown_id(id: u32, span: Span) -> Diagnostic {
    Diagnostic::error(
        codes::UNKNOWN_DB_ID,
        span,
        format!("CAN id 0x{id:x} is not defined in the database"),
    )
}

/// The candidate within edit distance 2 of `name`, if any (for suggestions).
fn nearest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (edit_distance(name, c), c))
        .filter(|(d, _)| *d > 0 && *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Code;

    const DBC: &str = "BU_: ECU VMG\nBO_ 100 reqSw: 2 VMG\n SG_ cmd : 0|8@1+ (1,0) [0|255] \"\" ECU\nBO_ 101 rptSw: 2 ECU\n SG_ state : 0|8@1+ (1,0) [0|255] \"\" VMG\n";

    fn db() -> Database {
        candb::parse(DBC).unwrap()
    }

    fn cross(src: &str) -> Vec<Diagnostic> {
        cross_check(&capl::parse(src).unwrap(), &db())
    }

    fn has(diags: &[Diagnostic], code: Code) -> bool {
        diags.iter().any(|d| d.code == code)
    }

    #[test]
    fn clean_program_cross_checks_clean() {
        let d = cross(
            "variables { message reqSw a; message rptSw b; }
             on message reqSw { output(b); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unknown_message_name_is_an_error() {
        let d = cross("variables { message reqSws a; }");
        assert!(has(&d, codes::UNKNOWN_DB_MESSAGE), "{d:?}");
        // The typo is close to a real message, so a suggestion is attached.
        assert!(d[0].notes.iter().any(|n| n.contains("reqSw")), "{d:?}");
    }

    #[test]
    fn unknown_raw_id_is_an_error() {
        let d = cross("variables { message 0x999 a; }");
        assert!(has(&d, codes::UNKNOWN_DB_ID), "{d:?}");
    }

    #[test]
    fn handler_for_unknown_message_is_an_error() {
        let d = cross("on message bogus { }");
        assert!(has(&d, codes::UNKNOWN_DB_MESSAGE), "{d:?}");
    }

    #[test]
    fn colliding_handlers_are_an_error() {
        let d = cross(
            "on message reqSw { }
             on message 100 { }",
        );
        assert!(has(&d, codes::HANDLER_COLLISION), "{d:?}");
    }

    #[test]
    fn output_of_unknown_symbolic_name_is_an_error() {
        let d = cross("on start { output(phantom); }");
        assert!(has(&d, codes::UNKNOWN_DB_MESSAGE), "{d:?}");
    }

    #[test]
    fn unknown_signal_access_is_a_warning() {
        let d = cross(
            "variables { message reqSw a; }
             on message reqSw { a.cmdd = 1; }",
        );
        assert!(has(&d, codes::UNKNOWN_SIGNAL), "{d:?}");
    }

    #[test]
    fn this_signal_access_resolves_through_handler() {
        let d = cross("on message reqSw { write(\"%d\", this.cmd); }");
        assert!(d.is_empty(), "{d:?}");
        let d = cross("on message reqSw { write(\"%d\", this.nosig); }");
        assert!(has(&d, codes::UNKNOWN_SIGNAL), "{d:?}");
    }

    #[test]
    fn selector_access_is_clean() {
        let d = cross("variables { message reqSw a; } on start { write(\"%d\", a.dlc); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn db_hygiene_flags_defects() {
        let mut database = db();
        database.messages[0].dlc = 9;
        database.messages[1].id = 100;
        database.messages[1].signals[0].length = 64;
        let d = lint_database(&database);
        assert!(has(&d, codes::DLC_TOO_LARGE), "{d:?}");
        assert!(has(&d, codes::DUPLICATE_DB_ID), "{d:?}");
        assert!(has(&d, codes::SIGNAL_PAST_DLC), "{d:?}");
    }

    #[test]
    fn overlapping_signals_are_flagged() {
        let mut database = db();
        let mut extra = database.messages[0].signals[0].clone();
        extra.name = "cmd2".into();
        extra.start_bit = 4;
        database.messages[0].signals.push(extra);
        let d = lint_database(&database);
        assert!(has(&d, codes::SIGNAL_OVERLAP), "{d:?}");
    }

    #[test]
    fn clean_database_is_clean() {
        assert!(lint_database(&db()).is_empty());
    }
}
