//! The complete catalogue of stable lint codes.
//!
//! Codes are namespaced per pipeline stage — `CAPL0xx` for CAPL program
//! analysis, `DBC1xx` for CAN-database hygiene and CAPL ↔ `.dbc`
//! cross-validation, `CSP2xx` for CSPm structural analysis, `SIM3xx` for
//! fault-plan validation (defined in [`faults::codes`], re-exported here),
//! `ANA3xx` for semantic model analysis (defined in [`diag::ana`],
//! re-exported here). Codes are never renumbered once published in
//! `docs/LINTS.md`; retired codes are not reused.

use diag::Code;

// CAPL frontend diagnostics live with the symbol pass; re-export them here so
// the catalogue is complete from one module.
pub use capl::symbols::{
    DUPLICATE_GLOBAL, DUPLICATE_HANDLER, NOT_A_TIMER, TIMER_CALL_ON_NON_TIMER, TIMER_NEVER_SET,
    UNDECLARED_MESSAGE, UNDECLARED_NAME, UNDECLARED_TIMER, UNKNOWN_FUNCTION,
};

// Fault-plan diagnostics live with the `faults` crate (which emits them);
// re-export them so the catalogue is complete from one module.
pub use faults::codes::{
    BUS_OFF_OVERLAP, CORPUS_EMPTY, CORPUS_LINE_MALFORMED, CORPUS_UNKNOWN_EVENT, CORRUPT_BYTE_RANGE,
    EMPTY_WINDOW, PLAN_PARSE_ERROR, PROBABILITY_RANGE, UNKNOWN_FRAME_ID, UNKNOWN_NODE,
};

// Semantic-analysis diagnostics live with `diag` (the analyzer in `cspm`
// emits them and sits below this crate); re-export them so the catalogue is
// complete from one module.
pub use diag::ana::{
    ANALYSIS_SKIPPED, DEADLOCK_SINK, DIVERGENT_PROCESS, HIDE_DEAD_EVENT, PREDICTED_OVER_BUDGET,
    SYNC_DEAD_EVENT as ANA_SYNC_DEAD_EVENT, SYNC_ONE_SIDED as ANA_SYNC_ONE_SIDED,
    UNREACHABLE_DEFINITION as ANA_UNREACHABLE_DEFINITION,
};

/// `CAPL000` — the CAPL source failed to lex or parse.
pub const CAPL_PARSE_ERROR: Code = Code("CAPL000");
/// `DBC100` — the CAN database failed to parse.
pub const DBC_PARSE_ERROR: Code = Code("DBC100");
/// `CSP200` — the CSPm script failed to lex or parse.
pub const CSP_PARSE_ERROR: Code = Code("CSP200");

/// `CAPL010` — a timer is armed with `setTimer` but has no `on timer` handler.
pub const TIMER_WITHOUT_HANDLER: Code = Code("CAPL010");
/// `CAPL011` — a local variable may be read before it is first assigned.
pub const USE_BEFORE_INIT: Code = Code("CAPL011");
/// `CAPL012` — a local variable is assigned but its value is never read.
pub const DEAD_STORE: Code = Code("CAPL012");
/// `CAPL013` — statements after `return`/`break`/`continue` can never run.
pub const UNREACHABLE_CODE: Code = Code("CAPL013");

/// `DBC101` — a CAPL message reference names a message absent from the `.dbc`.
pub const UNKNOWN_DB_MESSAGE: Code = Code("DBC101");
/// `DBC102` — a CAPL message reference uses a raw CAN id absent from the `.dbc`.
pub const UNKNOWN_DB_ID: Code = Code("DBC102");
/// `DBC103` — two `on message` handlers resolve to the same database message.
pub const HANDLER_COLLISION: Code = Code("DBC103");
/// `DBC104` — a database message declares a DLC larger than 8 bytes.
pub const DLC_TOO_LARGE: Code = Code("DBC104");
/// `DBC105` — two signals of one message occupy overlapping bits.
pub const SIGNAL_OVERLAP: Code = Code("DBC105");
/// `DBC106` — a signal extends beyond the bits implied by the message DLC.
pub const SIGNAL_PAST_DLC: Code = Code("DBC106");
/// `DBC107` — two database messages share a CAN identifier.
pub const DUPLICATE_DB_ID: Code = Code("DBC107");
/// `DBC108` — CAPL accesses a signal that the resolved message does not carry.
pub const UNKNOWN_SIGNAL: Code = Code("DBC108");

/// `CSP201` — a synchronised event only one side of a parallel can perform.
pub const SYNC_ONE_SIDED: Code = Code("CSP201");
/// `CSP202` — a process can recurse without performing an event first.
pub const UNGUARDED_RECURSION: Code = Code("CSP202");
/// `CSP203` — a definition is unreachable from every assertion.
pub const UNREACHABLE_DEFINITION: Code = Code("CSP203");
/// `CSP204` — a synchronised event neither side of a parallel can perform.
pub const SYNC_DEAD_EVENT: Code = Code("CSP204");

/// Every published code with a one-line summary, in catalogue order.
///
/// `docs/LINTS.md` is generated from the same material; a unit test keeps the
/// two in sync by checking the codes listed there.
pub const CATALOGUE: &[(Code, &str)] = &[
    (CAPL_PARSE_ERROR, "CAPL source failed to parse"),
    (DBC_PARSE_ERROR, "CAN database failed to parse"),
    (CSP_PARSE_ERROR, "CSPm script failed to parse"),
    (DUPLICATE_GLOBAL, "global variable declared twice"),
    (UNDECLARED_NAME, "use of an undeclared name"),
    (DUPLICATE_HANDLER, "duplicate handler for one event"),
    (NOT_A_TIMER, "`on timer` over a non-timer variable"),
    (UNDECLARED_TIMER, "`on timer` over an undeclared name"),
    (
        TIMER_CALL_ON_NON_TIMER,
        "setTimer/cancelTimer on a non-timer",
    ),
    (UNKNOWN_FUNCTION, "call to an unknown function"),
    (UNDECLARED_MESSAGE, "output() of an undeclared message"),
    (
        TIMER_NEVER_SET,
        "timer handler exists but timer is never set",
    ),
    (TIMER_WITHOUT_HANDLER, "timer is set but has no handler"),
    (USE_BEFORE_INIT, "local possibly read before initialisation"),
    (DEAD_STORE, "local assigned but never read"),
    (UNREACHABLE_CODE, "statement after return/break/continue"),
    (UNKNOWN_DB_MESSAGE, "message name missing from the database"),
    (UNKNOWN_DB_ID, "raw CAN id missing from the database"),
    (HANDLER_COLLISION, "two handlers match one database message"),
    (DLC_TOO_LARGE, "message DLC exceeds 8 bytes"),
    (SIGNAL_OVERLAP, "signals occupy overlapping bits"),
    (SIGNAL_PAST_DLC, "signal extends beyond the message DLC"),
    (DUPLICATE_DB_ID, "two messages share one CAN id"),
    (UNKNOWN_SIGNAL, "access to a signal the message lacks"),
    (SYNC_ONE_SIDED, "synchronised event only one side performs"),
    (UNGUARDED_RECURSION, "recursion with no intervening event"),
    (
        UNREACHABLE_DEFINITION,
        "definition unreachable from assertions",
    ),
    (SYNC_DEAD_EVENT, "synchronised event neither side performs"),
    (PLAN_PARSE_ERROR, "fault plan failed to parse"),
    (
        UNKNOWN_FRAME_ID,
        "fault plan frame id missing from the database",
    ),
    (BUS_OFF_OVERLAP, "overlapping bus-off windows"),
    (PROBABILITY_RANGE, "trigger probability outside [0, 1]"),
    (EMPTY_WINDOW, "empty time window makes the fault inert"),
    (UNKNOWN_NODE, "fault plan node missing from the database"),
    (
        CORRUPT_BYTE_RANGE,
        "corruption offset beyond the CAN payload",
    ),
    (
        CORPUS_LINE_MALFORMED,
        "trace-corpus JSONL line failed to parse",
    ),
    (
        CORPUS_UNKNOWN_EVENT,
        "corpus trace performs an event the model lacks",
    ),
    (CORPUS_EMPTY, "trace corpus contains no traces"),
    (
        ANALYSIS_SKIPPED,
        "process could not be semantically analysed",
    ),
    (
        ANA_SYNC_ONE_SIDED,
        "synchronised event only one side can ever perform",
    ),
    (
        ANA_SYNC_DEAD_EVENT,
        "synchronised event neither side can ever perform",
    ),
    (HIDE_DEAD_EVENT, "event hidden but never performable"),
    (
        ANA_UNREACHABLE_DEFINITION,
        "definition semantically unreachable from assertions",
    ),
    (
        DIVERGENT_PROCESS,
        "process under a divergence-sensitive assertion can diverge",
    ),
    (
        DEADLOCK_SINK,
        "process under a deadlock-freedom assertion reaches a deadlock sink",
    ),
    (
        PREDICTED_OVER_BUDGET,
        "predicted state space exceeds the exploration budget",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalogue_codes_are_unique_and_well_formed() {
        let mut seen = HashSet::new();
        for (code, summary) in CATALOGUE {
            assert!(seen.insert(code.0), "duplicate code {code}");
            assert!(!summary.is_empty());
            let ok = code.0.starts_with("CAPL")
                || code.0.starts_with("DBC")
                || code.0.starts_with("SIM")
                || code.0.starts_with("CSP")
                || code.0.starts_with("ANA");
            assert!(ok, "code {code} outside the allocated namespaces");
        }
    }
}
