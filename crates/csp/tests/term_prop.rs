//! Property-based equivalence of the hash-consed term arena and the
//! process-tree semantics: for randomly generated processes, the arena's
//! id-based firing rules must produce the same transitions, in the same
//! order, as [`csp::semantics::transitions`], and [`csp::Lts::build`]
//! (which runs on the arena) must match a reference BFS driven by the tree
//! semantics state for state and edge for edge.

use std::collections::HashMap;

use csp::{semantics, Definitions, EventId, EventSet, Label, Lts, Process, RenameMap, TermArena};
use proptest::prelude::*;

fn e(n: usize) -> EventId {
    EventId::from_index(n)
}

/// A random finite process over a 4-event alphabet, covering every operator
/// the arena mirrors: prefixing, both choices, sequencing, interleaving,
/// synchronised parallel, hiding, renaming, interrupt and timeout.
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    let leaf = prop_oneof![
        Just(Process::Stop),
        Just(Process::Skip),
        (0usize..4).prop_map(|i| Process::prefix(e(i), Process::Stop)),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            ((0usize..4), inner.clone()).prop_map(|(i, p)| Process::prefix(e(i), p)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::external_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::internal_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::seq(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::interrupt(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::timeout(p, q)),
            (
                inner.clone(),
                inner.clone(),
                proptest::collection::vec(0usize..4, 0..3)
            )
                .prop_map(|(p, q, sync)| {
                    let sync: EventSet = sync.into_iter().map(e).collect();
                    Process::parallel(sync, p, q)
                }),
            (inner.clone(), proptest::collection::vec(0usize..4, 1..3)).prop_map(|(p, hide)| {
                let hidden: EventSet = hide.into_iter().map(e).collect();
                Process::hide(p, hidden)
            }),
            (
                inner,
                proptest::collection::vec((0usize..4, 0usize..4), 1..3)
            )
                .prop_map(|(p, pairs)| {
                    let mut map = RenameMap::new();
                    for (from, to) in pairs {
                        map.insert(e(from), e(to));
                    }
                    Process::rename(p, map)
                }),
        ]
    })
    .boxed()
}

/// Reference LTS construction driven purely by the tree semantics: BFS with
/// the visited set keyed on structural [`Process`] equality, edges sorted
/// and deduplicated exactly as [`Lts::build`] does.
fn reference_lts(root: &Process, defs: &Definitions) -> (Vec<Process>, Vec<Vec<(Label, usize)>>) {
    let mut states: Vec<Process> = vec![root.clone()];
    let mut index: HashMap<Process, usize> = HashMap::new();
    index.insert(root.clone(), 0);
    let mut out: Vec<Vec<(Label, usize)>> = vec![Vec::new()];

    let mut frontier = 0usize;
    while frontier < states.len() {
        let succs = semantics::transitions(&states[frontier].clone(), defs).expect("finite");
        let mut edges = Vec::with_capacity(succs.len());
        for (label, succ) in succs {
            let id = match index.get(&succ) {
                Some(&id) => id,
                None => {
                    let id = states.len();
                    index.insert(succ.clone(), id);
                    states.push(succ);
                    out.push(Vec::new());
                    id
                }
            };
            edges.push((label, id));
        }
        edges.sort_unstable_by_key(|a| (a.0, a.1));
        edges.dedup();
        out[frontier] = edges;
        frontier += 1;
    }
    (states, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arena_transitions_match_tree_semantics_in_order(p in arb_process(4)) {
        let defs = Definitions::new();
        let tree = semantics::transitions(&p, &defs).expect("finite process");

        let mut arena = TermArena::new();
        let id = arena.intern(&p);
        let arena_succs = arena.transitions(id, &defs).expect("finite process");

        prop_assert_eq!(tree.len(), arena_succs.len());
        for ((tl, tp), (al, at)) in tree.iter().zip(&arena_succs) {
            prop_assert_eq!(tl, al);
            let materialised = arena.process_of(*at);
            prop_assert_eq!(tp, materialised.as_ref());
        }
    }

    #[test]
    fn interning_round_trips_the_process(p in arb_process(4)) {
        let mut arena = TermArena::new();
        let id = arena.intern(&p);
        let materialised = arena.process_of(id);
        prop_assert_eq!(materialised.as_ref(), &p);
        // Re-interning the materialised process lands on the same id.
        let back = materialised.as_ref().clone();
        prop_assert_eq!(arena.intern(&back), id);
    }

    #[test]
    fn lts_build_matches_reference_bfs(p in arb_process(4)) {
        let defs = Definitions::new();
        let (ref_states, ref_edges) = reference_lts(&p, &defs);
        let lts = Lts::build(p, &defs, 100_000).expect("finite process");

        prop_assert_eq!(lts.state_count(), ref_states.len());
        for (i, expected) in ref_states.iter().enumerate() {
            let s = csp::StateId::from_index(i);
            prop_assert_eq!(lts.state(s), expected);
            let got: Vec<(Label, usize)> = lts
                .edges(s)
                .iter()
                .map(|&(l, t)| (l, t.index()))
                .collect();
            prop_assert_eq!(&got, &ref_edges[i]);
        }
    }
}
