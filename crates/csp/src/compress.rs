//! Strong-bisimulation compression of labelled transition systems.
//!
//! FDR applies compression functions (`sbisim`, `normal`, …) to component
//! processes before composing them, which is how it scales to industrial
//! models. This module implements the strong-bisimulation quotient by
//! signature-based partition refinement: states are repeatedly split by the
//! multiset of `(label, target-block)` pairs they can reach until the
//! partition stabilises, then one representative per block is kept.
//!
//! Strong bisimilarity preserves every property this workspace checks
//! (traces, stable failures, deadlock, divergence, determinism), so a
//! compressed LTS can be used anywhere the original could.

use std::collections::{BTreeSet, HashMap};

use crate::alphabet::Label;
use crate::lts::{Lts, StateId};

/// The result of compressing an [`Lts`]: the quotient system plus the
/// block index of every original state.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// The quotient LTS (one state per bisimulation class).
    pub lts: Lts,
    /// For each original state, the quotient state it maps to.
    pub class_of: Vec<StateId>,
}

/// Compute the strong-bisimulation quotient of `lts`.
///
/// The returned LTS has one state per equivalence class; its initial state
/// is the class of the original initial state. Process terms on quotient
/// states are taken from an arbitrary class representative.
pub fn quotient_bisim(lts: &Lts) -> Compressed {
    // Re-blocking key: (old block, signature).
    type SigKey<'a> = (usize, &'a BTreeSet<(Label, usize)>);

    let n = lts.state_count();
    // Start with one block: all states together.
    let mut block_of: Vec<usize> = vec![0; n];
    let mut block_count = 1usize;

    loop {
        // Signature of a state: the set of (label, target block) pairs.
        let mut signatures: Vec<BTreeSet<(Label, usize)>> = Vec::with_capacity(n);
        for s in lts.state_ids() {
            let sig: BTreeSet<(Label, usize)> = lts
                .edges(s)
                .iter()
                .map(|&(label, target)| (label, block_of[target.index()]))
                .collect();
            signatures.push(sig);
        }
        // Re-block by (old block, signature).
        let mut index: HashMap<SigKey<'_>, usize> = HashMap::new();
        let mut next_block_of = vec![0usize; n];
        let mut next_count = 0usize;
        for i in 0..n {
            let key = (block_of[i], &signatures[i]);
            let block = *index.entry(key).or_insert_with(|| {
                let b = next_count;
                next_count += 1;
                b
            });
            next_block_of[i] = block;
        }
        let stable = next_count == block_count;
        block_of = next_block_of;
        block_count = next_count;
        if stable {
            break;
        }
    }

    // Build the quotient: representative per block, edges to target blocks.
    let mut representative: Vec<Option<StateId>> = vec![None; block_count];
    for s in lts.state_ids() {
        let b = block_of[s.index()];
        if representative[b].is_none() {
            representative[b] = Some(s);
        }
    }
    let init_block = block_of[lts.initial().index()];

    // Quotient blocks must be renumbered so the initial class is state 0.
    let mut renumber: Vec<Option<usize>> = vec![None; block_count];
    renumber[init_block] = Some(0);
    let mut next = 1usize;
    for slot in &mut renumber {
        if slot.is_none() {
            *slot = Some(next);
            next += 1;
        }
    }

    let mut states = vec![None; block_count];
    let mut transitions: Vec<Vec<(Label, StateId)>> = vec![Vec::new(); block_count];
    for b in 0..block_count {
        let rep = representative[b].expect("every block has a member");
        let q = renumber[b].expect("renumbered");
        states[q] = Some(lts.state(rep).clone());
        let mut edges: Vec<(Label, StateId)> = lts
            .edges(rep)
            .iter()
            .map(|&(label, target)| {
                let tb = renumber[block_of[target.index()]].expect("renumbered");
                (label, StateId::from_index(tb))
            })
            .collect();
        edges.sort_unstable_by_key(|a| (a.0, a.1));
        edges.dedup();
        transitions[q] = edges;
    }

    let class_of = block_of
        .iter()
        .map(|&b| StateId::from_index(renumber[b].expect("renumbered")))
        .collect();

    Compressed {
        lts: Lts::from_parts(
            states
                .into_iter()
                .map(|s| s.expect("every block filled"))
                .collect(),
            transitions,
        ),
        class_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::EventId;
    use crate::process::{Definitions, Process};
    use crate::traces::traces_upto;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    fn lts_of(p: Process) -> Lts {
        Lts::build(p, &Definitions::new(), 100_000).unwrap()
    }

    #[test]
    fn structurally_distinct_but_bisimilar_states_collapse() {
        // After `a`, the two residues are `b -> STOP` and
        // `(b -> STOP) [] STOP` — different terms (so the LTS keeps both),
        // but strongly bisimilar.
        use std::sync::Arc;
        let residue_plain = Process::prefix(e(1), Process::Stop);
        let residue_padded = Process::ExternalChoice(vec![
            Arc::new(Process::prefix(e(1), Process::Stop)),
            Arc::new(Process::Stop),
        ]);
        let p = Process::external_choice(
            Process::prefix(e(0), residue_plain),
            Process::prefix(e(2), residue_padded),
        );
        let lts = lts_of(p);
        let compressed = quotient_bisim(&lts);
        assert!(
            compressed.lts.state_count() < lts.state_count(),
            "{} vs {}",
            compressed.lts.state_count(),
            lts.state_count()
        );
        assert_eq!(
            traces_upto(&lts, 6),
            traces_upto(&compressed.lts, 6),
            "compression must preserve traces"
        );
    }

    #[test]
    fn interleaving_diamond_compresses() {
        // (a -> STOP) ||| (a -> STOP): the two mid states (done-left,
        // done-right) are bisimilar.
        let p = Process::interleave(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(0), Process::Stop),
        );
        let lts = lts_of(p);
        assert_eq!(lts.state_count(), 4);
        let compressed = quotient_bisim(&lts);
        assert_eq!(compressed.lts.state_count(), 3);
        assert_eq!(traces_upto(&lts, 6), traces_upto(&compressed.lts, 6));
    }

    #[test]
    fn deterministic_chain_is_already_minimal() {
        let p = Process::prefix_chain([e(0), e(1), e(2)], Process::Stop);
        let lts = lts_of(p);
        let compressed = quotient_bisim(&lts);
        assert_eq!(compressed.lts.state_count(), lts.state_count());
    }

    #[test]
    fn class_map_is_consistent_with_edges() {
        let p = Process::interleave(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(0), Process::Stop),
        );
        let lts = lts_of(p);
        let compressed = quotient_bisim(&lts);
        assert_eq!(compressed.class_of.len(), lts.state_count());
        // The initial state maps to the quotient initial state.
        assert_eq!(
            compressed.class_of[lts.initial().index()],
            compressed.lts.initial()
        );
        // Every original edge exists between the mapped classes.
        for s in lts.state_ids() {
            for &(label, target) in lts.edges(s) {
                let qs = compressed.class_of[s.index()];
                let qt = compressed.class_of[target.index()];
                assert!(
                    compressed.lts.edges(qs).contains(&(label, qt)),
                    "missing quotient edge for {label:?}"
                );
            }
        }
    }

    #[test]
    fn distinguishable_states_stay_apart() {
        // a -> b -> STOP vs a -> c -> STOP: the post-a states differ.
        let p = Process::external_choice(
            Process::prefix(e(0), Process::prefix(e(1), Process::Stop)),
            Process::prefix(e(0), Process::prefix(e(2), Process::Stop)),
        );
        let lts = lts_of(p);
        let compressed = quotient_bisim(&lts);
        assert_eq!(traces_upto(&lts, 6), traces_upto(&compressed.lts, 6));
    }

    #[test]
    fn tau_structure_is_respected() {
        // Strong bisimulation does not erase τ: an internal choice stays
        // distinguishable from its resolved branches.
        let p = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let lts = lts_of(p);
        let compressed = quotient_bisim(&lts);
        assert_eq!(traces_upto(&lts, 6), traces_upto(&compressed.lts, 6));
        // initial (unstable) + two resolved + STOP-class
        assert_eq!(compressed.lts.state_count(), 4);
    }
}
