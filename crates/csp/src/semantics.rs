//! Structural operational semantics: the single-step firing rules.
//!
//! [`transitions`] computes every `(label, successor)` pair a process term can
//! perform, following the rules in Roscoe, *Understanding Concurrent Systems*:
//!
//! * `SKIP --✓--> Ω`
//! * `(e -> P) --e--> P`
//! * external choice: `τ` moves are promoted without resolving the choice,
//!   visible events and `✓` resolve it;
//! * internal choice: one `τ` per operand;
//! * `P ; Q`: `P`'s `✓` becomes a `τ` into `Q`;
//! * `P [|A|] Q`: events in `A` synchronise, others interleave, `✓` is
//!   distributed (both sides must be able to terminate);
//! * `P \ A`: events in `A` become `τ`;
//! * `P[[R]]`: visible events are renamed;
//! * `P /\ Q` (interrupt): `P` proceeds, any visible action of `Q` takes
//!   over; `P`'s `✓` ends the whole process;
//! * `P [> Q` (timeout): a `τ` into `Q` is always available, `P`'s visible
//!   actions resolve the choice in `P`'s favour.

use crate::alphabet::Label;
use crate::error::CspError;
use crate::process::{Definitions, Process};
use std::sync::Arc;

/// Maximum number of `Var` unfoldings along one derivation before recursion
/// is deemed unguarded (e.g. `P = P` or `P = P [] Q`).
pub(crate) const MAX_UNFOLD_DEPTH: usize = 128;

/// Compute all single-step transitions of `p`.
///
/// # Errors
///
/// * [`CspError::UndefinedProcess`] if a referenced definition has no body.
/// * [`CspError::UnguardedRecursion`] if unfolding definitions never reaches
///   an event (e.g. `P = P`).
pub fn transitions(p: &Process, defs: &Definitions) -> Result<Vec<(Label, Process)>, CspError> {
    transitions_at(p, defs, 0)
}

fn transitions_at(
    p: &Process,
    defs: &Definitions,
    depth: usize,
) -> Result<Vec<(Label, Process)>, CspError> {
    match p {
        Process::Stop | Process::Omega => Ok(Vec::new()),
        Process::Skip => Ok(vec![(Label::Tick, Process::Omega)]),
        Process::Prefix(e, rest) => Ok(vec![(Label::Event(*e), rest.as_ref().clone())]),
        Process::ExternalChoice(children) => {
            let mut out = Vec::new();
            for (i, child) in children.iter().enumerate() {
                for (label, succ) in transitions_at(child, defs, depth)? {
                    if label.is_tau() {
                        // τ does not resolve the choice.
                        let mut next = children.clone();
                        next[i] = Arc::new(succ);
                        out.push((Label::Tau, Process::ExternalChoice(next)));
                    } else {
                        out.push((label, succ));
                    }
                }
            }
            Ok(out)
        }
        Process::InternalChoice(children) => Ok(children
            .iter()
            .map(|c| (Label::Tau, c.as_ref().clone()))
            .collect()),
        Process::Seq(first, second) => {
            let mut out = Vec::new();
            for (label, succ) in transitions_at(first, defs, depth)? {
                if label.is_tick() {
                    out.push((Label::Tau, second.as_ref().clone()));
                } else {
                    out.push((label, Process::Seq(Arc::new(succ), second.clone())));
                }
            }
            Ok(out)
        }
        Process::Parallel { sync, left, right } => {
            let lt = transitions_at(left, defs, depth)?;
            let rt = transitions_at(right, defs, depth)?;
            let mut out = Vec::new();
            // Independent moves of the left side.
            for (label, succ) in &lt {
                let independent = match label {
                    Label::Tau => true,
                    Label::Tick => false,
                    Label::Event(e) => !sync.contains(*e),
                };
                if independent {
                    out.push((
                        *label,
                        Process::Parallel {
                            sync: sync.clone(),
                            left: Arc::new(succ.clone()),
                            right: right.clone(),
                        },
                    ));
                }
            }
            // Independent moves of the right side.
            for (label, succ) in &rt {
                let independent = match label {
                    Label::Tau => true,
                    Label::Tick => false,
                    Label::Event(e) => !sync.contains(*e),
                };
                if independent {
                    out.push((
                        *label,
                        Process::Parallel {
                            sync: sync.clone(),
                            left: left.clone(),
                            right: Arc::new(succ.clone()),
                        },
                    ));
                }
            }
            // Synchronised moves.
            for (ll, ls) in &lt {
                let Label::Event(e) = ll else { continue };
                if !sync.contains(*e) {
                    continue;
                }
                for (rl, rs) in &rt {
                    if rl == ll {
                        out.push((
                            *ll,
                            Process::Parallel {
                                sync: sync.clone(),
                                left: Arc::new(ls.clone()),
                                right: Arc::new(rs.clone()),
                            },
                        ));
                    }
                }
            }
            // Distributed termination: both sides must offer ✓.
            let l_tick = lt.iter().any(|(l, _)| l.is_tick());
            let r_tick = rt.iter().any(|(l, _)| l.is_tick());
            if l_tick && r_tick {
                out.push((Label::Tick, Process::Omega));
            }
            Ok(out)
        }
        Process::Hide(inner, hidden) => {
            let mut out = Vec::new();
            for (label, succ) in transitions_at(inner, defs, depth)? {
                // ✓ ends the process: the residue is Ω itself, not Ω still
                // wrapped in the hiding operator.
                if label.is_tick() {
                    out.push((Label::Tick, Process::Omega));
                    continue;
                }
                let new_label = match label {
                    Label::Event(e) if hidden.contains(e) => Label::Tau,
                    other => other,
                };
                // Collapse nested hiding so that recursion through a hiding
                // operator (`P = (a -> P) \ A`) reaches a fixed point
                // instead of growing a new layer per unfolding.
                let next = match succ {
                    Process::Hide(inner, inner_hidden) => {
                        Process::Hide(inner, Arc::new(hidden.union(&inner_hidden)))
                    }
                    other => Process::Hide(Arc::new(other), hidden.clone()),
                };
                out.push((new_label, next));
            }
            Ok(out)
        }
        Process::Rename(inner, map) => {
            let mut out = Vec::new();
            for (label, succ) in transitions_at(inner, defs, depth)? {
                if label.is_tick() {
                    out.push((Label::Tick, Process::Omega));
                    continue;
                }
                let new_label = match label {
                    Label::Event(e) => Label::Event(map.apply(e)),
                    other => other,
                };
                // Collapse nested renaming (inner first, then outer).
                let next = match succ {
                    Process::Rename(inner, inner_map) => {
                        Process::Rename(inner, Arc::new(inner_map.then(map)))
                    }
                    other => Process::Rename(Arc::new(other), map.clone()),
                };
                out.push((new_label, next));
            }
            Ok(out)
        }
        Process::Interrupt(left, right) => {
            let mut out = Vec::new();
            for (label, succ) in transitions_at(left, defs, depth)? {
                if label.is_tick() {
                    out.push((Label::Tick, Process::Omega));
                } else {
                    out.push((label, Process::Interrupt(Arc::new(succ), right.clone())));
                }
            }
            for (label, succ) in transitions_at(right, defs, depth)? {
                if label.is_tau() {
                    // τ on the interrupting side does not resolve it.
                    out.push((Label::Tau, Process::Interrupt(left.clone(), Arc::new(succ))));
                } else {
                    out.push((label, succ));
                }
            }
            Ok(out)
        }
        Process::Timeout(left, right) => {
            let mut out = Vec::new();
            for (label, succ) in transitions_at(left, defs, depth)? {
                match label {
                    Label::Tau => {
                        out.push((Label::Tau, Process::Timeout(Arc::new(succ), right.clone())));
                    }
                    // A visible action (or ✓) of P resolves in P's favour.
                    other => out.push((other, succ)),
                }
            }
            // The timeout itself.
            out.push((Label::Tau, right.as_ref().clone()));
            Ok(out)
        }
        Process::Var(d) => {
            // The check lives here (not at the top of the function) so the
            // error can name the definition whose unfolding never reached
            // an event.
            if depth >= MAX_UNFOLD_DEPTH {
                return Err(CspError::UnguardedRecursion {
                    depth,
                    name: defs.name(*d).to_owned(),
                });
            }
            let body = defs.body(*d)?;
            transitions_at(body, defs, depth + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{EventId, EventSet, RenameMap};

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    fn labels(p: &Process, defs: &Definitions) -> Vec<Label> {
        transitions(p, defs)
            .unwrap()
            .into_iter()
            .map(|(l, _)| l)
            .collect()
    }

    #[test]
    fn stop_has_no_transitions() {
        assert!(labels(&Process::Stop, &Definitions::new()).is_empty());
    }

    #[test]
    fn skip_ticks_to_omega() {
        let ts = transitions(&Process::Skip, &Definitions::new()).unwrap();
        assert_eq!(ts, vec![(Label::Tick, Process::Omega)]);
    }

    #[test]
    fn prefix_fires_its_event() {
        let p = Process::prefix(e(0), Process::Stop);
        let ts = transitions(&p, &Definitions::new()).unwrap();
        assert_eq!(ts, vec![(Label::Event(e(0)), Process::Stop)]);
    }

    #[test]
    fn external_choice_offers_both() {
        let p = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let ls = labels(&p, &Definitions::new());
        assert!(ls.contains(&Label::Event(e(0))));
        assert!(ls.contains(&Label::Event(e(1))));
        assert_eq!(ls.len(), 2);
    }

    #[test]
    fn external_choice_tau_does_not_resolve() {
        // (a -> STOP |~| b -> STOP) [] c -> STOP:
        // the τ from the internal choice must keep the external choice intact.
        let inner = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let p = Process::external_choice(inner, Process::prefix(e(2), Process::Stop));
        let ts = transitions(&p, &Definitions::new()).unwrap();
        let tau_succs: Vec<&Process> = ts
            .iter()
            .filter(|(l, _)| l.is_tau())
            .map(|(_, s)| s)
            .collect();
        assert_eq!(tau_succs.len(), 2);
        for succ in tau_succs {
            // Each τ successor must still offer c.
            let ls = labels(succ, &Definitions::new());
            assert!(ls.contains(&Label::Event(e(2))), "choice was resolved by τ");
        }
    }

    #[test]
    fn internal_choice_is_all_taus() {
        let p = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let ls = labels(&p, &Definitions::new());
        assert_eq!(ls, vec![Label::Tau, Label::Tau]);
    }

    #[test]
    fn seq_converts_tick_to_tau() {
        let p = Process::seq(Process::Skip, Process::prefix(e(0), Process::Stop));
        let ts = transitions(&p, &Definitions::new()).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(ts[0].0.is_tau());
        assert_eq!(ts[0].1, Process::prefix(e(0), Process::Stop));
    }

    #[test]
    fn parallel_synchronises_on_shared_event() {
        let sync = EventSet::singleton(e(0));
        let p = Process::parallel(
            sync,
            Process::prefix(e(0), Process::Skip),
            Process::prefix(e(0), Process::Skip),
        );
        let ls = labels(&p, &Definitions::new());
        assert_eq!(ls, vec![Label::Event(e(0))]);
    }

    #[test]
    fn parallel_blocks_unmatched_sync_event() {
        let sync = EventSet::singleton(e(0));
        let p = Process::parallel(
            sync,
            Process::prefix(e(0), Process::Skip),
            Process::prefix(e(1), Process::Skip),
        );
        let ls = labels(&p, &Definitions::new());
        // Only the right side's independent event may fire.
        assert_eq!(ls, vec![Label::Event(e(1))]);
    }

    #[test]
    fn interleave_allows_both_orders() {
        let p = Process::interleave(
            Process::prefix(e(0), Process::Skip),
            Process::prefix(e(1), Process::Skip),
        );
        let ls = labels(&p, &Definitions::new());
        assert!(ls.contains(&Label::Event(e(0))));
        assert!(ls.contains(&Label::Event(e(1))));
    }

    #[test]
    fn parallel_termination_is_distributed() {
        // SKIP ||| (a -> SKIP): may not tick until the right side is done.
        let p = Process::interleave(Process::Skip, Process::prefix(e(0), Process::Skip));
        let defs = Definitions::new();
        let ts = transitions(&p, &defs).unwrap();
        assert!(ts.iter().all(|(l, _)| !l.is_tick()));
        let (_, after_a) = ts
            .iter()
            .find(|(l, _)| *l == Label::Event(e(0)))
            .expect("a should be available");
        let ts2 = transitions(after_a, &defs).unwrap();
        assert!(ts2.iter().any(|(l, _)| l.is_tick()));
    }

    #[test]
    fn hide_turns_events_into_tau() {
        let p = Process::hide(
            Process::prefix(e(0), Process::prefix(e(1), Process::Stop)),
            EventSet::singleton(e(0)),
        );
        let ts = transitions(&p, &Definitions::new()).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(ts[0].0.is_tau());
    }

    #[test]
    fn rename_maps_visible_events() {
        let mut map = RenameMap::new();
        map.insert(e(0), e(7));
        let p = Process::rename(Process::prefix(e(0), Process::Stop), map);
        let ls = labels(&p, &Definitions::new());
        assert_eq!(ls, vec![Label::Event(e(7))]);
    }

    #[test]
    fn var_unfolds_definition() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let ts = transitions(&Process::var(d), &defs).unwrap();
        assert_eq!(ts, vec![(Label::Event(e(0)), Process::var(d))]);
    }

    #[test]
    fn unguarded_recursion_is_detected() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::var(d));
        let err = transitions(&Process::var(d), &defs).unwrap_err();
        assert!(matches!(err, CspError::UnguardedRecursion { .. }));
    }

    #[test]
    fn unguarded_recursion_names_the_definition() {
        // Mutual recursion `LOOP = BACK`, `BACK = LOOP`: the error names the
        // definition at the depth limit, and the rendered diagnostic carries it.
        let mut defs = Definitions::new();
        let a = defs.declare("LOOP");
        let b = defs.declare("BACK");
        defs.define(a, Process::var(b));
        defs.define(b, Process::var(a));
        let err = transitions(&Process::var(a), &defs).unwrap_err();
        let CspError::UnguardedRecursion { name, depth } = &err else {
            panic!("expected UnguardedRecursion, got {err:?}");
        };
        assert!(name == "LOOP" || name == "BACK", "unexpected name {name}");
        assert_eq!(*depth, 128);
        let rendered = err.to_string();
        assert!(rendered.contains(name.as_str()), "{rendered}");
    }

    #[test]
    fn undefined_process_is_an_error() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        let err = transitions(&Process::var(d), &defs).unwrap_err();
        assert!(matches!(err, CspError::UndefinedProcess { .. }));
    }
}

#[cfg(test)]
mod interrupt_timeout_tests {
    use super::*;
    use crate::alphabet::EventId;
    use crate::laws::bounded_traces;
    use crate::traces::Trace;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn interrupt_allows_takeover_at_any_point() {
        // (a -> b -> STOP) /\ (k -> STOP): k may fire before a, between a
        // and b, or after b.
        let defs = Definitions::new();
        let p = Process::interrupt(
            Process::prefix_chain([e(0), e(1)], Process::Stop),
            Process::prefix(e(9), Process::Stop),
        );
        let ts = bounded_traces(&p, &defs, 6, 10_000).unwrap();
        assert!(ts.contains(&Trace::from_events([e(9)])));
        assert!(ts.contains(&Trace::from_events([e(0), e(9)])));
        assert!(ts.contains(&Trace::from_events([e(0), e(1), e(9)])));
        assert!(ts.contains(&Trace::from_events([e(0), e(1)])));
        // After the takeover, P is abandoned.
        assert!(!ts.contains(&Trace::from_events([e(9), e(0)])));
    }

    #[test]
    fn interrupt_tick_ends_everything() {
        let defs = Definitions::new();
        let p = Process::interrupt(Process::Skip, Process::prefix(e(9), Process::Stop));
        let lts = crate::lts::Lts::build(p, &defs, 100).unwrap();
        // Tick leads to Ω with no interrupt wrapper left.
        let tick_target = lts
            .edges(lts.initial())
            .iter()
            .find(|(l, _)| l.is_tick())
            .map(|&(_, t)| t)
            .expect("tick available");
        assert_eq!(lts.state(tick_target), &Process::Omega);
    }

    #[test]
    fn timeout_traces_are_the_union() {
        // traces(P [> Q) = traces(P) ∪ traces(Q)
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::Stop);
        let q = Process::prefix(e(1), Process::Stop);
        let t = Process::timeout(p.clone(), q.clone());
        let tp = bounded_traces(&p, &defs, 6, 10_000).unwrap();
        let tq = bounded_traces(&q, &defs, 6, 10_000).unwrap();
        let tt = bounded_traces(&t, &defs, 6, 10_000).unwrap();
        let union: std::collections::BTreeSet<_> = tp.union(&tq).cloned().collect();
        assert_eq!(tt, union);
    }

    #[test]
    fn timeout_may_refuse_p_after_the_timeout() {
        // In the failures model P [> Q may refuse P's initials (after the
        // internal timeout): its normal form has an acceptance without e0.
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::Stop);
        let q = Process::prefix(e(1), Process::Stop);
        let t = Process::timeout(p, q);
        let lts = crate::lts::Lts::build(t, &defs, 100).unwrap();
        // At least one stable state refuses e0 (the post-timeout state).
        let stable_refusing_e0 = lts.state_ids().any(|s| {
            let edges = lts.edges(s);
            !edges.is_empty()
                && edges.iter().all(|(l, _)| !l.is_tau())
                && edges.iter().all(|(l, _)| l.event() != Some(e(0)))
        });
        assert!(stable_refusing_e0);
    }
}
