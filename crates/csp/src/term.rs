//! Hash-consed process terms: structural sharing with O(1) equality.
//!
//! [`Lts::build`](crate::lts::Lts::build) historically keyed its visited set
//! by whole [`Process`] trees, re-hashing every subtree each time a successor
//! was looked up. A [`TermArena`] interns each distinct subterm exactly once
//! and hands out a small copyable [`TermId`], so
//!
//! * equality and hashing of states are single word comparisons,
//! * structurally shared subterms are stored once, and
//! * the firing rules ([`TermArena::transitions`]) return successor *ids*
//!   instead of cloned trees.
//!
//! The firing rules here mirror [`crate::semantics::transitions`] arm for
//! arm, including the order in which successors are emitted; the explicit
//! LTS built over ids is therefore state-for-state identical (numbering and
//! edge lists included) to one built over raw `Process` trees. The property
//! tests in `tests/term_prop.rs` pin this down.
//!
//! An arena memoises the bodies of named definitions by [`DefId`], so one
//! arena is only meaningful for one [`Definitions`] table. Callers that
//! share an arena across many builds (e.g. `fdrlite`'s model store) must
//! keep that pairing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::alphabet::{EventId, EventSet, Label, RenameMap};
use crate::error::CspError;
use crate::process::{DefId, Definitions, Process};
use crate::semantics::MAX_UNFOLD_DEPTH;

/// Handle to a hash-consed term inside a [`TermArena`].
///
/// Two ids from the same arena are equal exactly when the terms they denote
/// are structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// Raw index of this term within its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to an interned [`EventSet`] inside a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetId(u32);

impl SetId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to an interned [`RenameMap`] inside a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MapId(u32);

impl MapId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the hash-consed syntax tree. Children are [`TermId`]s and
/// event sets / renamings are interned by value, so equality and hashing
/// touch only a handful of words regardless of how deep the term is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Deadlock.
    Stop,
    /// Successful termination.
    Skip,
    /// The terminated process.
    Omega,
    /// Event prefix `e -> P`.
    Prefix(EventId, TermId),
    /// External choice.
    ExternalChoice(Vec<TermId>),
    /// Internal choice.
    InternalChoice(Vec<TermId>),
    /// Sequential composition.
    Seq(TermId, TermId),
    /// Generalised parallel.
    Parallel {
        /// The synchronisation set.
        sync: SetId,
        /// Left operand.
        left: TermId,
        /// Right operand.
        right: TermId,
    },
    /// Hiding.
    Hide(TermId, SetId),
    /// Functional renaming.
    Rename(TermId, MapId),
    /// Interrupt.
    Interrupt(TermId, TermId),
    /// Timeout (sliding choice).
    Timeout(TermId, TermId),
    /// Reference to a named definition.
    Var(DefId),
}

/// An interning arena for process terms.
///
/// See the [module docs](self) for the contract; the important points are
/// that ids are only comparable within one arena and that the arena is tied
/// to the [`Definitions`] table whose bodies it has memoised.
#[derive(Debug, Default)]
pub struct TermArena {
    terms: Vec<Term>,
    term_index: HashMap<Term, TermId>,
    sets: Vec<Arc<EventSet>>,
    set_index: HashMap<Arc<EventSet>, SetId>,
    maps: Vec<Arc<RenameMap>>,
    map_index: HashMap<Arc<RenameMap>, MapId>,
    /// Memoised materialisation of each term back into a `Process`.
    procs: Vec<Option<Arc<Process>>>,
    /// Memoised interning of definition bodies, indexed by `DefId`.
    def_terms: Vec<Option<TermId>>,
}

impl TermArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The node a term id stands for.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// The event set an interned [`SetId`] stands for.
    pub fn set(&self, id: SetId) -> &EventSet {
        &self.sets[id.index()]
    }

    /// The renaming an interned [`MapId`] stands for.
    pub fn map(&self, id: MapId) -> &RenameMap {
        &self.maps[id.index()]
    }

    /// Intern a node, returning the id of the structurally equal term.
    fn mk(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.term_index.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.term_index.insert(t, id);
        self.procs.push(None);
        id
    }

    fn intern_set(&mut self, s: &Arc<EventSet>) -> SetId {
        if let Some(&id) = self.set_index.get(s.as_ref()) {
            return id;
        }
        let id = SetId(self.sets.len() as u32);
        self.sets.push(Arc::clone(s));
        self.set_index.insert(Arc::clone(s), id);
        id
    }

    fn intern_map(&mut self, m: &Arc<RenameMap>) -> MapId {
        if let Some(&id) = self.map_index.get(m.as_ref()) {
            return id;
        }
        let id = MapId(self.maps.len() as u32);
        self.maps.push(Arc::clone(m));
        self.map_index.insert(Arc::clone(m), id);
        id
    }

    /// Intern a whole process tree, sharing every already-known subterm.
    pub fn intern(&mut self, p: &Process) -> TermId {
        let t = match p {
            Process::Stop => Term::Stop,
            Process::Skip => Term::Skip,
            Process::Omega => Term::Omega,
            Process::Prefix(e, rest) => Term::Prefix(*e, self.intern(rest)),
            Process::ExternalChoice(children) => {
                Term::ExternalChoice(children.iter().map(|c| self.intern(c)).collect())
            }
            Process::InternalChoice(children) => {
                Term::InternalChoice(children.iter().map(|c| self.intern(c)).collect())
            }
            Process::Seq(first, second) => Term::Seq(self.intern(first), self.intern(second)),
            Process::Parallel { sync, left, right } => {
                let sync = self.intern_set(sync);
                Term::Parallel {
                    sync,
                    left: self.intern(left),
                    right: self.intern(right),
                }
            }
            Process::Hide(inner, hidden) => {
                let hidden = self.intern_set(hidden);
                Term::Hide(self.intern(inner), hidden)
            }
            Process::Rename(inner, map) => {
                let map = self.intern_map(map);
                Term::Rename(self.intern(inner), map)
            }
            Process::Interrupt(left, right) => {
                Term::Interrupt(self.intern(left), self.intern(right))
            }
            Process::Timeout(left, right) => Term::Timeout(self.intern(left), self.intern(right)),
            Process::Var(d) => Term::Var(*d),
        };
        self.mk(t)
    }

    /// Materialise a term back into a `Process` tree, memoised per id so
    /// shared subterms come back as shared [`Arc`]s.
    pub fn process_of(&mut self, id: TermId) -> Arc<Process> {
        if let Some(p) = &self.procs[id.index()] {
            return Arc::clone(p);
        }
        let term = self.terms[id.index()].clone();
        let p = match term {
            Term::Stop => Process::Stop,
            Term::Skip => Process::Skip,
            Term::Omega => Process::Omega,
            Term::Prefix(e, rest) => Process::Prefix(e, self.process_of(rest)),
            Term::ExternalChoice(children) => {
                Process::ExternalChoice(children.into_iter().map(|c| self.process_of(c)).collect())
            }
            Term::InternalChoice(children) => {
                Process::InternalChoice(children.into_iter().map(|c| self.process_of(c)).collect())
            }
            Term::Seq(first, second) => {
                Process::Seq(self.process_of(first), self.process_of(second))
            }
            Term::Parallel { sync, left, right } => {
                let sync = Arc::clone(&self.sets[sync.index()]);
                Process::Parallel {
                    sync,
                    left: self.process_of(left),
                    right: self.process_of(right),
                }
            }
            Term::Hide(inner, hidden) => {
                let hidden = Arc::clone(&self.sets[hidden.index()]);
                Process::Hide(self.process_of(inner), hidden)
            }
            Term::Rename(inner, map) => {
                let map = Arc::clone(&self.maps[map.index()]);
                Process::Rename(self.process_of(inner), map)
            }
            Term::Interrupt(left, right) => {
                Process::Interrupt(self.process_of(left), self.process_of(right))
            }
            Term::Timeout(left, right) => {
                Process::Timeout(self.process_of(left), self.process_of(right))
            }
            Term::Var(d) => Process::Var(d),
        };
        let arc = Arc::new(p);
        self.procs[id.index()] = Some(Arc::clone(&arc));
        arc
    }

    /// The interned body of definition `d`, memoised per arena.
    fn def_term(&mut self, d: DefId, defs: &Definitions) -> Result<TermId, CspError> {
        let idx = d.index();
        if self.def_terms.len() <= idx {
            self.def_terms.resize(idx + 1, None);
        }
        if let Some(t) = self.def_terms[idx] {
            return Ok(t);
        }
        let body = Arc::clone(defs.body(d)?);
        let t = self.intern(&body);
        self.def_terms[idx] = Some(t);
        Ok(t)
    }

    /// Compute all single-step transitions of `id`, returning successor ids.
    ///
    /// This is [`crate::semantics::transitions`] over interned terms: the
    /// same rules, emitting successors in the same order, so an LTS built
    /// from these ids is indistinguishable from one built over raw trees.
    ///
    /// # Errors
    ///
    /// * [`CspError::UndefinedProcess`] if a referenced definition has no
    ///   body.
    /// * [`CspError::UnguardedRecursion`] if unfolding definitions never
    ///   reaches an event (e.g. `P = P`).
    pub fn transitions(
        &mut self,
        id: TermId,
        defs: &Definitions,
    ) -> Result<Vec<(Label, TermId)>, CspError> {
        self.transitions_at(id, defs, 0)
    }

    fn transitions_at(
        &mut self,
        id: TermId,
        defs: &Definitions,
        depth: usize,
    ) -> Result<Vec<(Label, TermId)>, CspError> {
        let term = self.terms[id.index()].clone();
        match term {
            Term::Stop | Term::Omega => Ok(Vec::new()),
            Term::Skip => {
                let omega = self.mk(Term::Omega);
                Ok(vec![(Label::Tick, omega)])
            }
            Term::Prefix(e, rest) => Ok(vec![(Label::Event(e), rest)]),
            Term::ExternalChoice(children) => {
                let mut out = Vec::new();
                for (i, &child) in children.iter().enumerate() {
                    for (label, succ) in self.transitions_at(child, defs, depth)? {
                        if label.is_tau() {
                            // τ does not resolve the choice.
                            let mut next = children.clone();
                            next[i] = succ;
                            let next = self.mk(Term::ExternalChoice(next));
                            out.push((Label::Tau, next));
                        } else {
                            out.push((label, succ));
                        }
                    }
                }
                Ok(out)
            }
            Term::InternalChoice(children) => {
                Ok(children.iter().map(|&c| (Label::Tau, c)).collect())
            }
            Term::Seq(first, second) => {
                let mut out = Vec::new();
                for (label, succ) in self.transitions_at(first, defs, depth)? {
                    if label.is_tick() {
                        out.push((Label::Tau, second));
                    } else {
                        let next = self.mk(Term::Seq(succ, second));
                        out.push((label, next));
                    }
                }
                Ok(out)
            }
            Term::Parallel { sync, left, right } => {
                let lt = self.transitions_at(left, defs, depth)?;
                let rt = self.transitions_at(right, defs, depth)?;
                let mut out = Vec::new();
                // Independent moves of the left side.
                for &(label, succ) in &lt {
                    let independent = match label {
                        Label::Tau => true,
                        Label::Tick => false,
                        Label::Event(e) => !self.set(sync).contains(e),
                    };
                    if independent {
                        let next = self.mk(Term::Parallel {
                            sync,
                            left: succ,
                            right,
                        });
                        out.push((label, next));
                    }
                }
                // Independent moves of the right side.
                for &(label, succ) in &rt {
                    let independent = match label {
                        Label::Tau => true,
                        Label::Tick => false,
                        Label::Event(e) => !self.set(sync).contains(e),
                    };
                    if independent {
                        let next = self.mk(Term::Parallel {
                            sync,
                            left,
                            right: succ,
                        });
                        out.push((label, next));
                    }
                }
                // Synchronised moves.
                for &(ll, ls) in &lt {
                    let Label::Event(e) = ll else { continue };
                    if !self.set(sync).contains(e) {
                        continue;
                    }
                    for &(rl, rs) in &rt {
                        if rl == ll {
                            let next = self.mk(Term::Parallel {
                                sync,
                                left: ls,
                                right: rs,
                            });
                            out.push((ll, next));
                        }
                    }
                }
                // Distributed termination: both sides must offer ✓.
                let l_tick = lt.iter().any(|(l, _)| l.is_tick());
                let r_tick = rt.iter().any(|(l, _)| l.is_tick());
                if l_tick && r_tick {
                    let omega = self.mk(Term::Omega);
                    out.push((Label::Tick, omega));
                }
                Ok(out)
            }
            Term::Hide(inner, hidden) => {
                let mut out = Vec::new();
                for (label, succ) in self.transitions_at(inner, defs, depth)? {
                    // ✓ ends the process: the residue is Ω itself, not Ω
                    // still wrapped in the hiding operator.
                    if label.is_tick() {
                        let omega = self.mk(Term::Omega);
                        out.push((Label::Tick, omega));
                        continue;
                    }
                    let new_label = match label {
                        Label::Event(e) if self.set(hidden).contains(e) => Label::Tau,
                        other => other,
                    };
                    // Collapse nested hiding so that recursion through a
                    // hiding operator (`P = (a -> P) \ A`) reaches a fixed
                    // point instead of growing a new layer per unfolding.
                    let collapsed = if let Term::Hide(grand, inner_hidden) = self.term(succ) {
                        Some((*grand, *inner_hidden))
                    } else {
                        None
                    };
                    let next = match collapsed {
                        Some((grand, inner_hidden)) => {
                            let union = Arc::new(self.set(hidden).union(self.set(inner_hidden)));
                            let union = self.intern_set(&union);
                            self.mk(Term::Hide(grand, union))
                        }
                        None => self.mk(Term::Hide(succ, hidden)),
                    };
                    out.push((new_label, next));
                }
                Ok(out)
            }
            Term::Rename(inner, map) => {
                let mut out = Vec::new();
                for (label, succ) in self.transitions_at(inner, defs, depth)? {
                    if label.is_tick() {
                        let omega = self.mk(Term::Omega);
                        out.push((Label::Tick, omega));
                        continue;
                    }
                    let new_label = match label {
                        Label::Event(e) => Label::Event(self.map(map).apply(e)),
                        other => other,
                    };
                    // Collapse nested renaming (inner first, then outer).
                    let collapsed = if let Term::Rename(grand, inner_map) = self.term(succ) {
                        Some((*grand, *inner_map))
                    } else {
                        None
                    };
                    let next = match collapsed {
                        Some((grand, inner_map)) => {
                            let composed = Arc::new(self.map(inner_map).then(self.map(map)));
                            let composed = self.intern_map(&composed);
                            self.mk(Term::Rename(grand, composed))
                        }
                        None => self.mk(Term::Rename(succ, map)),
                    };
                    out.push((new_label, next));
                }
                Ok(out)
            }
            Term::Interrupt(left, right) => {
                let mut out = Vec::new();
                for (label, succ) in self.transitions_at(left, defs, depth)? {
                    if label.is_tick() {
                        let omega = self.mk(Term::Omega);
                        out.push((Label::Tick, omega));
                    } else {
                        let next = self.mk(Term::Interrupt(succ, right));
                        out.push((label, next));
                    }
                }
                for (label, succ) in self.transitions_at(right, defs, depth)? {
                    if label.is_tau() {
                        // τ on the interrupting side does not resolve it.
                        let next = self.mk(Term::Interrupt(left, succ));
                        out.push((Label::Tau, next));
                    } else {
                        out.push((label, succ));
                    }
                }
                Ok(out)
            }
            Term::Timeout(left, right) => {
                let mut out = Vec::new();
                for (label, succ) in self.transitions_at(left, defs, depth)? {
                    match label {
                        Label::Tau => {
                            let next = self.mk(Term::Timeout(succ, right));
                            out.push((Label::Tau, next));
                        }
                        // A visible action (or ✓) of P resolves in P's favour.
                        other => out.push((other, succ)),
                    }
                }
                // The timeout itself.
                out.push((Label::Tau, right));
                Ok(out)
            }
            Term::Var(d) => {
                if depth >= MAX_UNFOLD_DEPTH {
                    return Err(CspError::UnguardedRecursion {
                        depth,
                        name: defs.name(d).to_owned(),
                    });
                }
                let body = self.def_term(d, defs)?;
                self.transitions_at(body, defs, depth + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn interning_is_structural() {
        let mut arena = TermArena::new();
        let p = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let q = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        assert_eq!(arena.intern(&p), arena.intern(&q));
        let r = Process::prefix(e(2), Process::Stop);
        assert_ne!(arena.intern(&p), arena.intern(&r));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let mut arena = TermArena::new();
        let p = Process::parallel(
            EventSet::singleton(e(0)),
            Process::prefix(e(0), Process::Skip),
            Process::hide(
                Process::prefix(e(1), Process::Stop),
                EventSet::singleton(e(1)),
            ),
        );
        let id = arena.intern(&p);
        assert_eq!(arena.process_of(id).as_ref(), &p);
    }

    #[test]
    fn transitions_match_tree_semantics_on_a_recursive_def() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let mut arena = TermArena::new();
        let root = arena.intern(&Process::var(d));
        let got = arena.transitions(root, &defs).unwrap();
        let want = crate::semantics::transitions(&Process::var(d), &defs).unwrap();
        assert_eq!(got.len(), want.len());
        for ((gl, gs), (wl, ws)) in got.into_iter().zip(want) {
            assert_eq!(gl, wl);
            assert_eq!(arena.process_of(gs).as_ref(), &ws);
        }
    }

    #[test]
    fn unguarded_recursion_is_named() {
        let mut defs = Definitions::new();
        let d = defs.declare("SPIN");
        defs.define(d, Process::var(d));
        let mut arena = TermArena::new();
        let root = arena.intern(&Process::var(d));
        let err = arena.transitions(root, &defs).unwrap_err();
        assert!(matches!(err, CspError::UnguardedRecursion { ref name, .. } if name == "SPIN"));
    }
}
