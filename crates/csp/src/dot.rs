//! Graphviz export of labelled transition systems, mirroring FDR's process
//! visualisation pane.

use std::fmt::Write as _;

use crate::alphabet::{Alphabet, Label};
use crate::lts::Lts;

/// Render `lts` as a Graphviz `digraph`, labelling events via `alphabet`.
///
/// `τ` edges are drawn dashed and `✓` edges are labelled with a tick, matching
/// the conventions of FDR's built-in viewer.
pub fn to_dot(lts: &Lts, alphabet: &Alphabet, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{graph_name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(
        out,
        "  s{} [style=filled, fillcolor=lightblue];",
        lts.initial().index()
    );
    for s in lts.state_ids() {
        for &(label, target) in lts.edges(s) {
            match label {
                Label::Tau => {
                    let _ = writeln!(
                        out,
                        "  s{} -> s{} [label=\"τ\", style=dashed];",
                        s.index(),
                        target.index()
                    );
                }
                Label::Tick => {
                    let _ = writeln!(
                        out,
                        "  s{} -> s{} [label=\"✓\"];",
                        s.index(),
                        target.index()
                    );
                }
                Label::Event(e) => {
                    let _ = writeln!(
                        out,
                        "  s{} -> s{} [label=\"{}\"];",
                        s.index(),
                        target.index(),
                        alphabet.name(e)
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Definitions, Process};

    #[test]
    fn dot_output_contains_all_edges() {
        let mut ab = Alphabet::new();
        let a = ab.intern("send.reqSw");
        let p = Process::prefix(a, Process::Skip);
        let lts = Lts::build(p, &Definitions::new(), 100).unwrap();
        let dot = to_dot(&lts, &ab, "demo");
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("send.reqSw"));
        assert!(dot.contains("✓"));
    }
}
