//! Helpers for checking the algebraic trace laws of §IV-A2 on bounded trace
//! sets. Used by the Table I reproduction tests.

use std::collections::BTreeSet;

use crate::error::CspError;
use crate::lts::Lts;
use crate::process::{Definitions, Process};
use crate::traces::{traces_upto, Trace};

/// Trace set of `p` with traces bounded to `max_len` elements.
///
/// # Errors
///
/// Propagates LTS-construction failures (state-space bound, bad recursion).
pub fn bounded_traces(
    p: &Process,
    defs: &Definitions,
    max_len: usize,
    max_states: usize,
) -> Result<BTreeSet<Trace>, CspError> {
    let lts = Lts::build(p.clone(), defs, max_states)?;
    Ok(traces_upto(&lts, max_len))
}

/// Are `p` and `q` trace-equivalent up to traces of length `max_len`?
///
/// # Errors
///
/// Propagates LTS-construction failures for either operand.
pub fn trace_equivalent_upto(
    p: &Process,
    q: &Process,
    defs: &Definitions,
    max_len: usize,
    max_states: usize,
) -> Result<bool, CspError> {
    Ok(bounded_traces(p, defs, max_len, max_states)?
        == bounded_traces(q, defs, max_len, max_states)?)
}

/// Does `q` trace-refine `p` (`p ⊑T q`, i.e. `traces(q) ⊆ traces(p)`) up to
/// traces of length `max_len`?
///
/// This is the reference (enumerative) implementation used to cross-check the
/// efficient product-automaton algorithm in `fdrlite`.
///
/// # Errors
///
/// Propagates LTS-construction failures for either operand.
pub fn trace_refines_upto(
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    max_len: usize,
    max_states: usize,
) -> Result<bool, CspError> {
    let spec_traces = bounded_traces(spec, defs, max_len, max_states)?;
    let impl_traces = bounded_traces(impl_, defs, max_len, max_states)?;
    Ok(impl_traces.is_subset(&spec_traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::EventId;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn external_choice_traces_are_union() {
        // traces(P1 [] P2) = traces(P1) ∪ traces(P2)
        let defs = Definitions::new();
        let p1 = Process::prefix(e(0), Process::Stop);
        let p2 = Process::prefix(e(1), Process::Stop);
        let both = Process::external_choice(p1.clone(), p2.clone());
        let t1 = bounded_traces(&p1, &defs, 5, 100).unwrap();
        let t2 = bounded_traces(&p2, &defs, 5, 100).unwrap();
        let tb = bounded_traces(&both, &defs, 5, 100).unwrap();
        let union: BTreeSet<Trace> = t1.union(&t2).cloned().collect();
        assert_eq!(tb, union);
    }

    #[test]
    fn internal_and_external_choice_trace_equivalent() {
        // In the traces model, [] and |~| are indistinguishable.
        let defs = Definitions::new();
        let p1 = Process::prefix(e(0), Process::Stop);
        let p2 = Process::prefix(e(1), Process::Stop);
        let ext = Process::external_choice(p1.clone(), p2.clone());
        let int = Process::internal_choice(p1, p2);
        assert!(trace_equivalent_upto(&ext, &int, &defs, 6, 100).unwrap());
    }

    #[test]
    fn refinement_reference_implementation() {
        let defs = Definitions::new();
        let spec = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let impl_ = Process::prefix(e(0), Process::Stop);
        assert!(trace_refines_upto(&spec, &impl_, &defs, 6, 100).unwrap());
        assert!(!trace_refines_upto(&impl_, &spec, &defs, 6, 100).unwrap());
    }
}
