//! Error type for state-space operations.

use std::fmt;

/// Errors raised while exploring or analysing a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CspError {
    /// State-space exploration exceeded the configured bound.
    StateSpaceExceeded {
        /// The bound that was exceeded.
        limit: usize,
    },
    /// A process referenced a definition that was declared but never defined.
    UndefinedProcess {
        /// Name of the missing definition.
        name: String,
    },
    /// Recursion was not guarded by any event (e.g. `P = P`), so the firing
    /// rules never reach a prefix.
    UnguardedRecursion {
        /// Unfold depth at which the rules gave up.
        depth: usize,
        /// Name of the definition whose unfolding exceeded the depth bound.
        name: String,
    },
}

impl fmt::Display for CspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CspError::StateSpaceExceeded { limit } => {
                write!(f, "state space exceeded the limit of {limit} states")
            }
            CspError::UndefinedProcess { name } => {
                write!(f, "process `{name}` was declared but never defined")
            }
            CspError::UnguardedRecursion { depth, name } => {
                write!(
                    f,
                    "unguarded recursion in `{name}`: no event after {depth} unfoldings"
                )
            }
        }
    }
}

impl std::error::Error for CspError {}
