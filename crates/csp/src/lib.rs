//! Core CSP (Communicating Sequential Processes) process algebra.
//!
//! This crate implements the subset of CSP used by the DSN-W 2019 paper
//! *Enabling Security Checking of Automotive ECUs with Formal CSP Models*:
//! the operators `Stop`, `Skip`, event prefix, external and internal choice,
//! sequential composition, generalised (alphabetised) parallel, interleaving,
//! hiding and renaming, together with recursion through named definitions.
//!
//! Three layers are provided:
//!
//! * **Syntax** — [`Process`] is an immutable, `Arc`-shared process tree built
//!   through the constructors on [`Process`] or the free functions in
//!   [`builder`]. Events are interned in an [`Alphabet`] and referenced by the
//!   copyable [`EventId`].
//! * **Operational semantics** — [`semantics::transitions`] computes the
//!   single-step firing rules (including the silent `τ` and termination `✓`
//!   labels) following Roscoe's *Understanding Concurrent Systems*.
//! * **Denotational checks** — [`Lts`] explores the reachable state space,
//!   and [`traces`] extracts the finite-traces model used for the trace-law
//!   tests (Table I of the paper) and by the `fdrlite` refinement checker.
//!
//! # Example
//!
//! Build `SP02 = rec.reqSw -> send.rptSw -> SP02`, the integrity property from
//! §V-B of the paper, and list its traces up to length 4:
//!
//! ```
//! use csp::{Alphabet, Definitions, Process};
//!
//! let mut ab = Alphabet::new();
//! let req = ab.intern("rec.reqSw");
//! let rpt = ab.intern("send.rptSw");
//!
//! let mut defs = Definitions::new();
//! let sp02 = defs.declare("SP02");
//! defs.define(sp02, Process::prefix(req, Process::prefix(rpt, Process::var(sp02))));
//!
//! let lts = csp::Lts::build(Process::var(sp02), &defs, 1_000)?;
//! let traces = csp::traces::traces_upto(&lts, 4);
//! assert!(traces.iter().any(|t| t.events().len() == 4));
//! # Ok::<(), csp::CspError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod error;
mod process;

pub mod analysis;
pub mod builder;
pub mod compress;
pub mod dot;
pub mod laws;
pub mod lts;
pub mod semantics;
pub mod term;
pub mod traces;

pub use alphabet::{Alphabet, EventId, EventSet, Label, RenameMap};
pub use error::CspError;
pub use lts::{CsrEdges, Lts, StateId};
pub use process::{DefId, Definitions, Process};
pub use term::{Term, TermArena, TermId};
pub use traces::{Trace, TraceEvent};
