//! Interprocedural may-alphabet inference.
//!
//! `α(P)` here is the set of events `P` could *ever* perform, computed
//! structurally over interned terms with a fixpoint across definition
//! bodies. It is an over-approximation: `e ∉ α(P)` proves `P` never
//! performs `e`; `e ∈ α(P)` promises nothing. That direction is exactly
//! what the semantic lints need — every finding below is a statement of
//! the form "this event can *never* happen here".

use std::collections::{HashMap, HashSet};

use crate::alphabet::{EventId, EventSet};
use crate::process::{DefId, Definitions};
use crate::term::{Term, TermArena, TermId};

/// Which operand of a parallel composition can perform an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncSide {
    /// Only the left operand offers the event.
    Left,
    /// Only the right operand offers the event.
    Right,
}

/// One semantic finding from the alphabet walk, anchored at the interned
/// node it was discovered on (useful for deduplication — hash-consing
/// means the same composition reachable from two roots is the same id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlphaFinding {
    /// An event in a synchronisation set that exactly one side can
    /// perform: the interface blocks it forever.
    SyncOneSided {
        /// The parallel node the sync set belongs to.
        at: TermId,
        /// The blocked event.
        event: EventId,
        /// The side that *can* perform it (the other side never offers it).
        performer: SyncSide,
    },
    /// An event in a synchronisation set that neither side can perform.
    SyncDeadEvent {
        /// The parallel node the sync set belongs to.
        at: TermId,
        /// The dead event.
        event: EventId,
    },
    /// An event in a hide set the hidden process can never perform.
    HiddenNeverPerformable {
        /// The hide node.
        at: TermId,
        /// The event that is hidden but never offered.
        event: EventId,
    },
}

/// The result of running alphabet inference over one definitions table.
///
/// Build it once with [`AlphabetInference::infer`]; queries are then pure
/// reads (plus arena interning for terms not seen during inference).
#[derive(Debug)]
pub struct AlphabetInference {
    /// Least-fixpoint may-alphabet per definition, indexed by `DefId`.
    def_alpha: Vec<EventSet>,
    /// Interned body of each *defined* definition.
    def_body: Vec<Option<TermId>>,
    /// Fixpoint rounds until stabilisation (diagnostics/bench interest).
    rounds: usize,
}

impl AlphabetInference {
    /// Run the interprocedural fixpoint over every definition in `defs`.
    ///
    /// Definitions that were declared but never defined get the empty
    /// alphabet (they cannot fire anything the analysis could rely on;
    /// exploring them errors long before alphabets matter).
    ///
    /// The iteration is a Gauss–Seidel pass over a finite monotone
    /// lattice (subsets of the interned event universe), so it terminates;
    /// each round re-evaluates every body against the freshest alphabets.
    pub fn infer(arena: &mut TermArena, defs: &Definitions) -> Self {
        let n = defs.len();
        let mut def_body: Vec<Option<TermId>> = vec![None; n];
        for d in defs.ids() {
            if let Ok(body) = defs.body(d) {
                let body = std::sync::Arc::clone(body);
                def_body[d.index()] = Some(arena.intern(&body));
            }
        }

        let mut def_alpha = vec![EventSet::empty(); n];
        let mut rounds = 0;
        loop {
            rounds += 1;
            let mut changed = false;
            let mut memo = HashMap::new();
            for i in 0..n {
                let Some(body) = def_body[i] else { continue };
                let a = alphabet_of_with(arena, body, &def_alpha, &mut memo);
                if a != def_alpha[i] {
                    def_alpha[i] = a;
                    changed = true;
                    // Alphabets grew: memoised results may be stale.
                    memo.clear();
                }
            }
            if !changed {
                break;
            }
        }

        AlphabetInference {
            def_alpha,
            def_body,
            rounds,
        }
    }

    /// Fixpoint rounds until the definition alphabets stabilised.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The may-alphabet of a definition.
    pub fn def_alphabet(&self, d: DefId) -> &EventSet {
        &self.def_alpha[d.index()]
    }

    /// The interned body of a definition, when it has one.
    pub fn def_body(&self, d: DefId) -> Option<TermId> {
        self.def_body.get(d.index()).copied().flatten()
    }

    /// The may-alphabet of an arbitrary interned term, using the
    /// definition alphabets computed by [`AlphabetInference::infer`].
    pub fn alphabet_of(&self, arena: &TermArena, t: TermId) -> EventSet {
        alphabet_of_with(arena, t, &self.def_alpha, &mut HashMap::new())
    }

    /// Walk the term graph under `root` (not following definition
    /// references — run this per definition body and per assertion operand
    /// so findings have an attribution context) and report every event
    /// that a sync or hide set mentions but the relevant side can never
    /// perform.
    ///
    /// Deterministic: nodes are visited in a left-to-right preorder and
    /// each interned node at most once.
    pub fn term_findings(&self, arena: &TermArena, root: TermId) -> Vec<AlphaFinding> {
        let mut memo = HashMap::new();
        let mut findings = Vec::new();
        let mut visited = HashSet::new();
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if !visited.insert(t) {
                continue;
            }
            match arena.term(t).clone() {
                Term::Stop | Term::Skip | Term::Omega | Term::Var(_) => {}
                Term::Prefix(_, rest) => stack.push(rest),
                Term::ExternalChoice(xs) | Term::InternalChoice(xs) => {
                    stack.extend(xs.iter().rev());
                }
                Term::Seq(a, b) | Term::Interrupt(a, b) | Term::Timeout(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
                Term::Parallel { sync, left, right } => {
                    let al = alphabet_of_with(arena, left, &self.def_alpha, &mut memo);
                    let ar = alphabet_of_with(arena, right, &self.def_alpha, &mut memo);
                    for event in arena.set(sync).iter() {
                        match (al.contains(event), ar.contains(event)) {
                            (true, true) => {}
                            (true, false) => findings.push(AlphaFinding::SyncOneSided {
                                at: t,
                                event,
                                performer: SyncSide::Left,
                            }),
                            (false, true) => findings.push(AlphaFinding::SyncOneSided {
                                at: t,
                                event,
                                performer: SyncSide::Right,
                            }),
                            (false, false) => {
                                findings.push(AlphaFinding::SyncDeadEvent { at: t, event });
                            }
                        }
                    }
                    stack.push(right);
                    stack.push(left);
                }
                Term::Hide(inner, set) => {
                    let ai = alphabet_of_with(arena, inner, &self.def_alpha, &mut memo);
                    for event in arena.set(set).iter() {
                        if !ai.contains(event) {
                            findings.push(AlphaFinding::HiddenNeverPerformable { at: t, event });
                        }
                    }
                    stack.push(inner);
                }
                Term::Rename(inner, _) => stack.push(inner),
            }
        }
        findings
    }

    /// Which definitions are reachable from `roots`, following definition
    /// references through interned bodies. Index `i` answers for the
    /// definition with `DefId` index `i`.
    ///
    /// Unlike the syntactic CSP203 lint this works on the *elaborated*
    /// model, so renaming, hiding and computed sync sets do not defeat it.
    pub fn reachable_defs(&self, arena: &TermArena, roots: &[TermId]) -> Vec<bool> {
        let mut reached = vec![false; self.def_alpha.len()];
        let mut visited = HashSet::new();
        let mut stack: Vec<TermId> = roots.to_vec();
        while let Some(t) = stack.pop() {
            if !visited.insert(t) {
                continue;
            }
            match arena.term(t).clone() {
                Term::Stop | Term::Skip | Term::Omega => {}
                Term::Prefix(_, rest) => stack.push(rest),
                Term::ExternalChoice(xs) | Term::InternalChoice(xs) => stack.extend(xs),
                Term::Seq(a, b) | Term::Interrupt(a, b) | Term::Timeout(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Term::Parallel { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
                Term::Hide(inner, _) | Term::Rename(inner, _) => stack.push(inner),
                Term::Var(d) => {
                    if let Some(flag) = reached.get_mut(d.index()) {
                        if !*flag {
                            *flag = true;
                            if let Some(body) = self.def_body(d) {
                                stack.push(body);
                            }
                        }
                    }
                }
            }
        }
        reached
    }
}

/// Structural may-alphabet of `t` against fixed definition alphabets.
///
/// Iterative post-order so arbitrarily deep terms (long prefix chains from
/// lifted traces) cannot overflow the stack. `memo` is keyed by `TermId`
/// and is only valid for one `def_alpha` snapshot.
fn alphabet_of_with(
    arena: &TermArena,
    root: TermId,
    def_alpha: &[EventSet],
    memo: &mut HashMap<TermId, EventSet>,
) -> EventSet {
    enum Frame {
        Visit(TermId),
        Compute(TermId),
    }

    let mut stack = vec![Frame::Visit(root)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Visit(t) => {
                if memo.contains_key(&t) {
                    continue;
                }
                stack.push(Frame::Compute(t));
                match arena.term(t) {
                    Term::Stop | Term::Skip | Term::Omega | Term::Var(_) => {}
                    Term::Prefix(_, rest) => stack.push(Frame::Visit(*rest)),
                    Term::ExternalChoice(xs) | Term::InternalChoice(xs) => {
                        stack.extend(xs.iter().map(|&x| Frame::Visit(x)));
                    }
                    Term::Seq(a, b) | Term::Interrupt(a, b) | Term::Timeout(a, b) => {
                        stack.push(Frame::Visit(*a));
                        stack.push(Frame::Visit(*b));
                    }
                    Term::Parallel { left, right, .. } => {
                        stack.push(Frame::Visit(*left));
                        stack.push(Frame::Visit(*right));
                    }
                    Term::Hide(inner, _) | Term::Rename(inner, _) => {
                        stack.push(Frame::Visit(*inner));
                    }
                }
            }
            Frame::Compute(t) => {
                let a = match arena.term(t) {
                    Term::Stop | Term::Skip | Term::Omega => EventSet::empty(),
                    Term::Prefix(e, rest) => memo[rest].union(&EventSet::from_iter_dedup([*e])),
                    Term::ExternalChoice(xs) | Term::InternalChoice(xs) => {
                        let mut acc = EventSet::empty();
                        for x in xs {
                            acc = acc.union(&memo[x]);
                        }
                        acc
                    }
                    Term::Seq(a, b) | Term::Interrupt(a, b) | Term::Timeout(a, b) => {
                        memo[a].union(&memo[b])
                    }
                    Term::Parallel { sync, left, right } => {
                        let s = arena.set(*sync);
                        let al = &memo[left];
                        let ar = &memo[right];
                        al.difference(s)
                            .union(&ar.difference(s))
                            .union(&al.intersection(ar).intersection(s))
                    }
                    Term::Hide(inner, set) => memo[inner].difference(arena.set(*set)),
                    Term::Rename(inner, map) => {
                        let m = arena.map(*map);
                        EventSet::from_iter_dedup(memo[inner].iter().map(|e| m.apply(e)))
                    }
                    Term::Var(d) => def_alpha
                        .get(d.index())
                        .cloned()
                        .unwrap_or_else(EventSet::empty),
                };
                memo.insert(t, a);
            }
        }
    }
    memo[&root].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alphabet, Process};

    fn setup() -> (Alphabet, TermArena, Definitions) {
        (Alphabet::new(), TermArena::new(), Definitions::new())
    }

    #[test]
    fn recursive_definition_reaches_a_fixpoint() {
        let (mut al, mut arena, mut defs) = setup();
        let a = al.intern("a");
        let b = al.intern("b");
        // P = a -> Q, Q = b -> P
        let p = defs.declare("P");
        let q = defs.declare("Q");
        defs.define(p, Process::prefix(a, Process::var(q)));
        defs.define(q, Process::prefix(b, Process::var(p)));

        let inf = AlphabetInference::infer(&mut arena, &defs);
        let expect = EventSet::from_iter_dedup([a, b]);
        assert_eq!(inf.def_alphabet(p), &expect);
        assert_eq!(inf.def_alphabet(q), &expect);
        assert!(inf.rounds() >= 2);
    }

    #[test]
    fn hide_and_rename_flow_through_the_fixpoint() {
        let (mut al, mut arena, mut defs) = setup();
        let a = al.intern("a");
        let b = al.intern("b");
        let c = al.intern("c");
        // P = ((a -> b -> P) [[ b <- c ]]) \ {a}   ⇒ α(P) = {c}
        let p = defs.declare("P");
        let body = Process::hide(
            Process::rename(
                Process::prefix(a, Process::prefix(b, Process::var(p))),
                RenameBuilder::one(b, c),
            ),
            EventSet::from_iter_dedup([a]),
        );
        defs.define(p, body);

        let inf = AlphabetInference::infer(&mut arena, &defs);
        assert_eq!(inf.def_alphabet(p), &EventSet::from_iter_dedup([c]));
    }

    // Tiny helper: a single-pair rename map.
    struct RenameBuilder;
    impl RenameBuilder {
        fn one(from: EventId, to: EventId) -> crate::RenameMap {
            let mut m = crate::RenameMap::default();
            m.insert(from, to);
            m
        }
    }

    #[test]
    fn one_sided_and_dead_sync_events_are_found() {
        let (mut al, mut arena, mut defs) = setup();
        let req = al.intern("req");
        let rpt = al.intern("rpt");
        let ghost = al.intern("ghost");
        let sender = defs.declare("SENDER");
        let monitor = defs.declare("MONITOR");
        defs.define(sender, Process::prefix(req, Process::var(sender)));
        defs.define(monitor, Process::prefix(rpt, Process::var(monitor)));
        let sys = Process::parallel(
            EventSet::from_iter_dedup([req, rpt, ghost]),
            Process::var(sender),
            Process::var(monitor),
        );

        let inf = AlphabetInference::infer(&mut arena, &defs);
        let root = arena.intern(&sys);
        let findings = inf.term_findings(&arena, root);
        let kinds: Vec<_> = findings
            .iter()
            .map(|f| match *f {
                AlphaFinding::SyncOneSided {
                    event, performer, ..
                } => ("one-sided", event, Some(performer)),
                AlphaFinding::SyncDeadEvent { event, .. } => ("dead", event, None),
                AlphaFinding::HiddenNeverPerformable { event, .. } => ("hidden", event, None),
            })
            .collect();
        assert!(kinds.contains(&("one-sided", req, Some(SyncSide::Left))));
        assert!(kinds.contains(&("one-sided", rpt, Some(SyncSide::Right))));
        assert!(kinds.contains(&("dead", ghost, None)));
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn hidden_event_never_performable_is_found() {
        let (mut al, mut arena, defs) = setup();
        let a = al.intern("a");
        let b = al.intern("b");
        let p = Process::hide(
            Process::prefix(a, Process::Stop),
            EventSet::from_iter_dedup([b]),
        );
        let inf = AlphabetInference::infer(&mut arena, &defs);
        let root = arena.intern(&p);
        let findings = inf.term_findings(&arena, root);
        assert_eq!(
            findings,
            vec![AlphaFinding::HiddenNeverPerformable { at: root, event: b }]
        );
    }

    #[test]
    fn reachability_sees_through_renaming() {
        let (mut al, mut arena, mut defs) = setup();
        let a = al.intern("a");
        let b = al.intern("b");
        let p = defs.declare("P");
        let orphan = defs.declare("ORPHAN");
        defs.define(p, Process::prefix(a, Process::var(p)));
        defs.define(orphan, Process::prefix(b, Process::Stop));

        // Root renames P — the syntactic lint bails on this shape, the
        // semantic analysis must still mark P reached and ORPHAN not.
        let root_p = Process::rename(Process::var(p), RenameBuilder::one(a, b));
        let inf = AlphabetInference::infer(&mut arena, &defs);
        let root = arena.intern(&root_p);
        let reached = inf.reachable_defs(&arena, &[root]);
        assert!(reached[p.index()]);
        assert!(!reached[orphan.index()]);
    }
}
