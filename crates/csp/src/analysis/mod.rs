//! Semantic static analysis over the arena and compiled layers.
//!
//! Everything in this module is a *pre-check*: sound, conservative
//! information extracted without running a refinement, powering the
//! `ANA3xx` diagnostic family and the `autocsp analyze` subcommand.
//!
//! Three passes, layered on what already exists:
//!
//! * [`AlphabetInference`] — interprocedural *may-alphabet* inference over
//!   a [`TermArena`](crate::TermArena): a fixpoint over definition bodies
//!   that pushes event sets through renaming, hiding and synchronised
//!   parallel. The result over-approximates the events a process can ever
//!   perform, so "event `e` is *not* in the alphabet" is a proof that `e`
//!   never happens — the soundness direction the semantic lints need
//!   (one-sided synchronisation, dead hides, unreachable definitions).
//! * [`GraphAnalysis`] — a Tarjan SCC pass over a compiled LTS's
//!   [`CsrEdges`](crate::lts::CsrEdges) that classifies τ-cycles, decides
//!   divergence-freedom (a state diverges iff it can τ-reach a τ-cycle)
//!   and flags guaranteed-deadlock sink states. The divergent-state set is
//!   definitionally the same one the `[FD=` checker computes, so a cached
//!   `GraphAnalysis` can stand in for that phase verbatim.
//! * [`StateEstimate`] — a state-space predictor: compile the *components*
//!   of a composition (cheap), then bound the product through the proved
//!   inequalities `|P ⟦A⟧ Q| ≤ |P|·|Q| + 1` and
//!   `|P \ A| ≤ |P| + 2` (likewise renaming). The predicted bound is
//!   always ≥ the real reachable-state count when every component compiled
//!   exactly, which lets budgets reject a check *before* paying for it.

mod alpha;
mod estimate;
mod graph;

pub use alpha::{AlphaFinding, AlphabetInference, SyncSide};
pub use estimate::{estimate, ComponentEstimate, StateEstimate};
pub use graph::{tau_divergence, GraphAnalysis, TauDivergence};
