//! SCC-based τ-cycle, divergence and deadlock classification.
//!
//! A state of a finite LTS diverges iff it has an infinite τ-path, iff it
//! can reach (by τ-steps alone) a τ-cycle — a nontrivial SCC of the
//! τ-subgraph, or a τ-self-loop. [`tau_divergence`] finds those cycles
//! with an iterative Tarjan pass over any edge relation and then marks
//! everything that τ-reaches them. It is the *one* divergence routine in
//! the stack: [`GraphAnalysis`] (cached per compiled model), the
//! specification normaliser's per-node divergence flags and the `[FD=`
//! divergence phase all call it, so a cached analysis stands in for the
//! divergence phase of `[FD=` verbatim by construction.

use crate::alphabet::Label;
use crate::lts::{CsrEdges, Lts, StateId};
use crate::process::Process;

/// The τ-cycle / divergence classification of one edge relation — the one
/// shared divergence routine in the stack. [`GraphAnalysis::of_csr`], the
/// specification normaliser's divergence flags and the `[FD=` divergence
/// phase all call [`tau_divergence`], so the three can never drift apart.
#[derive(Debug, Clone)]
pub struct TauDivergence {
    /// Per-state "lies on a τ-cycle" flags (nontrivial τ-SCC member or
    /// τ-self-loop).
    pub on_cycle: Vec<bool>,
    /// Per-state divergence flags: the state τ-reaches a τ-cycle.
    pub divergent: Vec<bool>,
}

/// Classify every state of an `n`-state edge relation: which lie on a
/// τ-cycle, and which diverge (τ-reach a τ-cycle). `succ` must return the
/// outgoing edges of a state; both [`Lts::edges`] and [`CsrEdges::edges`]
/// fit directly.
#[must_use]
pub fn tau_divergence<'a>(
    n: usize,
    succ: impl Fn(StateId) -> &'a [(Label, StateId)] + Copy,
) -> TauDivergence {
    // τ-subgraph SCCs: a state lies on a τ-cycle iff its τ-component has
    // ≥ 2 members or it carries a τ-self-loop.
    let (tau_comp, tau_comp_count) = tarjan(n, succ, true);
    let mut comp_size = vec![0_u32; tau_comp_count];
    for &c in &tau_comp {
        comp_size[c] += 1;
    }
    let mut on_cycle = vec![false; n];
    for (s, flag) in on_cycle.iter_mut().enumerate() {
        *flag = comp_size[tau_comp[s]] > 1
            || succ(StateId::from_index(s))
                .iter()
                .any(|&(l, t)| l.is_tau() && t.index() == s);
    }

    // Divergent = τ-reaches a τ-cycle: backward BFS over τ-edges.
    let mut rev_tau: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in 0..n {
        for &(l, t) in succ(StateId::from_index(s)) {
            if l.is_tau() {
                rev_tau[t.index()].push(s as u32);
            }
        }
    }
    let mut divergent = on_cycle.clone();
    let mut queue: Vec<u32> = (0..n as u32).filter(|&s| divergent[s as usize]).collect();
    while let Some(s) = queue.pop() {
        for &p in &rev_tau[s as usize] {
            if !divergent[p as usize] {
                divergent[p as usize] = true;
                queue.push(p);
            }
        }
    }

    TauDivergence {
        on_cycle,
        divergent,
    }
}

/// Everything the SCC pass learns about one compiled LTS.
///
/// Built once per compiled model (the model store caches it per
/// `CompileKey`); all queries are pure reads.
#[derive(Debug, Clone)]
pub struct GraphAnalysis {
    state_count: usize,
    transition_count: usize,
    tau_transition_count: usize,
    scc_count: usize,
    tau_cycle_states: usize,
    divergent: Vec<bool>,
    divergent_count: usize,
    deadlock: Vec<bool>,
    deadlock_count: usize,
}

impl GraphAnalysis {
    /// Analyse a CSR edge snapshot. `omega[s]` must say whether state `s`
    /// is the terminated process Ω (a terminal Ω state is successful
    /// termination, not a deadlock).
    ///
    /// # Panics
    ///
    /// When `omega.len()` differs from the snapshot's state count.
    #[must_use]
    pub fn of_csr(csr: &CsrEdges, omega: &[bool]) -> GraphAnalysis {
        let n = csr.state_count();
        assert_eq!(omega.len(), n, "omega flags must cover every state");

        let tau_transition_count = (0..n)
            .map(|s| {
                csr.edges(StateId::from_index(s))
                    .iter()
                    .filter(|(l, _)| l.is_tau())
                    .count()
            })
            .sum();
        let transition_count = (0..n)
            .map(|s| csr.edges(StateId::from_index(s)).len())
            .sum();

        // Full-graph SCC count (structure metric for `analyze` output).
        let (_, scc_count) = tarjan(n, |s| csr.edges(s), false);

        // The shared τ-cycle/divergence classification (also used by the
        // normaliser and the `[FD=` divergence phase).
        let TauDivergence {
            on_cycle,
            divergent,
        } = tau_divergence(n, |s| csr.edges(s));
        let tau_cycle_states = on_cycle.iter().filter(|&&b| b).count();
        let divergent_count = divergent.iter().filter(|&&b| b).count();

        let deadlock: Vec<bool> = (0..n)
            .map(|s| csr.edges(StateId::from_index(s)).is_empty() && !omega[s])
            .collect();
        let deadlock_count = deadlock.iter().filter(|&&b| b).count();

        GraphAnalysis {
            state_count: n,
            transition_count,
            tau_transition_count,
            scc_count,
            tau_cycle_states,
            divergent,
            divergent_count,
            deadlock,
            deadlock_count,
        }
    }

    /// Analyse an [`Lts`] directly (snapshots the edges itself and derives
    /// the Ω flags from the state table).
    #[must_use]
    pub fn of_lts(lts: &Lts) -> GraphAnalysis {
        let omega: Vec<bool> = lts
            .state_ids()
            .map(|s| matches!(lts.state(s), Process::Omega))
            .collect();
        GraphAnalysis::of_csr(&lts.to_csr(), &omega)
    }

    /// States in the analysed LTS.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Transitions in the analysed LTS.
    pub fn transition_count(&self) -> usize {
        self.transition_count
    }

    /// τ-labelled transitions in the analysed LTS.
    pub fn tau_transition_count(&self) -> usize {
        self.tau_transition_count
    }

    /// Strongly connected components of the full transition graph.
    pub fn scc_count(&self) -> usize {
        self.scc_count
    }

    /// States lying *on* a τ-cycle (nontrivial τ-SCC member or τ-self-loop).
    pub fn tau_cycle_states(&self) -> usize {
        self.tau_cycle_states
    }

    /// Per-state divergence flags, indexed by `StateId`.
    pub fn divergent(&self) -> &[bool] {
        &self.divergent
    }

    /// How many states diverge.
    pub fn divergent_count(&self) -> usize {
        self.divergent_count
    }

    /// Per-state guaranteed-deadlock flags (terminal and not Ω).
    pub fn deadlocked(&self) -> &[bool] {
        &self.deadlock
    }

    /// How many states are guaranteed-deadlock sinks.
    pub fn deadlock_count(&self) -> usize {
        self.deadlock_count
    }

    /// No reachable state diverges (every LTS state is reachable by
    /// construction of the BFS build).
    pub fn is_divergence_free(&self) -> bool {
        self.divergent_count == 0
    }

    /// No reachable state is a non-Ω sink.
    pub fn is_deadlock_free(&self) -> bool {
        self.deadlock_count == 0
    }
}

/// Iterative Tarjan over the (optionally τ-restricted) edge relation.
/// Returns the component id of every node plus the component count;
/// component ids are in reverse topological discovery order, but callers
/// here only use sizes and membership.
fn tarjan<'a>(
    n: usize,
    succ: impl Fn(StateId) -> &'a [(Label, StateId)] + Copy,
    tau_only: bool,
) -> (Vec<usize>, usize) {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0_u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut comp_count = 0;
    let mut next_index: u32 = 0;
    let mut stack: Vec<u32> = Vec::new();

    // Explicit DFS: (node, edge cursor).
    let mut dfs: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        dfs.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            let vi = v as usize;
            if *cursor == 0 {
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let edges = succ(StateId::from_index(vi));
            let mut advanced = false;
            while *cursor < edges.len() {
                let (l, w) = edges[*cursor];
                *cursor += 1;
                if tau_only && !l.is_tau() {
                    continue;
                }
                let wi = w.index();
                if index[wi] == UNSET {
                    dfs.push((w.index() as u32, 0));
                    advanced = true;
                    break;
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            }
            if advanced {
                continue;
            }
            // v is done: pop it, fold its lowlink into the parent.
            dfs.pop();
            if let Some(&(p, _)) = dfs.last() {
                let pi = p as usize;
                lowlink[pi] = lowlink[pi].min(lowlink[vi]);
            }
            if lowlink[vi] == index[vi] {
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    comp[w as usize] = comp_count;
                    if w == v {
                        break;
                    }
                }
                comp_count += 1;
            }
        }
    }
    (comp, comp_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alphabet, Definitions, EventSet, Process, TermArena};

    fn analyse(p: &Process, defs: &Definitions) -> (Lts, GraphAnalysis) {
        let mut arena = TermArena::new();
        let root = arena.intern(p);
        let lts = Lts::build_in(&mut arena, root, defs, 10_000).unwrap();
        let ga = GraphAnalysis::of_lts(&lts);
        (lts, ga)
    }

    #[test]
    fn hidden_loop_is_divergent_everywhere_it_is_reachable() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let mut defs = Definitions::new();
        let d = defs.declare("D");
        defs.define(d, Process::prefix(a, Process::var(d)));
        // (a -> D) \ {a}: every state τ-loops.
        let p = Process::hide(Process::var(d), EventSet::from_iter_dedup([a]));
        let (lts, ga) = analyse(&p, &defs);
        assert!(lts.has_tau_cycle());
        assert!(!ga.is_divergence_free());
        assert_eq!(ga.divergent_count(), ga.state_count());
        assert!(ga.tau_cycle_states() > 0);
    }

    #[test]
    fn stop_is_a_deadlock_sink_but_skip_is_not() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let defs = Definitions::new();
        let stops = Process::prefix(a, Process::Stop);
        let (_, ga) = analyse(&stops, &defs);
        assert!(!ga.is_deadlock_free());
        assert_eq!(ga.deadlock_count(), 1);
        assert!(ga.is_divergence_free());

        let ends = Process::prefix(a, Process::Skip);
        let (_, ga) = analyse(&ends, &defs);
        // a -> SKIP -> Ω: the only sink is Ω, which terminates successfully.
        assert!(ga.is_deadlock_free());
    }

    #[test]
    fn tau_cycle_flags_agree_with_the_global_kahn_check() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let b = al.intern("b");
        let mut defs = Definitions::new();
        let d = defs.declare("D");
        defs.define(d, Process::prefix(a, Process::prefix(b, Process::var(d))));
        // Hide only `a`: τ-steps exist but no τ-cycle (b interleaves).
        let p = Process::hide(Process::var(d), EventSet::from_iter_dedup([a]));
        let (lts, ga) = analyse(&p, &defs);
        assert!(!lts.has_tau_cycle());
        assert_eq!(ga.tau_cycle_states(), 0);
        assert!(ga.is_divergence_free());
        assert!(ga.tau_transition_count() > 0);
    }

    #[test]
    fn scc_count_sees_the_recursive_cycle() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let mut defs = Definitions::new();
        let d = defs.declare("D");
        defs.define(d, Process::prefix(a, Process::var(d)));
        let (lts, ga) = analyse(&Process::var(d), &defs);
        // One cyclic component holding the whole loop.
        assert!(ga.scc_count() <= lts.state_count());
        assert!(ga.scc_count() >= 1);
        assert!(ga.is_divergence_free());
        assert!(ga.is_deadlock_free());
    }
}
