//! State-space prediction for composed processes.
//!
//! Compiling `P ⟦A⟧ Q` costs up to `|P|·|Q|` states; compiling `P` and `Q`
//! separately costs `|P| + |Q|`. The estimator exploits that asymmetry: it
//! decomposes a term through its parallel / hide / rename spine, compiles
//! each leaf component on its own (under a small cap), and recombines the
//! sizes through inequalities that provably bound the product:
//!
//! * `|Reach(P ⟦A⟧ Q)| ≤ |Reach(P)| · |Reach(Q)| + 1` — every product
//!   state is a pair of component states (plus Ω);
//! * `|Reach(P \ A)| ≤ |Reach(P)| + 2` — hiding maps inner states onto
//!   outer states (the firing rules collapse nested hides, so the root
//!   may add one extra shape, plus Ω); renaming is identical;
//! * `|Reach(Var d)| ≤ |Reach(body(d))| + 1` — a reference unfolds to its
//!   body's successors.
//!
//! When every leaf compiles exactly, the predicted bound is therefore ≥
//! the real reachable-state count — sound for budget decisions ("this
//! check cannot exceed N states") and checked by the property suite.

use std::collections::HashSet;

use crate::lts::Lts;
use crate::process::Definitions;
use crate::term::{Term, TermArena, TermId};

/// One compiled leaf component of a decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentEstimate {
    /// Reachable states of the component LTS (the cap when `exact` is
    /// false).
    pub states: u64,
    /// Whether the component compiled fully within the cap.
    pub exact: bool,
}

/// The result of estimating one term's state space.
#[derive(Debug, Clone)]
pub struct StateEstimate {
    components: Vec<ComponentEstimate>,
    predicted: u64,
    exact: bool,
    parallel_count: usize,
    sync_coupling: usize,
}

impl StateEstimate {
    /// The predicted upper bound on reachable states. Only a sound bound
    /// when [`StateEstimate::is_exact`]; saturates at `u64::MAX`.
    pub fn predicted_states(&self) -> u64 {
        self.predicted
    }

    /// Every leaf compiled fully, so the prediction is a proven bound.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The compiled leaf components, left to right.
    pub fn components(&self) -> &[ComponentEstimate] {
        &self.components
    }

    /// Parallel compositions crossed during decomposition.
    pub fn parallel_count(&self) -> usize {
        self.parallel_count
    }

    /// Total synchronised events across those compositions — a coupling
    /// measure: high coupling usually means the real product is far below
    /// the worst-case bound.
    pub fn sync_coupling(&self) -> usize {
        self.sync_coupling
    }
}

/// Estimate the reachable state space of `root` by decomposing through
/// parallel / hide / rename (and definition references) and compiling each
/// leaf with `Lts::build_in` capped at `component_cap` states.
///
/// A leaf that does not fit the cap (or fails to compile at all, e.g.
/// unguarded recursion) contributes `component_cap` states and marks the
/// whole estimate inexact.
pub fn estimate(
    arena: &mut TermArena,
    root: TermId,
    defs: &Definitions,
    component_cap: usize,
) -> StateEstimate {
    let mut est = StateEstimate {
        components: Vec::new(),
        predicted: 0,
        exact: true,
        parallel_count: 0,
        sync_coupling: 0,
    };
    let mut on_path = HashSet::new();
    est.predicted = bound(arena, root, defs, component_cap, &mut est, &mut on_path);
    est
}

/// Recursive bound over the decomposition spine. `on_path` guards against
/// unfolding a definition into itself (e.g. `P = a -> P ⟦A⟧ Q`): a
/// re-encountered body becomes a compile-leaf instead of infinite descent.
/// Depth equals the spine height (parallel/hide/rename nesting), which is
/// small in practice — leaf subtrees are never recursed into.
fn bound(
    arena: &mut TermArena,
    t: TermId,
    defs: &Definitions,
    cap: usize,
    est: &mut StateEstimate,
    on_path: &mut HashSet<TermId>,
) -> u64 {
    match arena.term(t).clone() {
        Term::Parallel { sync, left, right } => {
            est.parallel_count += 1;
            est.sync_coupling += arena.set(sync).len();
            let bl = bound(arena, left, defs, cap, est, on_path);
            let br = bound(arena, right, defs, cap, est, on_path);
            bl.saturating_mul(br).saturating_add(1)
        }
        Term::Hide(inner, _) | Term::Rename(inner, _) => {
            bound(arena, inner, defs, cap, est, on_path).saturating_add(2)
        }
        Term::Var(d) => {
            let body = defs
                .body(d)
                .ok()
                .map(std::sync::Arc::clone)
                .map(|b| arena.intern(&b));
            match body {
                Some(b) if on_path.insert(b) => {
                    let inner = bound(arena, b, defs, cap, est, on_path);
                    on_path.remove(&b);
                    inner.saturating_add(1)
                }
                _ => leaf(arena, t, defs, cap, est),
            }
        }
        _ => leaf(arena, t, defs, cap, est),
    }
}

fn leaf(
    arena: &mut TermArena,
    t: TermId,
    defs: &Definitions,
    cap: usize,
    est: &mut StateEstimate,
) -> u64 {
    let component = match Lts::build_in(arena, t, defs, cap) {
        Ok(lts) => ComponentEstimate {
            states: lts.state_count() as u64,
            exact: true,
        },
        Err(_) => ComponentEstimate {
            states: cap as u64,
            exact: false,
        },
    };
    est.exact &= component.exact;
    est.components.push(component);
    component.states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alphabet, EventSet, Process};

    #[test]
    fn parallel_bound_dominates_the_real_product() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let b = al.intern("b");
        let mut defs = Definitions::new();
        let p = defs.declare("P");
        let q = defs.declare("Q");
        defs.define(p, Process::prefix_chain([a, b], Process::var(p)));
        defs.define(q, Process::prefix_chain([b, a], Process::var(q)));
        let sys = Process::parallel(
            EventSet::from_iter_dedup([b]),
            Process::var(p),
            Process::var(q),
        );

        let mut arena = TermArena::new();
        let root = arena.intern(&sys);
        let est = estimate(&mut arena, root, &defs, 1_000);
        assert!(est.is_exact());
        assert_eq!(est.components().len(), 2);
        assert_eq!(est.parallel_count(), 1);
        assert_eq!(est.sync_coupling(), 1);

        let actual = Lts::build_in(&mut arena, root, &defs, 10_000)
            .unwrap()
            .state_count() as u64;
        assert!(
            est.predicted_states() >= actual,
            "predicted {} < actual {actual}",
            est.predicted_states()
        );
    }

    #[test]
    fn hide_and_var_wrappers_keep_the_bound_sound() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let b = al.intern("b");
        let mut defs = Definitions::new();
        let d = defs.declare("D");
        defs.define(d, Process::prefix_chain([a, b], Process::var(d)));
        let p = Process::hide(Process::var(d), EventSet::from_iter_dedup([a]));

        let mut arena = TermArena::new();
        let root = arena.intern(&p);
        let est = estimate(&mut arena, root, &defs, 1_000);
        assert!(est.is_exact());
        let actual = Lts::build_in(&mut arena, root, &defs, 10_000)
            .unwrap()
            .state_count() as u64;
        assert!(est.predicted_states() >= actual);
    }

    #[test]
    fn capped_components_mark_the_estimate_inexact() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let b = al.intern("b");
        let mut defs = Definitions::new();
        let d = defs.declare("D");
        defs.define(
            d,
            Process::prefix_chain([a, b, a, b, a, b], Process::var(d)),
        );

        let mut arena = TermArena::new();
        let root = arena.intern(&Process::var(d));
        let est = estimate(&mut arena, root, &defs, 2);
        assert!(!est.is_exact());
        assert_eq!(
            est.components(),
            &[ComponentEstimate {
                states: 2,
                exact: false
            }]
        );
    }

    #[test]
    fn self_parallel_recursion_terminates() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let mut defs = Definitions::new();
        let d = defs.declare("D");
        // D = a -> (D ||| D): decomposition must not unfold D forever.
        defs.define(
            d,
            Process::prefix(a, Process::interleave(Process::var(d), Process::var(d))),
        );
        let mut arena = TermArena::new();
        let root = arena.intern(&Process::var(d));
        let est = estimate(&mut arena, root, &defs, 64);
        // The body is a leaf (prefix at the top), so this stays exact or
        // capped — either way it returns.
        assert!(est.predicted_states() > 0);
    }
}
