//! Ergonomic free functions for building processes in tests and examples.
//!
//! These mirror the CSPm surface syntax: `prefix`, `choice`, `par`, etc.

use crate::alphabet::{EventId, EventSet};
use crate::process::Process;

/// `e -> p`
pub fn prefix(e: EventId, p: Process) -> Process {
    Process::prefix(e, p)
}

/// `p [] q`
pub fn choice(p: Process, q: Process) -> Process {
    Process::external_choice(p, q)
}

/// `p |~| q`
pub fn ichoice(p: Process, q: Process) -> Process {
    Process::internal_choice(p, q)
}

/// `p ; q`
pub fn seq(p: Process, q: Process) -> Process {
    Process::seq(p, q)
}

/// `p [| sync |] q`
pub fn par<I: IntoIterator<Item = EventId>>(p: Process, sync: I, q: Process) -> Process {
    Process::parallel(sync.into_iter().collect::<EventSet>(), p, q)
}

/// `p ||| q`
pub fn interleave(p: Process, q: Process) -> Process {
    Process::interleave(p, q)
}

/// `p \ hidden`
pub fn hide<I: IntoIterator<Item = EventId>>(p: Process, hidden: I) -> Process {
    Process::hide(p, hidden.into_iter().collect::<EventSet>())
}

/// `STOP`
pub fn stop() -> Process {
    Process::Stop
}

/// `SKIP`
pub fn skip() -> Process {
    Process::Skip
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_match_constructors() {
        let e0 = EventId::from_index(0);
        assert_eq!(prefix(e0, stop()), Process::prefix(e0, Process::Stop));
        assert_eq!(
            par(skip(), [e0], stop()),
            Process::parallel(EventSet::singleton(e0), Process::Skip, Process::Stop)
        );
        assert_eq!(
            hide(stop(), [e0]),
            Process::hide(Process::Stop, EventSet::singleton(e0))
        );
    }
}
