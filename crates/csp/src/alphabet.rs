//! Event interning, transition labels, event sets and renaming maps.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An interned visible event.
///
/// `EventId`s are small, copyable handles into an [`Alphabet`]. Two ids are
/// equal exactly when they were interned from the same event name in the same
/// alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub(crate) u32);

impl EventId {
    /// Raw index of this event within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct an event id from a raw index.
    ///
    /// Intended for deserialisation and table-driven tests; the caller must
    /// ensure the index is valid for the alphabet it will be used with.
    pub fn from_index(index: usize) -> Self {
        EventId(index as u32)
    }
}

/// A transition label: a visible event, the silent `τ`, or termination `✓`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Label {
    /// The silent, internal action.
    Tau,
    /// Successful termination (CSP's `✓`).
    Tick,
    /// A visible event.
    Event(EventId),
}

impl Label {
    /// Is this the silent action?
    pub fn is_tau(self) -> bool {
        matches!(self, Label::Tau)
    }

    /// Is this the termination signal?
    pub fn is_tick(self) -> bool {
        matches!(self, Label::Tick)
    }

    /// The visible event carried by this label, if any.
    pub fn event(self) -> Option<EventId> {
        match self {
            Label::Event(e) => Some(e),
            _ => None,
        }
    }
}

/// An interner mapping event names (e.g. `"send.reqSw"`) to [`EventId`]s.
///
/// The alphabet also remembers the dotted structure of compound CSPm events so
/// that channel-based sets (`{| send |}` in CSPm) can be reconstructed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Alphabet {
    names: Vec<String>,
    by_name: BTreeMap<String, EventId>,
}

impl Alphabet {
    /// Create an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> EventId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = EventId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned event by name.
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.by_name.get(name).copied()
    }

    /// The name of an event.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this alphabet.
    pub fn name(&self, id: EventId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned events.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All events whose name equals `channel` or starts with `channel.`.
    ///
    /// This implements CSPm's *productions* operator `{| channel |}`.
    pub fn productions(&self, channel: &str) -> EventSet {
        let prefix = format!("{channel}.");
        self.iter()
            .filter(|&(_, name)| name == channel || name.starts_with(&prefix))
            .map(|(id, _)| id)
            .collect()
    }

    /// Iterate over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (EventId(i as u32), n.as_str()))
    }

    /// The set of every event in the alphabet.
    pub fn universe(&self) -> EventSet {
        (0..self.names.len() as u32).map(EventId).collect()
    }
}

/// An immutable set of visible events, stored sorted for cheap hashing.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventSet {
    sorted: Vec<EventId>,
}

impl EventSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A singleton set.
    pub fn singleton(e: EventId) -> Self {
        EventSet { sorted: vec![e] }
    }

    /// Build from any iterator of events (duplicates are removed).
    pub fn from_iter_dedup<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        let mut v: Vec<EventId> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        EventSet { sorted: v }
    }

    /// Membership test.
    pub fn contains(&self, e: EventId) -> bool {
        self.sorted.binary_search(&e).is_ok()
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Set union.
    pub fn union(&self, other: &EventSet) -> EventSet {
        EventSet::from_iter_dedup(self.sorted.iter().chain(other.sorted.iter()).copied())
    }

    /// Set intersection.
    pub fn intersection(&self, other: &EventSet) -> EventSet {
        EventSet {
            sorted: self
                .sorted
                .iter()
                .copied()
                .filter(|e| other.contains(*e))
                .collect(),
        }
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &EventSet) -> EventSet {
        EventSet {
            sorted: self
                .sorted
                .iter()
                .copied()
                .filter(|e| !other.contains(*e))
                .collect(),
        }
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset(&self, other: &EventSet) -> bool {
        self.sorted.iter().all(|e| other.contains(*e))
    }

    /// Iterate over the events in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.sorted.iter().copied()
    }
}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        EventSet::from_iter_dedup(iter)
    }
}

impl Extend<EventId> for EventSet {
    fn extend<I: IntoIterator<Item = EventId>>(&mut self, iter: I) {
        let extra: Vec<EventId> = iter.into_iter().collect();
        *self = EventSet::from_iter_dedup(self.sorted.iter().copied().chain(extra));
    }
}

impl fmt::Display for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.sorted.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", e.0)?;
        }
        write!(f, "}}")
    }
}

/// A functional event renaming, as used by the CSP renaming operator `P[[R]]`.
///
/// Events not present in the map are left unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RenameMap {
    pairs: Vec<(EventId, EventId)>,
}

impl RenameMap {
    /// An empty (identity) renaming.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the mapping `from ↦ to`, replacing any previous mapping of `from`.
    pub fn insert(&mut self, from: EventId, to: EventId) {
        match self.pairs.binary_search_by_key(&from, |p| p.0) {
            Ok(i) => self.pairs[i].1 = to,
            Err(i) => self.pairs.insert(i, (from, to)),
        }
    }

    /// Apply the renaming to one event.
    pub fn apply(&self, e: EventId) -> EventId {
        match self.pairs.binary_search_by_key(&e, |p| p.0) {
            Ok(i) => self.pairs[i].1,
            Err(_) => e,
        }
    }

    /// Iterate over the `(from, to)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.pairs.iter().copied()
    }

    /// The composition `other ∘ self`: apply `self` first, then `other`.
    pub fn then(&self, other: &RenameMap) -> RenameMap {
        let mut out = RenameMap::new();
        for (f, t) in self.iter() {
            out.insert(f, other.apply(t));
        }
        for (f, t) in other.iter() {
            if self.pairs.binary_search_by_key(&f, |p| p.0).is_err() {
                out.insert(f, t);
            }
        }
        out
    }

    /// Number of explicit mappings.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the renaming is the identity.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl FromIterator<(EventId, EventId)> for RenameMap {
    fn from_iter<I: IntoIterator<Item = (EventId, EventId)>>(iter: I) -> Self {
        let mut m = RenameMap::new();
        for (f, t) in iter {
            m.insert(f, t);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let a2 = ab.intern("a");
        assert_eq!(a, a2);
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut ab = Alphabet::new();
        let id = ab.intern("send.reqSw");
        assert_eq!(ab.lookup("send.reqSw"), Some(id));
        assert_eq!(ab.name(id), "send.reqSw");
        assert_eq!(ab.lookup("missing"), None);
    }

    #[test]
    fn productions_matches_channel_prefix() {
        let mut ab = Alphabet::new();
        let s1 = ab.intern("send.a");
        let s2 = ab.intern("send.b");
        let _r = ab.intern("rec.a");
        let bare = ab.intern("send");
        let prods = ab.productions("send");
        assert!(prods.contains(s1) && prods.contains(s2) && prods.contains(bare));
        assert_eq!(prods.len(), 3);
    }

    #[test]
    fn event_set_ops() {
        let a = EventId(0);
        let b = EventId(1);
        let c = EventId(2);
        let s1: EventSet = [a, b].into_iter().collect();
        let s2: EventSet = [b, c].into_iter().collect();
        assert_eq!(s1.union(&s2).len(), 3);
        assert_eq!(s1.intersection(&s2), EventSet::singleton(b));
        assert_eq!(s1.difference(&s2), EventSet::singleton(a));
        assert!(EventSet::singleton(b).is_subset(&s1));
        assert!(!s1.is_subset(&s2));
    }

    #[test]
    fn event_set_dedups() {
        let a = EventId(3);
        let s = EventSet::from_iter_dedup([a, a, a]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn rename_map_applies_and_defaults_to_identity() {
        let mut m = RenameMap::new();
        m.insert(EventId(0), EventId(5));
        assert_eq!(m.apply(EventId(0)), EventId(5));
        assert_eq!(m.apply(EventId(1)), EventId(1));
        m.insert(EventId(0), EventId(6));
        assert_eq!(m.apply(EventId(0)), EventId(6));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn universe_covers_all() {
        let mut ab = Alphabet::new();
        ab.intern("x");
        ab.intern("y");
        assert_eq!(ab.universe().len(), 2);
    }
}
