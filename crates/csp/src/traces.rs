//! The finite-traces model: extraction of trace sets from an [`Lts`].
//!
//! Traces are sequences of visible events, possibly ending with the
//! termination signal `✓`, exactly as defined in §IV-A2 of the paper
//! (`Σ*✓ = { tr ⌢ en | tr ∈ Σ* ∧ en ∈ {⟨⟩, ⟨✓⟩} }`).

use std::collections::BTreeSet;
use std::fmt;

use crate::alphabet::{Alphabet, EventId, EventSet, Label};
use crate::lts::{Lts, StateId};

/// One element of a trace: a visible event or the termination signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEvent {
    /// A visible event.
    Event(EventId),
    /// Successful termination `✓`; only ever the last element of a trace.
    Tick,
}

impl TraceEvent {
    /// The event id, if this is a visible event.
    pub fn event(self) -> Option<EventId> {
        match self {
            TraceEvent::Event(e) => Some(e),
            TraceEvent::Tick => None,
        }
    }
}

/// A finite trace: a sequence of visible events, possibly `✓`-terminated.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// The empty trace `⟨⟩`.
    pub fn empty() -> Self {
        Trace::default()
    }

    /// Build a trace from visible events only.
    pub fn from_events<I: IntoIterator<Item = EventId>>(events: I) -> Self {
        Trace {
            events: events.into_iter().map(TraceEvent::Event).collect(),
        }
    }

    /// The elements of the trace.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Length of the trace (counting `✓` if present).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether this is the empty trace.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the trace ends in `✓`.
    pub fn is_terminated(&self) -> bool {
        matches!(self.events.last(), Some(TraceEvent::Tick))
    }

    /// Append an element, returning the extended trace.
    pub fn extended(&self, ev: TraceEvent) -> Trace {
        let mut events = self.events.clone();
        events.push(ev);
        Trace { events }
    }

    /// Is `self` a prefix of `other` (`self ≤ other` in the paper)?
    pub fn is_prefix_of(&self, other: &Trace) -> bool {
        other.events.starts_with(&self.events)
    }

    /// The trace with every event in `hidden` removed (`tr \ A`).
    ///
    /// `✓` is never hidden.
    pub fn hide(&self, hidden: &EventSet) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .copied()
                .filter(|ev| match ev {
                    TraceEvent::Event(e) => !hidden.contains(*e),
                    TraceEvent::Tick => true,
                })
                .collect(),
        }
    }

    /// Render using event names from `alphabet`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> TraceDisplay<'a> {
        TraceDisplay {
            trace: self,
            alphabet,
        }
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

/// Helper returned by [`Trace::display`]: renders a trace with event names.
#[derive(Debug)]
pub struct TraceDisplay<'a> {
    trace: &'a Trace,
    alphabet: &'a Alphabet,
}

impl fmt::Display for TraceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, ev) in self.trace.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match ev {
                TraceEvent::Event(e) => write!(f, "{}", self.alphabet.name(*e))?,
                TraceEvent::Tick => write!(f, "✓")?,
            }
        }
        write!(f, "⟩")
    }
}

/// All traces of `lts` with at most `max_len` elements.
///
/// The result is prefix-closed and always contains the empty trace. `τ`
/// transitions contribute no trace elements.
pub fn traces_upto(lts: &Lts, max_len: usize) -> BTreeSet<Trace> {
    let mut result = BTreeSet::new();
    // Worklist of (state, trace-so-far). Visible behaviour may loop, so we
    // bound by trace length rather than visited states.
    let mut work: Vec<(StateId, Trace)> = vec![(lts.initial(), Trace::empty())];
    let mut seen: BTreeSet<(StateId, Trace)> = BTreeSet::new();
    while let Some((state, trace)) = work.pop() {
        if !seen.insert((state, trace.clone())) {
            continue;
        }
        result.insert(trace.clone());
        if trace.len() >= max_len {
            continue;
        }
        for &(label, target) in lts.edges(state) {
            match label {
                Label::Tau => work.push((target, trace.clone())),
                Label::Tick => {
                    result.insert(trace.extended(TraceEvent::Tick));
                }
                Label::Event(e) => {
                    work.push((target, trace.extended(TraceEvent::Event(e))));
                }
            }
        }
    }
    result
}

/// Does `lts` exhibit exactly the visible trace `events` (ignoring whatever
/// may come after)?
pub fn has_trace(lts: &Lts, events: &[EventId]) -> bool {
    let mut current: Vec<StateId> = tau_closure_set(lts, lts.initial());
    for &e in events {
        let mut next: BTreeSet<StateId> = BTreeSet::new();
        for &s in &current {
            for &(label, target) in lts.edges(s) {
                if label == Label::Event(e) {
                    next.extend(tau_closure_set(lts, target));
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        current = next.into_iter().collect();
    }
    true
}

fn tau_closure_set(lts: &Lts, s: StateId) -> Vec<StateId> {
    lts.tau_closure(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Definitions, Process};

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    fn lts_of(p: Process) -> Lts {
        Lts::build(p, &Definitions::new(), 10_000).unwrap()
    }

    #[test]
    fn traces_of_stop_is_empty_trace_only() {
        let ts = traces_upto(&lts_of(Process::Stop), 5);
        assert_eq!(ts.len(), 1);
        assert!(ts.contains(&Trace::empty()));
    }

    #[test]
    fn traces_of_skip_includes_tick() {
        let ts = traces_upto(&lts_of(Process::Skip), 5);
        assert_eq!(ts.len(), 2);
        assert!(ts.contains(&Trace::empty().extended(TraceEvent::Tick)));
    }

    #[test]
    fn traces_of_prefix_matches_definition() {
        // traces(e -> STOP) = { ⟨⟩, ⟨e⟩ }
        let ts = traces_upto(&lts_of(Process::prefix(e(0), Process::Stop)), 5);
        assert_eq!(ts.len(), 2);
        assert!(ts.contains(&Trace::from_events([e(0)])));
    }

    #[test]
    fn traces_are_prefix_closed() {
        let p = Process::prefix_chain([e(0), e(1), e(2)], Process::Stop);
        let ts = traces_upto(&lts_of(p), 10);
        for t in &ts {
            for cut in 0..t.len() {
                let prefix: Trace = t.events()[..cut].iter().copied().collect();
                assert!(ts.contains(&prefix), "missing prefix of {t:?}");
            }
        }
    }

    #[test]
    fn length_bound_is_respected() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let lts = Lts::build(Process::var(d), &defs, 100).unwrap();
        let ts = traces_upto(&lts, 3);
        assert_eq!(ts.iter().map(Trace::len).max(), Some(3));
        assert_eq!(ts.len(), 4); // ⟨⟩, ⟨a⟩, ⟨a,a⟩, ⟨a,a,a⟩
    }

    #[test]
    fn interleave_traces_are_shuffles() {
        let p = Process::interleave(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let ts = traces_upto(&lts_of(p), 5);
        assert!(ts.contains(&Trace::from_events([e(0), e(1)])));
        assert!(ts.contains(&Trace::from_events([e(1), e(0)])));
    }

    #[test]
    fn has_trace_follows_taus() {
        let p = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let lts = lts_of(p);
        assert!(has_trace(&lts, &[e(0)]));
        assert!(has_trace(&lts, &[e(1)]));
        assert!(!has_trace(&lts, &[e(0), e(1)]));
    }

    #[test]
    fn trace_hiding_matches_paper_definition() {
        let tr = Trace::from_events([e(0), e(1), e(0)]);
        let hidden = EventSet::singleton(e(0));
        assert_eq!(tr.hide(&hidden), Trace::from_events([e(1)]));
    }

    #[test]
    fn prefix_relation() {
        let t1 = Trace::from_events([e(0)]);
        let t2 = Trace::from_events([e(0), e(1)]);
        assert!(t1.is_prefix_of(&t2));
        assert!(!t2.is_prefix_of(&t1));
        assert!(Trace::empty().is_prefix_of(&t1));
    }
}
