//! The process syntax tree and named (possibly recursive) definitions.

use std::fmt;
use std::sync::Arc;

use crate::alphabet::{EventId, EventSet, RenameMap};
use crate::error::CspError;

/// Handle to a named process definition inside a [`Definitions`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DefId(pub(crate) u32);

impl DefId {
    /// Raw index of this definition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An immutable CSP process term.
///
/// Children are shared through [`Arc`], so cloning a process is cheap and the
/// state-space explorer can treat process terms as values. Structural equality
/// and hashing are derived, which is what lets the LTS builder deduplicate
/// states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Process {
    /// Deadlock: engages in no event.
    Stop,
    /// Successful termination: performs `✓` then becomes [`Process::Omega`].
    Skip,
    /// The terminated process. Not normally written by users; it is the
    /// result of `Skip` performing `✓`.
    Omega,
    /// Event prefix `e -> P`.
    Prefix(EventId, Arc<Process>),
    /// External choice `P1 [] P2 [] ...` (n-ary to support replication).
    ExternalChoice(Vec<Arc<Process>>),
    /// Internal (nondeterministic) choice `P1 |~| P2 |~| ...`.
    InternalChoice(Vec<Arc<Process>>),
    /// Sequential composition `P ; Q`.
    Seq(Arc<Process>, Arc<Process>),
    /// Generalised parallel `P [| A |] Q`: synchronise on `A` (and `✓`).
    Parallel {
        /// The synchronisation set.
        sync: Arc<EventSet>,
        /// Left operand.
        left: Arc<Process>,
        /// Right operand.
        right: Arc<Process>,
    },
    /// Hiding `P \ A`: events in `A` become `τ`.
    Hide(Arc<Process>, Arc<EventSet>),
    /// Functional renaming `P[[R]]`.
    Rename(Arc<Process>, Arc<RenameMap>),
    /// Interrupt `P /\ Q`: `P` runs, but any visible action of `Q` may take
    /// over at any moment, abandoning `P`.
    Interrupt(Arc<Process>, Arc<Process>),
    /// Timeout (sliding choice) `P [> Q`: offer `P`'s initial actions, but an
    /// internal timeout may resolve to `Q` at any moment.
    Timeout(Arc<Process>, Arc<Process>),
    /// Reference to a named definition; the recursion knot.
    Var(DefId),
}

impl Process {
    /// `e -> p`
    pub fn prefix(e: EventId, p: Process) -> Process {
        Process::Prefix(e, Arc::new(p))
    }

    /// A chain of prefixes ending in `last`: `es[0] -> es[1] -> ... -> last`.
    pub fn prefix_chain<I: IntoIterator<Item = EventId>>(es: I, last: Process) -> Process {
        let events: Vec<EventId> = es.into_iter().collect();
        events
            .into_iter()
            .rev()
            .fold(last, |acc, e| Process::prefix(e, acc))
    }

    /// Binary external choice `p [] q`.
    pub fn external_choice(p: Process, q: Process) -> Process {
        Process::external_choice_all(vec![p, q])
    }

    /// N-ary external choice. Flattens nested choices; an empty list is `Stop`.
    pub fn external_choice_all(ps: Vec<Process>) -> Process {
        let mut flat: Vec<Arc<Process>> = Vec::with_capacity(ps.len());
        for p in ps {
            match p {
                Process::ExternalChoice(children) => flat.extend(children),
                other => flat.push(Arc::new(other)),
            }
        }
        match flat.len() {
            0 => Process::Stop,
            1 => (*flat.pop().expect("len checked")).clone(),
            _ => Process::ExternalChoice(flat),
        }
    }

    /// Binary internal choice `p |~| q`.
    pub fn internal_choice(p: Process, q: Process) -> Process {
        Process::internal_choice_all(vec![p, q])
    }

    /// N-ary internal choice. An empty list is `Stop`; a singleton is itself.
    pub fn internal_choice_all(ps: Vec<Process>) -> Process {
        let mut flat: Vec<Arc<Process>> = Vec::with_capacity(ps.len());
        for p in ps {
            match p {
                Process::InternalChoice(children) => flat.extend(children),
                other => flat.push(Arc::new(other)),
            }
        }
        match flat.len() {
            0 => Process::Stop,
            1 => (*flat.pop().expect("len checked")).clone(),
            _ => Process::InternalChoice(flat),
        }
    }

    /// Sequential composition `p ; q`.
    pub fn seq(p: Process, q: Process) -> Process {
        Process::Seq(Arc::new(p), Arc::new(q))
    }

    /// Generalised parallel `p [| sync |] q`.
    pub fn parallel(sync: EventSet, p: Process, q: Process) -> Process {
        Process::Parallel {
            sync: Arc::new(sync),
            left: Arc::new(p),
            right: Arc::new(q),
        }
    }

    /// Interleaving `p ||| q` — parallel with an empty synchronisation set.
    pub fn interleave(p: Process, q: Process) -> Process {
        Process::parallel(EventSet::empty(), p, q)
    }

    /// N-ary interleaving, right-associated. Empty input is `Skip`
    /// (the unit of `|||`).
    pub fn interleave_all(ps: Vec<Process>) -> Process {
        let mut iter = ps.into_iter().rev();
        match iter.next() {
            None => Process::Skip,
            Some(last) => iter.fold(last, |acc, p| Process::interleave(p, acc)),
        }
    }

    /// Hiding `p \ hidden`.
    pub fn hide(p: Process, hidden: EventSet) -> Process {
        Process::Hide(Arc::new(p), Arc::new(hidden))
    }

    /// Renaming `p[[map]]`.
    pub fn rename(p: Process, map: RenameMap) -> Process {
        Process::Rename(Arc::new(p), Arc::new(map))
    }

    /// Interrupt `p /\ q`.
    pub fn interrupt(p: Process, q: Process) -> Process {
        Process::Interrupt(Arc::new(p), Arc::new(q))
    }

    /// Timeout (sliding choice) `p [> q`.
    pub fn timeout(p: Process, q: Process) -> Process {
        Process::Timeout(Arc::new(p), Arc::new(q))
    }

    /// A reference to the named definition `d`.
    pub fn var(d: DefId) -> Process {
        Process::Var(d)
    }

    /// Guard: `p` if `cond` holds, otherwise `Stop`.
    pub fn guard(cond: bool, p: Process) -> Process {
        if cond {
            p
        } else {
            Process::Stop
        }
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Process::Stop => write!(f, "STOP"),
            Process::Skip => write!(f, "SKIP"),
            Process::Omega => write!(f, "Ω"),
            Process::Prefix(e, p) => write!(f, "{} -> {}", e.0, p),
            Process::ExternalChoice(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " [] ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Process::InternalChoice(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " |~| ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Process::Seq(p, q) => write!(f, "({p} ; {q})"),
            Process::Parallel { sync, left, right } => {
                if sync.is_empty() {
                    write!(f, "({left} ||| {right})")
                } else {
                    write!(f, "({left} [|{sync}|] {right})")
                }
            }
            Process::Hide(p, a) => write!(f, "({p} \\ {a})"),
            Process::Interrupt(p, q) => write!(f, "({p} /\\ {q})"),
            Process::Timeout(p, q) => write!(f, "({p} [> {q})"),
            Process::Rename(p, _) => write!(f, "({p}[[..]])"),
            Process::Var(d) => write!(f, "X{}", d.0),
        }
    }
}

/// A table of named, possibly mutually recursive, process definitions.
///
/// Definitions are used in two phases: [`Definitions::declare`] reserves a
/// name (so recursive references can be built), then [`Definitions::define`]
/// supplies the body.
#[derive(Debug, Clone, Default)]
pub struct Definitions {
    names: Vec<String>,
    bodies: Vec<Option<Arc<Process>>>,
}

impl Definitions {
    /// An empty definition table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve a definition slot named `name` and return its handle.
    pub fn declare(&mut self, name: &str) -> DefId {
        let id = DefId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.bodies.push(None);
        id
    }

    /// Supply (or replace) the body for `id`.
    pub fn define(&mut self, id: DefId, body: Process) {
        self.bodies[id.index()] = Some(Arc::new(body));
    }

    /// Declare and define in one step.
    pub fn add(&mut self, name: &str, body: Process) -> DefId {
        let id = self.declare(name);
        self.define(id, body);
        id
    }

    /// The body of definition `id`.
    ///
    /// # Errors
    ///
    /// Returns [`CspError::UndefinedProcess`] if the definition was declared
    /// but never given a body.
    pub fn body(&self, id: DefId) -> Result<&Arc<Process>, CspError> {
        self.bodies[id.index()]
            .as_ref()
            .ok_or_else(|| CspError::UndefinedProcess {
                name: self.names[id.index()].clone(),
            })
    }

    /// The name a definition was declared under.
    pub fn name(&self, id: DefId) -> &str {
        &self.names[id.index()]
    }

    /// Find a definition by name.
    pub fn lookup(&self, name: &str) -> Option<DefId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| DefId(i as u32))
    }

    /// Number of declared definitions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Iterate over all declared definition handles, in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = DefId> {
        (0..self.names.len() as u32).map(DefId)
    }

    /// Whether any definitions exist.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    #[test]
    fn external_choice_flattens_and_normalises() {
        let p = Process::prefix(e(0), Process::Stop);
        let q = Process::prefix(e(1), Process::Stop);
        let r = Process::prefix(e(2), Process::Stop);
        let nested = Process::external_choice(p.clone(), Process::external_choice(q, r));
        match nested {
            Process::ExternalChoice(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened choice, got {other}"),
        }
        assert_eq!(Process::external_choice_all(vec![]), Process::Stop);
        assert_eq!(Process::external_choice_all(vec![p.clone()]), p);
    }

    #[test]
    fn interleave_all_unit_is_skip() {
        assert_eq!(Process::interleave_all(vec![]), Process::Skip);
    }

    #[test]
    fn prefix_chain_builds_in_order() {
        let p = Process::prefix_chain([e(0), e(1)], Process::Skip);
        match p {
            Process::Prefix(first, rest) => {
                assert_eq!(first, e(0));
                match rest.as_ref() {
                    Process::Prefix(second, _) => assert_eq!(*second, e(1)),
                    other => panic!("unexpected {other}"),
                }
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn definitions_two_phase() {
        let mut defs = Definitions::new();
        let id = defs.declare("P");
        assert!(defs.body(id).is_err());
        defs.define(id, Process::Stop);
        assert_eq!(defs.body(id).unwrap().as_ref(), &Process::Stop);
        assert_eq!(defs.name(id), "P");
        assert_eq!(defs.lookup("P"), Some(id));
        assert_eq!(defs.lookup("Q"), None);
    }

    #[test]
    fn guard_selects_stop() {
        let p = Process::prefix(e(0), Process::Stop);
        assert_eq!(Process::guard(false, p.clone()), Process::Stop);
        assert_eq!(Process::guard(true, p.clone()), p);
    }
}
