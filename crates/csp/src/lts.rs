//! Labelled transition system construction by explicit state enumeration.

use std::collections::HashMap;

use crate::alphabet::Label;
use crate::error::CspError;
use crate::process::{Definitions, Process};
use crate::term::{TermArena, TermId};

/// Index of a state within an [`Lts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Raw index of this state.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index (for tests and serialisation).
    pub fn from_index(index: usize) -> Self {
        StateId(index as u32)
    }
}

/// An explicit labelled transition system: the reachable state graph of a
/// process term.
///
/// States are deduplicated by hash-consed [`TermId`]s — structurally equal
/// terms intern to the same id, so the visited-set lookup is a single word
/// comparison instead of a deep tree hash. This is the miniature equivalent
/// of FDR's *explicate* compilation step.
#[derive(Debug, Clone)]
pub struct Lts {
    states: Vec<Process>,
    transitions: Vec<Vec<(Label, StateId)>>,
    initial: StateId,
}

impl Lts {
    /// Explore the reachable states of `root` breadth-first.
    ///
    /// # Errors
    ///
    /// * [`CspError::StateSpaceExceeded`] if more than `max_states` distinct
    ///   states are reachable.
    /// * Any error from the firing rules (undefined or unguarded recursion).
    pub fn build(root: Process, defs: &Definitions, max_states: usize) -> Result<Lts, CspError> {
        let mut arena = TermArena::new();
        let root = arena.intern(&root);
        Lts::build_in(&mut arena, root, defs, max_states)
    }

    /// Explore the reachable states of an already-interned term, sharing
    /// `arena`'s hash-consed structure (and its memoised definition bodies)
    /// with any previous builds against the same [`Definitions`] table.
    ///
    /// This is the entry point for callers that compile many related
    /// processes — repeated assertions over one script, conformance checks
    /// of many traces against one spec — where re-interning from scratch
    /// would redo the structural work the arena exists to amortise.
    ///
    /// # Errors
    ///
    /// As for [`Lts::build`].
    pub fn build_in(
        arena: &mut TermArena,
        root: TermId,
        defs: &Definitions,
        max_states: usize,
    ) -> Result<Lts, CspError> {
        let mut ids: Vec<TermId> = Vec::new();
        let mut index: HashMap<TermId, StateId> = HashMap::new();
        let mut out: Vec<Vec<(Label, StateId)>> = Vec::new();

        let initial = StateId(0);
        index.insert(root, initial);
        ids.push(root);
        out.push(Vec::new());

        let mut frontier = 0usize;
        while frontier < ids.len() {
            let current = ids[frontier];
            let succs = arena.transitions(current, defs)?;
            let mut edges = Vec::with_capacity(succs.len());
            for (label, succ) in succs {
                let id = match index.get(&succ) {
                    Some(&id) => id,
                    None => {
                        if ids.len() >= max_states {
                            return Err(CspError::StateSpaceExceeded { limit: max_states });
                        }
                        let id = StateId(ids.len() as u32);
                        index.insert(succ, id);
                        ids.push(succ);
                        out.push(Vec::new());
                        id
                    }
                };
                edges.push((label, id));
            }
            edges.sort_unstable_by_key(|a| (a.0, a.1));
            edges.dedup();
            out[frontier] = edges;
            frontier += 1;
        }

        let states = ids
            .into_iter()
            .map(|t| arena.process_of(t).as_ref().clone())
            .collect();
        Ok(Lts {
            states,
            transitions: out,
            initial,
        })
    }

    /// Assemble an LTS directly from states and transition lists (used by
    /// compression and by cache deserialisation). State 0 is the initial
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `transitions` have different lengths or are
    /// empty.
    pub fn from_parts(states: Vec<Process>, transitions: Vec<Vec<(Label, StateId)>>) -> Lts {
        assert_eq!(states.len(), transitions.len());
        assert!(!states.is_empty());
        Lts {
            states,
            transitions,
            initial: StateId(0),
        }
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The process term a state stands for.
    pub fn state(&self, id: StateId) -> &Process {
        &self.states[id.index()]
    }

    /// The outgoing edges of a state, sorted by `(label, target)`.
    pub fn edges(&self, id: StateId) -> &[(Label, StateId)] {
        &self.transitions[id.index()]
    }

    /// Iterate over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Whether `id` has no outgoing transitions at all (deadlock if it is
    /// also not the terminated state `Ω`).
    pub fn is_terminal(&self, id: StateId) -> bool {
        self.transitions[id.index()].is_empty()
    }

    /// States reachable from `from` by following only `τ` transitions
    /// (including `from` itself), in ascending order.
    pub fn tau_closure(&self, from: StateId) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(s) = stack.pop() {
            for &(label, target) in self.edges(s) {
                if label.is_tau() && !seen[target.index()] {
                    seen[target.index()] = true;
                    stack.push(target);
                }
            }
        }
        (0..self.states.len())
            .filter(|&i| seen[i])
            .map(|i| StateId(i as u32))
            .collect()
    }

    /// Whether a `τ`-cycle exists, i.e. the process can diverge.
    ///
    /// Runs Kahn's algorithm on the τ-subgraph: a cycle exists exactly when
    /// topological sorting cannot consume every state.
    pub fn has_tau_cycle(&self) -> bool {
        let n = self.states.len();
        let mut indegree = vec![0usize; n];
        let mut tau_succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, edges) in self.transitions.iter().enumerate() {
            for &(label, target) in edges {
                if label.is_tau() {
                    tau_succs[s].push(target.index());
                    indegree[target.index()] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut processed = 0usize;
        while let Some(s) = queue.pop() {
            processed += 1;
            for &t in &tau_succs[s] {
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    queue.push(t);
                }
            }
        }
        processed < n
    }

    /// The maximum out-degree over all states — the natural per-task work
    /// bound for parallel exploration.
    pub fn max_out_degree(&self) -> usize {
        self.transitions.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Flatten the transition lists into a compact CSR (compressed sparse
    /// row) snapshot for concurrent read-only traversal.
    ///
    /// The per-state `Vec`s of an [`Lts`] are already shareable across
    /// threads, but each is its own allocation; the CSR form packs every
    /// edge into one contiguous array, which keeps a multi-worker product
    /// exploration on warm cache lines instead of chasing pointers.
    pub fn to_csr(&self) -> CsrEdges {
        let mut offsets = Vec::with_capacity(self.transitions.len() + 1);
        let mut edges = Vec::with_capacity(self.transition_count());
        offsets.push(0u32);
        for row in &self.transitions {
            edges.extend_from_slice(row);
            offsets.push(edges.len() as u32);
        }
        CsrEdges { offsets, edges }
    }
}

/// A flat, read-only snapshot of an [`Lts`]'s transition relation in CSR
/// form: one contiguous edge array plus per-state offsets.
///
/// `CsrEdges` is `Send + Sync` and carries no interior mutability, so any
/// number of worker threads can traverse it concurrently without
/// synchronisation. Built by [`Lts::to_csr`].
#[derive(Debug, Clone)]
pub struct CsrEdges {
    offsets: Vec<u32>,
    edges: Vec<(Label, StateId)>,
}

impl CsrEdges {
    /// The outgoing edges of `id`, sorted by `(label, target)` as in the
    /// source [`Lts`].
    pub fn edges(&self, id: StateId) -> &[(Label, StateId)] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{EventId, EventSet};

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    #[test]
    fn recursion_yields_finite_lts() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(
            d,
            Process::prefix(e(0), Process::prefix(e(1), Process::var(d))),
        );
        let lts = Lts::build(Process::var(d), &defs, 100).unwrap();
        assert_eq!(lts.state_count(), 2);
        assert_eq!(lts.transition_count(), 2);
    }

    #[test]
    fn state_limit_is_enforced() {
        let defs = Definitions::new();
        // A chain of 10 distinct prefix states.
        let p = Process::prefix_chain((0..10).map(e), Process::Stop);
        let err = Lts::build(p, &defs, 5).unwrap_err();
        assert!(matches!(err, CspError::StateSpaceExceeded { limit: 5 }));
    }

    #[test]
    fn tau_closure_collects_internal_states() {
        let defs = Definitions::new();
        let p = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let lts = Lts::build(p, &defs, 100).unwrap();
        let closure = lts.tau_closure(lts.initial());
        // initial + both resolved branches
        assert_eq!(closure.len(), 3);
    }

    #[test]
    fn divergence_detected_for_hidden_loop() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let hidden = Process::hide(Process::var(d), EventSet::singleton(e(0)));
        let lts = Lts::build(hidden, &defs, 100).unwrap();
        assert!(lts.has_tau_cycle());
    }

    #[test]
    fn no_divergence_without_tau_cycle() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let lts = Lts::build(Process::var(d), &defs, 100).unwrap();
        assert!(!lts.has_tau_cycle());
    }

    #[test]
    fn parallel_product_states() {
        let defs = Definitions::new();
        let p = Process::interleave(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let lts = Lts::build(p, &defs, 100).unwrap();
        // 2x2 product grid.
        assert_eq!(lts.state_count(), 4);
    }

    #[test]
    fn edges_are_sorted_and_deduped() {
        let defs = Definitions::new();
        // a -> STOP [] a -> STOP produces duplicate edges that must collapse.
        let p = Process::ExternalChoice(vec![
            std::sync::Arc::new(Process::prefix(e(0), Process::Stop)),
            std::sync::Arc::new(Process::prefix(e(0), Process::Stop)),
        ]);
        let lts = Lts::build(p, &defs, 100).unwrap();
        assert_eq!(lts.edges(lts.initial()).len(), 1);
    }

    #[test]
    fn csr_view_matches_edge_lists() {
        let defs = Definitions::new();
        let p = Process::interleave(
            Process::prefix(e(0), Process::prefix(e(1), Process::Stop)),
            Process::prefix(e(2), Process::Stop),
        );
        let lts = Lts::build(p, &defs, 100).unwrap();
        let csr = lts.to_csr();
        assert_eq!(csr.state_count(), lts.state_count());
        assert_eq!(csr.edge_count(), lts.transition_count());
        for s in lts.state_ids() {
            assert_eq!(csr.edges(s), lts.edges(s));
        }
        assert!(lts.max_out_degree() >= 1);
    }

    #[test]
    fn lts_and_csr_are_shareable_across_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Lts>();
        assert_sync_send::<CsrEdges>();
    }
}
