//! Crash-safe persistence properties.
//!
//! 1. Interrupting a refinement at a *random* state budget, then resuming
//!    from the on-disk checkpoint, must reproduce the uninterrupted run
//!    verbatim — verdict, counterexample trace and (for the serial engine,
//!    and for the parallel engine on a pass) the final state count — at
//!    both 1 and 8 threads.
//! 2. Corrupting on-disk cache entries (bit flips, truncation, header
//!    damage) must degrade to a quarantine + recompile, never a wrong
//!    verdict or a panic. Likewise a corrupted checkpoint must restart the
//!    check from scratch, not poison it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use csp::{Definitions, EventId, EventSet, Process};
use fdrlite::{
    CheckId, CheckOptions, Checker, ModelStore, PersistConfig, PersistentCache, ResumePolicy,
};
use proptest::prelude::*;

fn e(n: usize) -> EventId {
    EventId::from_index(n)
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per test case (proptest shrinks re-enter the
/// closure, so a fixed name would cross-contaminate runs).
fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fdrlite-persist-{tag}-{}-{n}", std::process::id()))
}

/// The same random-process strategy the engine-equivalence suite uses:
/// prefixing, both choices, sequencing, interleaving, synchronised
/// parallel and hiding over a 4-event alphabet.
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    let leaf = prop_oneof![
        Just(Process::Stop),
        Just(Process::Skip),
        (0usize..4).prop_map(|i| Process::prefix(e(i), Process::Stop)),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            ((0usize..4), inner.clone()).prop_map(|(i, p)| Process::prefix(e(i), p)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::external_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::internal_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::seq(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::interleave(p, q)),
            (
                inner.clone(),
                inner.clone(),
                proptest::collection::vec(0usize..4, 0..3)
            )
                .prop_map(|(p, q, sync)| {
                    let sync: EventSet = sync.into_iter().map(e).collect();
                    Process::parallel(sync, p, q)
                }),
            (inner, proptest::collection::vec(0usize..4, 1..3)).prop_map(|(p, hide)| {
                let hidden: EventSet = hide.into_iter().map(e).collect();
                Process::hide(p, hidden)
            }),
        ]
    })
    .boxed()
}

fn persisted_store(cache: &Arc<PersistentCache>, resume: ResumePolicy) -> ModelStore {
    let store = ModelStore::new();
    store.set_persist(PersistConfig {
        cache: Arc::clone(cache),
        checkpoint_every: None,
        resume,
    });
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interrupt_and_resume_matches_uninterrupted(
        spec in arb_process(3),
        impl_ in arb_process(4),
        cut in 1u64..40,
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        for &threads in &[1usize, 8] {
            let reference = ModelStore::new().trace_refinement(
                &checker, &spec, &impl_, &defs, threads, &CheckOptions::UNBOUNDED,
            );
            let Ok((ref_verdict, ref_stats)) = reference else {
                // A hard cap aborted the reference; nothing to resume.
                continue;
            };

            let dir = fresh_dir("resume");
            let cache = Arc::new(PersistentCache::open(&dir).expect("cache opens"));
            let cut_opts = CheckOptions { max_states: Some(cut), max_wall_ms: None };
            let (first, _) = persisted_store(&cache, ResumePolicy::Off)
                .trace_refinement(&checker, &spec, &impl_, &defs, threads, &cut_opts)
                .expect("budgeted run cannot hit a hard cap the reference missed");

            let (final_verdict, final_stats) = if let Some(inc) = first.inconclusive() {
                let token = inc.resume.as_deref();
                prop_assert!(
                    token.is_some(),
                    "a budget-cut persistent check must leave a resume token"
                );
                let id = CheckId::from_token(token.unwrap()).expect("token parses");
                persisted_store(&cache, ResumePolicy::Token(id))
                    .trace_refinement(
                        &checker, &spec, &impl_, &defs, threads, &CheckOptions::UNBOUNDED,
                    )
                    .expect("resumed run cannot hit a hard cap the reference missed")
            } else {
                // The check finished before the budget bit; it must already
                // agree with the reference.
                persisted_store(&cache, ResumePolicy::Off)
                    .trace_refinement(
                        &checker, &spec, &impl_, &defs, threads, &CheckOptions::UNBOUNDED,
                    )
                    .expect("warm re-run cannot hit a hard cap the reference missed")
            };

            prop_assert_eq!(&final_verdict, &ref_verdict);
            // State counts: exact for the serial engine (the checkpoint is
            // an exact continuation); the parallel engine's discovery
            // order races on a fail, so only a pass pins the count (the
            // full reachable product).
            if threads == 1 || ref_verdict.is_pass() {
                prop_assert_eq!(final_stats.pairs_discovered, ref_stats.pairs_discovered);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Flip a byte, cut a tail, or wreck the header of `path` according to
/// `mode`/`at`.
fn damage_file(path: &std::path::Path, mode: u8, at: usize) {
    let mut bytes = std::fs::read(path).expect("entry readable");
    if bytes.is_empty() {
        return;
    }
    match mode % 3 {
        0 => {
            let i = at % bytes.len();
            bytes[i] ^= 0x40;
        }
        1 => {
            let keep = at % bytes.len();
            bytes.truncate(keep);
        }
        _ => {
            let end = bytes.len().min(12);
            for b in &mut bytes[..end] {
                *b = b.wrapping_add(1);
            }
        }
    }
    std::fs::write(path, &bytes).expect("entry writable");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corrupted_entries_degrade_to_recompile(
        spec in arb_process(3),
        impl_ in arb_process(4),
        mode in 0u8..3,
        at in 0usize..4096,
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let Ok((ref_verdict, _)) = ModelStore::new().trace_refinement(
            &checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED,
        ) else {
            return Ok(());
        };

        // Warm the cache, then damage every entry on disk.
        let dir = fresh_dir("fuzz");
        let cache = Arc::new(PersistentCache::open(&dir).expect("cache opens"));
        persisted_store(&cache, ResumePolicy::Off)
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .expect("cold run succeeds");
        let mut damaged = 0u64;
        for entry in std::fs::read_dir(&dir).expect("cache dir listable") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|x| x.to_str()) == Some("bin") {
                damage_file(&path, mode, at);
                damaged += 1;
            }
        }
        prop_assert!(damaged > 0, "the warm cache must contain entries to damage");

        // A fresh store over the damaged cache must still reach the
        // reference verdict, quarantining what it rejects.
        let cache2 = Arc::new(PersistentCache::open(&dir).expect("cache reopens"));
        let (verdict, _) = persisted_store(&cache2, ResumePolicy::Off)
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .expect("damaged cache must not abort the check");
        prop_assert_eq!(&verdict, &ref_verdict);
        prop_assert!(
            cache2.quarantined() + cache2.disk_misses() >= damaged,
            "every damaged entry is either rejected or overwritten, never trusted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checkpoint_restarts_cleanly(
        spec in arb_process(3),
        impl_ in arb_process(4),
        cut in 1u64..20,
        mode in 0u8..3,
        at in 0usize..4096,
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let Ok((ref_verdict, _)) = ModelStore::new().trace_refinement(
            &checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED,
        ) else {
            return Ok(());
        };

        let dir = fresh_dir("ckpt");
        let cache = Arc::new(PersistentCache::open(&dir).expect("cache opens"));
        let cut_opts = CheckOptions { max_states: Some(cut), max_wall_ms: None };
        let (first, _) = persisted_store(&cache, ResumePolicy::Off)
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &cut_opts)
            .expect("budgeted run succeeds");
        let Some(token) = first.inconclusive().and_then(|i| i.resume.clone()) else {
            // Conclusive before the cut: no checkpoint to corrupt.
            let _ = std::fs::remove_dir_all(&dir);
            return Ok(());
        };
        let ckpt = dir.join("checkpoints").join(format!("{token}.ckpt"));
        prop_assert!(ckpt.exists(), "the resume token must name a real checkpoint");
        damage_file(&ckpt, mode, at);

        let id = CheckId::from_token(&token).expect("token parses");
        let cache2 = Arc::new(PersistentCache::open(&dir).expect("cache reopens"));
        let (verdict, _) = persisted_store(&cache2, ResumePolicy::Token(id))
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .expect("resume over a damaged checkpoint must not abort");
        prop_assert_eq!(&verdict, &ref_verdict);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
