//! Property-based equivalence of the model-store checking path and the
//! direct per-call path: for randomly generated spec/impl pairs, a check
//! routed through a [`ModelStore`] must return the identical verdict —
//! counterexample trace included — as the direct [`Checker`] call, and a
//! warm store run must be verbatim-equal to the cold one at 1 and 8
//! threads while serving strictly more artifacts from cache.

use csp::{Definitions, EventId, EventSet, Process};
use fdrlite::{CheckOptions, Checker, ModelStore};
use proptest::prelude::*;

fn e(n: usize) -> EventId {
    EventId::from_index(n)
}

/// A random finite process over a 4-event alphabet (same shape as the
/// parallel-engine equivalence suite).
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    let leaf = prop_oneof![
        Just(Process::Stop),
        Just(Process::Skip),
        (0usize..4).prop_map(|i| Process::prefix(e(i), Process::Stop)),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            ((0usize..4), inner.clone()).prop_map(|(i, p)| Process::prefix(e(i), p)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::external_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::internal_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::seq(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::interleave(p, q)),
            (
                inner.clone(),
                inner.clone(),
                proptest::collection::vec(0usize..4, 0..3)
            )
                .prop_map(|(p, q, sync)| {
                    let sync: EventSet = sync.into_iter().map(e).collect();
                    Process::parallel(sync, p, q)
                }),
            (inner, proptest::collection::vec(0usize..4, 1..3)).prop_map(|(p, hide)| {
                let hidden: EventSet = hide.into_iter().map(e).collect();
                Process::hide(p, hidden)
            }),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_path_matches_direct_checker_verbatim(
        spec in arb_process(3),
        impl_ in arb_process(4),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let direct = checker.trace_refinement(&spec, &impl_, &defs);
        let store = ModelStore::new();
        let via_store = store
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .map(|(v, _)| v);
        match (&direct, &via_store) {
            (Ok(d), Ok(s)) => prop_assert_eq!(d, s),
            (Err(de), Err(se)) => prop_assert_eq!(de, se),
            (d, s) => prop_assert!(
                false,
                "paths disagree: direct={:?} store={:?}", d, s
            ),
        }
    }

    #[test]
    fn warm_store_runs_are_verbatim_equal_at_1_and_8_threads(
        spec in arb_process(3),
        impl_ in arb_process(4),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        for threads in [1usize, 8] {
            let store = ModelStore::new();
            let cold = store.trace_refinement(
                &checker, &spec, &impl_, &defs, threads, &CheckOptions::UNBOUNDED);
            let warm = store.trace_refinement(
                &checker, &spec, &impl_, &defs, threads, &CheckOptions::UNBOUNDED);
            match (&cold, &warm) {
                (Ok((cv, cs)), Ok((wv, ws))) => {
                    prop_assert_eq!(cv, wv);
                    // The cold run builds at least the spec's artifacts (it
                    // may still hit, e.g. when spec and impl are equal
                    // terms); the warm run compiles nothing at all.
                    prop_assert!(cs.store_misses > 0);
                    prop_assert!(ws.store_hits > 0);
                    prop_assert_eq!(ws.store_misses, 0);
                }
                (Err(ce), Err(we)) => prop_assert_eq!(ce, we),
                (c, w) => prop_assert!(
                    false,
                    "cold/warm disagree at {} threads: cold={:?} warm={:?}",
                    threads, c, w
                ),
            }
        }
    }

    #[test]
    fn failures_and_fd_store_paths_match_direct_checker(
        spec in arb_process(3),
        impl_ in arb_process(3),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let store = ModelStore::new();

        let direct_f = checker.failures_refinement(&spec, &impl_, &defs);
        let store_f = store
            .failures_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .map(|(v, _)| v);
        match (&direct_f, &store_f) {
            (Ok(d), Ok(s)) => prop_assert_eq!(d, s),
            (Err(de), Err(se)) => prop_assert_eq!(de, se),
            (d, s) => prop_assert!(false, "⊑F disagree: direct={:?} store={:?}", d, s),
        }

        let direct_fd = checker.failures_divergences_refinement(&spec, &impl_, &defs);
        let store_fd = store
            .failures_divergences_refinement(
                &checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .map(|(v, _)| v);
        match (&direct_fd, &store_fd) {
            (Ok(d), Ok(s)) => prop_assert_eq!(d, s),
            (Err(de), Err(se)) => prop_assert_eq!(de, se),
            (d, s) => prop_assert!(false, "⊑FD disagree: direct={:?} store={:?}", d, s),
        }
    }
}
