//! Property-based equivalence of the serial and work-stealing engines on
//! the failures-family models, mirroring `parallel_prop.rs` for `[T=`:
//!
//! 1. For random spec/impl pairs and every thread count from 1 to 8,
//!    `parallel::failures_refinement` and
//!    `parallel::failures_divergences_refinement` must return the
//!    **identical** verdict — exact counterexample trace and failure kind,
//!    not just pass/fail — as the serial checker, and on a pass the same
//!    reachable product-pair count.
//! 2. A cache entry written under the *previous* normal-form format
//!    version (magic `FDRLNRM\x01`, valid checksum) must be quarantined as
//!    stale and recompiled, never decoded — with the verdict unchanged.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use csp::{Definitions, EventId, EventSet, Process};
use fdrlite::{
    parallel, CheckOptions, Checker, ModelStore, PersistConfig, PersistentCache, ResumePolicy,
};
use proptest::prelude::*;

fn e(n: usize) -> EventId {
    EventId::from_index(n)
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fdrlite-models-{tag}-{}-{n}", std::process::id()))
}

/// The same random-process strategy the engine-equivalence suite uses:
/// prefixing, both choices, sequencing, interleaving, synchronised
/// parallel and hiding over a 4-event alphabet. Internal choice and hiding
/// matter most here — they create the unstable states and nontrivial
/// acceptance sets that distinguish `[F=` from `[T=`.
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    let leaf = prop_oneof![
        Just(Process::Stop),
        Just(Process::Skip),
        (0usize..4).prop_map(|i| Process::prefix(e(i), Process::Stop)),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            ((0usize..4), inner.clone()).prop_map(|(i, p)| Process::prefix(e(i), p)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::external_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::internal_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::seq(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::interleave(p, q)),
            (
                inner.clone(),
                inner.clone(),
                proptest::collection::vec(0usize..4, 0..3)
            )
                .prop_map(|(p, q, sync)| {
                    let sync: EventSet = sync.into_iter().map(e).collect();
                    Process::parallel(sync, p, q)
                }),
            (inner, proptest::collection::vec(0usize..4, 1..3)).prop_map(|(p, hide)| {
                let hidden: EventSet = hide.into_iter().map(e).collect();
                Process::hide(p, hidden)
            }),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_failures_matches_serial_verbatim(
        spec in arb_process(3),
        impl_ in arb_process(4),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let serial =
            checker.failures_refinement_with_options(&spec, &impl_, &defs, &CheckOptions::UNBOUNDED);
        for threads in 1..=8usize {
            let par = parallel::failures_refinement_with_options(
                &checker, &spec, &impl_, &defs, threads, &CheckOptions::UNBOUNDED,
            );
            match (&serial, &par) {
                (Ok((s, ss)), Ok((p, ps))) => {
                    prop_assert_eq!(s, p);
                    if let (Some(sc), Some(pc)) = (s.counterexample(), p.counterexample()) {
                        prop_assert_eq!(sc.trace(), pc.trace());
                        prop_assert_eq!(sc.kind(), pc.kind());
                    }
                    if s.is_pass() {
                        // A pass explores the full reachable product in both
                        // engines; a fail races discovery order.
                        prop_assert_eq!(ss.pairs_discovered, ps.pairs_discovered);
                    }
                }
                (Err(se), Err(pe)) => prop_assert_eq!(se, pe),
                (s, p) => prop_assert!(
                    false,
                    "⊑F engines disagree at {} threads: serial={:?} parallel={:?}",
                    threads, s, p
                ),
            }
        }
    }

    #[test]
    fn parallel_fd_matches_serial_verbatim(
        spec in arb_process(3),
        impl_ in arb_process(4),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let serial = checker.failures_divergences_refinement_with_options(
            &spec, &impl_, &defs, &CheckOptions::UNBOUNDED,
        );
        for threads in 1..=8usize {
            let par = parallel::failures_divergences_refinement_with_options(
                &checker, &spec, &impl_, &defs, threads, &CheckOptions::UNBOUNDED,
            );
            match (&serial, &par) {
                (Ok((s, ss)), Ok((p, ps))) => {
                    prop_assert_eq!(s, p);
                    if let (Some(sc), Some(pc)) = (s.counterexample(), p.counterexample()) {
                        prop_assert_eq!(sc.trace(), pc.trace());
                        prop_assert_eq!(sc.kind(), pc.kind());
                    }
                    if s.is_pass() {
                        prop_assert_eq!(ss.pairs_discovered, ps.pairs_discovered);
                    }
                }
                (Err(se), Err(pe)) => prop_assert_eq!(se, pe),
                (s, p) => prop_assert!(
                    false,
                    "⊑FD engines disagree at {} threads: serial={:?} parallel={:?}",
                    threads, s, p
                ),
            }
        }
    }
}

fn persisted_store(cache: &Arc<PersistentCache>, resume: ResumePolicy) -> ModelStore {
    let store = ModelStore::new();
    store.set_persist(PersistConfig {
        cache: Arc::clone(cache),
        checkpoint_every: None,
        resume,
    });
    store
}

/// The cache codec's FNV-1a trailer, reproduced so the test can forge an
/// *internally consistent* entry that differs only in its format version.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rewrite a cache entry so it reads as a *valid* file written by the
/// previous normal-form codec: old version byte in the magic, checksum
/// recomputed. Without the checksum fix the store would report plain
/// corruption (STO401) instead of the stale-version path (STO402).
fn downgrade_entry_version(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).expect("entry readable");
    assert!(
        bytes.len() > 16,
        "entry too small to carry magic + checksum"
    );
    assert_eq!(&bytes[..7], b"FDRLNRM", "expected a normal-form entry");
    let body_len = bytes.len() - 8;
    bytes[7] = 0x01;
    let sum = fnv1a64(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(path, &bytes).expect("entry writable");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn old_version_norm_entries_quarantine_and_recompile(
        spec in arb_process(3),
        impl_ in arb_process(4),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let Ok((ref_verdict, _)) = ModelStore::new().failures_refinement(
            &checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED,
        ) else {
            return Ok(());
        };

        // Warm the cache, then downgrade every normal-form entry to the
        // previous format version (checksum kept valid).
        let dir = fresh_dir("stale");
        let cache = Arc::new(PersistentCache::open(&dir).expect("cache opens"));
        persisted_store(&cache, ResumePolicy::Off)
            .failures_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .expect("cold run succeeds");
        let mut downgraded = 0u64;
        for entry in std::fs::read_dir(&dir).expect("cache dir listable") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().and_then(|x| x.to_str()).unwrap_or("");
            if name.starts_with("n-") && name.ends_with(".bin") {
                downgrade_entry_version(&path);
                downgraded += 1;
            }
        }
        prop_assert!(downgraded > 0, "the warm cache must contain a normal form");

        // A fresh store over the stale cache must quarantine the entry and
        // rebuild, reaching the reference verdict.
        let cache2 = Arc::new(PersistentCache::open(&dir).expect("cache reopens"));
        let (verdict, _) = persisted_store(&cache2, ResumePolicy::Off)
            .failures_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .expect("stale cache must not abort the check");
        prop_assert_eq!(&verdict, &ref_verdict);
        prop_assert!(
            cache2.quarantined() >= downgraded,
            "every old-version entry must take the quarantine path"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
