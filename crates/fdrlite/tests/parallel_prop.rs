//! Property-based equivalence of the serial and work-stealing refinement
//! engines: for randomly generated spec/impl process pairs and every
//! thread count from 1 to 8, `parallel::trace_refinement` must return the
//! **identical** verdict — including the exact counterexample trace, not
//! just its length — as `Checker::trace_refinement`.

use csp::{Definitions, EventId, EventSet, Process};
use fdrlite::{parallel, CheckError, Checker};
use proptest::prelude::*;

fn e(n: usize) -> EventId {
    EventId::from_index(n)
}

/// A random finite process over a 4-event alphabet, exercising prefixing,
/// both choices, sequencing, interleaving, synchronised parallel, and
/// hiding (hiding introduces τ edges, the weight-0 case of the engines'
/// 0-1 BFS).
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    let leaf = prop_oneof![
        Just(Process::Stop),
        Just(Process::Skip),
        (0usize..4).prop_map(|i| Process::prefix(e(i), Process::Stop)),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            ((0usize..4), inner.clone()).prop_map(|(i, p)| Process::prefix(e(i), p)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::external_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::internal_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::seq(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::interleave(p, q)),
            (
                inner.clone(),
                inner.clone(),
                proptest::collection::vec(0usize..4, 0..3)
            )
                .prop_map(|(p, q, sync)| {
                    let sync: EventSet = sync.into_iter().map(e).collect();
                    Process::parallel(sync, p, q)
                }),
            (inner, proptest::collection::vec(0usize..4, 1..3)).prop_map(|(p, hide)| {
                let hidden: EventSet = hide.into_iter().map(e).collect();
                Process::hide(p, hidden)
            }),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_engine_matches_serial_verbatim(
        spec in arb_process(3),
        impl_ in arb_process(4),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let serial = checker.trace_refinement(&spec, &impl_, &defs);
        for threads in 1..=8usize {
            let parallel = parallel::trace_refinement(&checker, &spec, &impl_, &defs, threads);
            match (&serial, &parallel) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(s, p);
                    if let (Some(sc), Some(pc)) = (s.counterexample(), p.counterexample()) {
                        prop_assert_eq!(sc.trace().len(), pc.trace().len());
                    }
                }
                (Err(se), Err(pe)) => prop_assert_eq!(se, pe),
                (s, p) => prop_assert!(
                    false,
                    "engines disagree at {} threads: serial={:?} parallel={:?}",
                    threads, s, p
                ),
            }
        }
    }

    #[test]
    fn bounded_product_agrees_or_both_overflow(
        impl_ in arb_process(4),
    ) {
        // With a tight product bound, both engines must raise the same
        // `ProductExceeded` — or, when a violation and the bound race,
        // the parallel engine may legitimately find the violation the
        // serial engine reports (and vice versa); verdicts that do come
        // back must still be identical.
        let defs = Definitions::new();
        let mut builder = fdrlite::CheckerBuilder::new();
        builder.max_product(8);
        let checker = builder.build();
        let spec = Process::prefix(e(0), Process::Stop);
        let serial = checker.trace_refinement(&spec, &impl_, &defs);
        let parallel = parallel::trace_refinement(&checker, &spec, &impl_, &defs, 4);
        match (&serial, &parallel) {
            (Ok(s), Ok(p)) => prop_assert_eq!(s, p),
            (Err(CheckError::ProductExceeded { limit: a }),
             Err(CheckError::ProductExceeded { limit: b })) => prop_assert_eq!(a, b),
            (Ok(v), Err(CheckError::ProductExceeded { .. }))
            | (Err(CheckError::ProductExceeded { .. }), Ok(v)) => {
                // Documented race: only legal when a violation exists.
                prop_assert!(!v.is_pass(), "bound/verdict race requires a violation");
            }
            (s, p) => prop_assert!(
                false,
                "unexpected outcome pair: serial={:?} parallel={:?}", s, p
            ),
        }
    }
}
