//! Property-based soundness of the semantic analysis layer against the
//! checker itself, over randomly generated processes:
//!
//! * the cached [`GraphAnalysis`] divergence-freedom verdict must agree
//!   with a `P [FD= P` self-check through the *direct* checker path (whose
//!   divergence phase runs the independent `divergent_states_of` sweep,
//!   not the Tarjan pass under test);
//! * the compositional state-space estimate, whenever every leaf compiles
//!   within its cap, must be an upper bound on the states the compile
//!   actually discovers;
//! * the a-priori `predicted_pairs` product bound in [`CheckStats`] must
//!   dominate the pairs a refinement run really explores.

use csp::analysis::estimate;
use csp::{Definitions, EventId, EventSet, Process, TermArena};
use fdrlite::{CheckOptions, Checker, ModelStore};
use proptest::prelude::*;

fn e(n: usize) -> EventId {
    EventId::from_index(n)
}

/// A random finite process over a 4-event alphabet (same shape as the
/// store-equivalence suite, hide included so τ-cycles actually occur).
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    let leaf = prop_oneof![
        Just(Process::Stop),
        Just(Process::Skip),
        (0usize..4).prop_map(|i| Process::prefix(e(i), Process::Stop)),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            ((0usize..4), inner.clone()).prop_map(|(i, p)| Process::prefix(e(i), p)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::external_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::internal_choice(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::seq(p, q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Process::interleave(p, q)),
            (
                inner.clone(),
                inner.clone(),
                proptest::collection::vec(0usize..4, 0..3)
            )
                .prop_map(|(p, q, sync)| {
                    let sync: EventSet = sync.into_iter().map(e).collect();
                    Process::parallel(sync, p, q)
                }),
            (inner, proptest::collection::vec(0usize..4, 1..3)).prop_map(|(p, hide)| {
                let hidden: EventSet = hide.into_iter().map(e).collect();
                Process::hide(p, hidden)
            }),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn divergence_verdict_agrees_with_fd_self_check(p in arb_process(4)) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let store = ModelStore::new();
        let analysis = store
            .graph_analysis(&checker, &p, &defs)
            .expect("small random models compile under default bounds");
        // `P [FD= P` holds exactly when P is divergence free: the failures
        // phase is reflexive, so only the divergence phase (which runs the
        // independent `divergent_states_of` sweep) can refute it.
        let self_check = checker
            .failures_divergences_refinement(&p, &p, &defs)
            .expect("self-check compiles");
        prop_assert!(
            analysis.is_divergence_free() == self_check.is_pass(),
            "analysis says divergence-free={} but P [FD= P gave {:?}",
            analysis.is_divergence_free(),
            self_check
        );
    }

    #[test]
    fn predicted_state_bound_dominates_actual_states(p in arb_process(4)) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let store = ModelStore::new();
        let actual = store
            .graph_analysis(&checker, &p, &defs)
            .expect("small random models compile under default bounds")
            .state_count() as u64;
        let mut arena = TermArena::new();
        let root = arena.intern(&p);
        let est = estimate(&mut arena, root, &defs, 1_000_000);
        // Under a 1M-state cap every 4-event toy model compiles fully, so
        // the estimate is a proven bound and must dominate the real count.
        prop_assert!(est.is_exact(), "leaf hit the 1M-state cap on a toy model");
        prop_assert!(
            est.predicted_states() >= actual,
            "predicted {} < actual {}",
            est.predicted_states(),
            actual
        );
    }

    #[test]
    fn predicted_pairs_dominates_pairs_discovered(
        spec in arb_process(3),
        impl_ in arb_process(4),
    ) {
        let defs = Definitions::new();
        let checker = Checker::new();
        let store = ModelStore::new();
        if let Ok((_, stats)) = store.trace_refinement(
            &checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
        {
            prop_assert!(
                stats.predicted_pairs >= stats.pairs_discovered,
                "predicted {} < discovered {}",
                stats.predicted_pairs,
                stats.pairs_discovered
            );
        }
    }
}
