//! Supervised execution of a batch of checking jobs.
//!
//! A [`Supervisor`] runs a sequence of [`Job`]s — refinement checks,
//! conformance sweeps, analyses — with the failure discipline a long
//! unattended batch needs:
//!
//! * **Panic isolation.** A job that panics becomes a [`JobStatus::Failed`]
//!   outcome carrying the panic payload as a [`JOB_PANIC`] (`SUP501`)
//!   diagnostic; the remaining jobs still run. A panic can never produce a
//!   wrong verdict and can never take the whole run down.
//! * **Retry, for transient failures only.** A job may report
//!   [`JobError::Transient`] (storage-fault quarantine + recompile,
//!   `store.lock` contention, injected I/O faults); the supervisor retries
//!   it under a bounded, deterministic exponential-backoff schedule
//!   ([`RetryPolicy`]). [`JobError::Permanent`] and panics are never
//!   retried.
//! * **Budgets.** A per-run wall budget defers the jobs that did not get to
//!   run (they are *not* journaled, so a later `--resume` picks them up);
//!   per-job budgets are owned by the job itself and surface as ordinary
//!   [`JobStatus::Inconclusive`] outcomes, exactly like a direct
//!   `autocsp check` run. A shutdown request
//!   ([`crate::request_interrupt`], e.g. from a `SIGTERM` handler) defers
//!   all remaining jobs the same way.
//! * **A crash-safe journal.** Every terminal outcome is appended to a
//!   [`Journal`] written atomically (temp file + rename, checksummed, the
//!   same idioms as the model cache). A run killed mid-flight and
//!   restarted with the same journal replays finished jobs *verbatim* —
//!   byte-identical verdict lines, no re-exploration — and re-runs only
//!   the jobs with no journaled outcome.
//!
//! The supervisor is engine-agnostic: a job is just a closure returning a
//! [`JobReport`] or a [`JobError`]. The `autocsp run` subcommand builds
//! jobs from a `jobs.toml` manifest (see `cspm::manifest`) and wires them
//! to a shared [`crate::ModelStore`]; this module is the staging ground
//! for the future sharded checker-farm service, which will feed the same
//! job type from an HTTP queue.

use std::fmt;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use diag::{Code, Diagnostic, Span};

use crate::interrupt::interrupt_requested;
use crate::persist::fnv1a64;
use crate::persist::{Dec, Enc, EntryError};

/// `SUP501` — a job panicked; it is reported as `Failed` with the panic
/// payload preserved, and the rest of the run continues.
pub const JOB_PANIC: Code = Code("SUP501");
/// `SUP502` — a job failed transiently and is being retried (warning).
pub const TRANSIENT_RETRY: Code = Code("SUP502");
/// `SUP503` — a job kept failing transiently until its retry budget ran
/// out; it is reported as `Failed`.
pub const RETRIES_EXHAUSTED: Code = Code("SUP503");
/// `SUP504` — a job failed permanently (no retry); reported as `Failed`.
pub const JOB_FAILED: Code = Code("SUP504");
/// `SUP505` — the job journal could not be read (corrupt, stale version,
/// or keyed to a different manifest) or written; the run continues, at
/// worst re-running jobs (warning).
pub const JOURNAL_ERROR: Code = Code("SUP505");
/// `SUP506` — the run's wall budget (or a shutdown request) deferred jobs
/// that had not started; re-run with `--resume` to complete them
/// (warning).
pub const RUN_BUDGET: Code = Code("SUP506");
/// `SUP510` — the job manifest could not be parsed or resolved.
pub const MANIFEST_ERROR: Code = Code("SUP510");

const MAGIC_JOURNAL: &[u8; 8] = b"FDRLJNL\x01";

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// Terminal state of a supervised job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The check ran to completion and the property holds.
    Passed,
    /// The check ran to completion and found a counterexample.
    Refuted,
    /// The check hit its own budget; a resume token may be embedded in the
    /// job's verdict lines.
    Inconclusive,
    /// The job could not produce a verdict at all — it panicked, failed
    /// permanently, or exhausted its retries. Never a wrong verdict.
    Failed,
}

impl JobStatus {
    fn to_u8(self) -> u8 {
        match self {
            JobStatus::Passed => 0,
            JobStatus::Refuted => 1,
            JobStatus::Inconclusive => 2,
            JobStatus::Failed => 3,
        }
    }

    fn from_u8(v: u8) -> Option<JobStatus> {
        match v {
            0 => Some(JobStatus::Passed),
            1 => Some(JobStatus::Refuted),
            2 => Some(JobStatus::Inconclusive),
            3 => Some(JobStatus::Failed),
            _ => None,
        }
    }

    /// Lower-case label used in verdict lines and the journal dump.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Passed => "passed",
            JobStatus::Refuted => "refuted",
            JobStatus::Inconclusive => "inconclusive",
            JobStatus::Failed => "failed",
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a job hands back when it ran to a verdict (including an
/// inconclusive one). Failures go through [`JobError`] instead.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The verdict class; must not be [`JobStatus::Failed`] (failures are
    /// expressed as [`JobError`]s so the supervisor owns the diagnostic).
    pub status: JobStatus,
    /// Deterministic verdict lines for stdout — no timings, no attempt
    /// counts, nothing that would differ between a disturbed and an
    /// undisturbed run.
    pub lines: Vec<String>,
    /// `true` when the verdict is inconclusive *because a shutdown was
    /// requested mid-check* ([`crate::BudgetReason::Interrupted`]). Such a
    /// report is not journaled: a `--resume` run re-runs the job, which
    /// picks up its per-check checkpoint and continues to the verdict the
    /// undisturbed run would have reached.
    pub interrupted: bool,
}

/// How a job failed; decides whether the supervisor retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Worth retrying: the failure is environmental and may clear
    /// (storage faults, lock contention, quarantine + recompile churn).
    Transient(String),
    /// Not worth retrying: the failure is inherent to the job.
    Permanent(String),
}

/// Per-attempt context handed to a job's closure.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// 1-based attempt number (`> 1` only after transient retries).
    pub attempt: u32,
    /// Wall-clock milliseconds left in the run's overall budget, if one
    /// was set; jobs should clamp their own wall budget to this.
    pub remaining_ms: Option<u64>,
}

/// A job's work closure: one call per attempt.
pub type JobExec = Box<dyn FnMut(&JobCtx) -> Result<JobReport, JobError>>;

/// A unit of supervised work.
pub struct Job {
    /// Human-readable name (unique within a manifest).
    pub name: String,
    /// Stable content key identifying the job across runs — a hash of
    /// everything that shapes its verdict (scripts, assertion, bounds).
    /// The journal replays by key, so an edited job re-runs.
    pub key: u64,
    /// The work itself. Called once per attempt; may be called again after
    /// a [`JobError::Transient`] return.
    pub exec: JobExec,
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded exponential backoff with deterministic, seedable jitter.
///
/// The delay before attempt `n + 1` is
/// `min(base · 2ⁿ⁻¹, max) + jitter`, where the jitter is an FNV hash of
/// `(seed, job key, attempt)` reduced to at most a quarter of the capped
/// delay. Two runs with the same seed retry on the identical schedule —
/// which keeps fault-injection tests reproducible.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per job, first try included. `1` disables retry.
    pub max_attempts: u32,
    /// Backoff base in milliseconds.
    pub base_delay_ms: u64,
    /// Cap on the exponential term in milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 10,
            max_delay_ms: 200,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay (ms) to sleep after attempt `attempt` (1-based) of the
    /// job with key `job_key` failed transiently.
    pub fn delay_ms(&self, job_key: u64, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        let exp = self.base_delay_ms.saturating_mul(1_u64 << shift);
        let capped = exp.min(self.max_delay_ms);
        let mut bytes = [0_u8; 20];
        bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&job_key.to_le_bytes());
        bytes[16..].copy_from_slice(&attempt.to_le_bytes());
        capped + fnv1a64(&bytes) % (capped / 4 + 1)
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// A journaled terminal outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The job's stable content key.
    pub key: u64,
    /// The job's name at the time it ran (informational).
    pub name: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Attempts consumed (1 unless transient retries happened).
    pub attempts: u32,
    /// The verdict lines, replayed verbatim on resume.
    pub lines: Vec<String>,
    /// The `SUP5xx` failure message, for `Failed` entries.
    pub failure: Option<String>,
}

/// Crash-safe record of a run's terminal job outcomes.
///
/// The journal is rewritten atomically (temp file + rename) after every
/// terminal job, so a `SIGKILL` at any instant leaves either the previous
/// complete journal or the new complete journal — never a torn one. It is
/// keyed to a manifest hash: a journal from a different manifest is
/// rejected with [`JOURNAL_ERROR`] and the run starts fresh.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    manifest_hash: u64,
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// Open (or create) the journal at `path` for the manifest identified
    /// by `manifest_hash`. A missing file is an empty journal; an
    /// unreadable, corrupt or mismatched file is *also* an empty journal,
    /// plus a [`JOURNAL_ERROR`] warning in `diags` — at worst jobs re-run.
    pub fn open(
        path: impl AsRef<Path>,
        manifest_hash: u64,
        diags: &mut Vec<Diagnostic>,
    ) -> Journal {
        let path = path.as_ref().to_path_buf();
        let mut journal = Journal {
            path,
            manifest_hash,
            entries: Vec::new(),
        };
        let bytes = match fs::read(&journal.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return journal,
            Err(e) => {
                diags.push(
                    Diagnostic::warning(
                        JOURNAL_ERROR,
                        Span::unknown(),
                        format!("cannot read job journal: {e}"),
                    )
                    .with_note("all jobs will run from scratch"),
                );
                return journal;
            }
        };
        match Journal::decode(&bytes, manifest_hash) {
            Ok(entries) => journal.entries = entries,
            Err(why) => diags.push(
                Diagnostic::warning(
                    JOURNAL_ERROR,
                    Span::unknown(),
                    format!("job journal rejected: {why}"),
                )
                .with_note("all jobs will run from scratch"),
            ),
        }
        journal
    }

    fn decode(bytes: &[u8], manifest_hash: u64) -> Result<Vec<JournalEntry>, String> {
        let verdict = (|| {
            let mut dec = Dec::open(bytes, MAGIC_JOURNAL)?;
            let hash = dec.u64()?;
            let n = dec.len(18)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let key = dec.u64()?;
                let name = dec.text()?;
                let status = JobStatus::from_u8(dec.u8()?);
                let attempts = dec.u32()?;
                let n_lines = dec.len(4)?;
                let mut lines = Vec::with_capacity(n_lines);
                for _ in 0..n_lines {
                    lines.push(dec.text()?);
                }
                let failure = match dec.u8()? {
                    0 => None,
                    _ => Some(dec.text()?),
                };
                entries.push((key, name, status, attempts, lines, failure));
            }
            dec.done()?;
            Ok::<_, EntryError>((hash, entries))
        })();
        let (hash, raw) = match verdict {
            Ok(v) => v,
            Err(EntryError::Corrupt(why)) => return Err(why.to_string()),
            Err(EntryError::Version) => return Err("unknown magic or format version".to_string()),
        };
        if hash != manifest_hash {
            return Err("journal belongs to a different manifest".to_string());
        }
        raw.into_iter()
            .map(|(key, name, status, attempts, lines, failure)| {
                Ok(JournalEntry {
                    key,
                    name,
                    status: status.ok_or_else(|| "unknown job status".to_string())?,
                    attempts,
                    lines,
                    failure,
                })
            })
            .collect()
    }

    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new(MAGIC_JOURNAL);
        enc.u64(self.manifest_hash);
        enc.u32(u32::try_from(self.entries.len()).unwrap_or(u32::MAX));
        for e in &self.entries {
            enc.u64(e.key);
            enc.text(&e.name);
            enc.u8(e.status.to_u8());
            enc.u32(e.attempts);
            enc.u32(u32::try_from(e.lines.len()).unwrap_or(u32::MAX));
            for line in &e.lines {
                enc.text(line);
            }
            match &e.failure {
                None => enc.u8(0),
                Some(msg) => {
                    enc.u8(1);
                    enc.text(msg);
                }
            }
        }
        enc.finish()
    }

    /// The journaled outcome for a job key, if it already ran to a
    /// terminal state.
    pub fn lookup(&self, key: u64) -> Option<&JournalEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Journaled entries, in completion order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Append a terminal outcome and rewrite the journal atomically. A
    /// write failure degrades to a [`JOURNAL_ERROR`] warning — the run
    /// keeps its in-memory result; only crash-resume durability is lost.
    pub fn record(&mut self, entry: JournalEntry, diags: &mut Vec<Diagnostic>) {
        self.entries.push(entry);
        let tmp = self
            .path
            .with_extension(format!("tmp-{}", std::process::id()));
        let written = fs::write(&tmp, self.encode()).and_then(|()| fs::rename(&tmp, &self.path));
        if let Err(e) = written {
            let _ = fs::remove_file(&tmp);
            diags.push(
                Diagnostic::warning(
                    JOURNAL_ERROR,
                    Span::unknown(),
                    format!("failed to write job journal: {e}"),
                )
                .with_note("a killed run would re-run this job instead of replaying it"),
            );
        }
    }

    /// Delete the journal file (the run completed; nothing left to
    /// resume).
    pub fn remove(&self) {
        let _ = fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

/// Knobs for a supervised run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupervisorConfig {
    /// Retry schedule for transient failures.
    pub retry: RetryPolicy,
    /// Overall wall budget for the run, in milliseconds. Jobs that did not
    /// start before it expired are deferred (reported, not journaled).
    pub run_timeout_ms: Option<u64>,
}

/// The outcome of one supervised job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// The job's stable content key.
    pub key: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// Attempts consumed.
    pub attempts: u32,
    /// Deterministic verdict lines for stdout.
    pub lines: Vec<String>,
    /// The failure message (`Failed` only).
    pub failure: Option<String>,
    /// `true` when this outcome was replayed from the journal rather than
    /// executed.
    pub replayed: bool,
}

/// The outcome of a whole supervised run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-job outcomes, in manifest order (deferred jobs excluded).
    pub jobs: Vec<JobOutcome>,
    /// Names of jobs deferred by the run budget or a shutdown request —
    /// including a job cut *mid-check* by a shutdown (its per-check
    /// checkpoint lets `--resume` continue it).
    pub deferred: Vec<String>,
    /// Transient retries performed across the run.
    pub retries: u64,
    /// Diagnostics (SUP5xx) accumulated across the run; render to stderr.
    pub diagnostics: Vec<Diagnostic>,
}

impl RunOutcome {
    /// `true` if any job ended `Failed` (infrastructure failure — exit
    /// code 4 in the CLI).
    pub fn any_failed(&self) -> bool {
        self.jobs.iter().any(|j| j.status == JobStatus::Failed)
    }

    /// `true` if any job ended `Refuted`.
    pub fn any_refuted(&self) -> bool {
        self.jobs.iter().any(|j| j.status == JobStatus::Refuted)
    }

    /// `true` if any job ended `Inconclusive`, or any job was deferred.
    pub fn any_inconclusive(&self) -> bool {
        !self.deferred.is_empty()
            || self
                .jobs
                .iter()
                .any(|j| j.status == JobStatus::Inconclusive)
    }
}

/// Runs jobs under panic isolation, retry and budget supervision.
#[derive(Debug, Default)]
pub struct Supervisor {
    config: SupervisorConfig,
}

impl Supervisor {
    /// A supervisor with the given configuration.
    pub fn new(config: SupervisorConfig) -> Supervisor {
        Supervisor { config }
    }

    /// Run `jobs` in order, replaying journaled outcomes and journaling
    /// new terminal ones. See the module docs for the exact semantics.
    pub fn run(&self, jobs: Vec<Job>, journal: &mut Journal) -> RunOutcome {
        let start = Instant::now();
        // Silence the default panic hook for the duration of the run: a
        // panicking job is caught and surfaced as a [`JOB_PANIC`]
        // diagnostic, so the hook's backtrace would only be noise.
        let saved_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut diags = Vec::new();
        let mut outcomes = Vec::new();
        let mut deferred = Vec::new();
        let mut retries = 0_u64;
        let mut budget_noted = false;
        for mut job in jobs {
            if let Some(entry) = journal.lookup(job.key) {
                outcomes.push(JobOutcome {
                    name: job.name,
                    key: job.key,
                    status: entry.status,
                    attempts: entry.attempts,
                    lines: entry.lines.clone(),
                    failure: entry.failure.clone(),
                    replayed: true,
                });
                continue;
            }
            let remaining_ms = self.remaining_ms(start);
            let out_of_budget = remaining_ms == Some(0);
            if out_of_budget || interrupt_requested() {
                if !budget_noted {
                    budget_noted = true;
                    let why = if out_of_budget {
                        "run wall budget exhausted"
                    } else {
                        "shutdown requested"
                    };
                    diags.push(
                        Diagnostic::warning(
                            RUN_BUDGET,
                            Span::unknown(),
                            format!("{why}; deferring the remaining jobs"),
                        )
                        .with_note("re-run with `--resume` to complete them"),
                    );
                }
                deferred.push(job.name);
                continue;
            }
            let (outcome, job_retries) = self.run_job(&mut job, remaining_ms, &mut diags);
            retries += job_retries;
            match outcome {
                Some(outcome) => {
                    journal.record(
                        JournalEntry {
                            key: outcome.key,
                            name: outcome.name.clone(),
                            status: outcome.status,
                            attempts: outcome.attempts,
                            lines: outcome.lines.clone(),
                            failure: outcome.failure.clone(),
                        },
                        &mut diags,
                    );
                    outcomes.push(outcome);
                }
                // Interrupted mid-check: defer, don't journal — resume
                // continues from the per-check checkpoint.
                None => deferred.push(job.name),
            }
        }
        std::panic::set_hook(saved_hook);
        RunOutcome {
            jobs: outcomes,
            deferred,
            retries,
            diagnostics: diags,
        }
    }

    fn remaining_ms(&self, start: Instant) -> Option<u64> {
        self.config.run_timeout_ms.map(|budget| {
            let elapsed = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
            budget.saturating_sub(elapsed)
        })
    }

    /// Run one job to a terminal outcome (`Some`) or an interrupted
    /// non-outcome (`None`), retrying transient failures. Returns the
    /// outcome plus the number of retries consumed.
    fn run_job(
        &self,
        job: &mut Job,
        remaining_ms: Option<u64>,
        diags: &mut Vec<Diagnostic>,
    ) -> (Option<JobOutcome>, u64) {
        let mut attempt = 0_u32;
        let mut job_retries = 0_u64;
        loop {
            attempt += 1;
            let ctx = JobCtx {
                attempt,
                remaining_ms,
            };
            let caught = catch_unwind(AssertUnwindSafe(|| (job.exec)(&ctx)));
            let failure = match caught {
                Ok(Ok(report)) => {
                    if report.interrupted {
                        return (None, job_retries);
                    }
                    return (
                        Some(JobOutcome {
                            name: job.name.clone(),
                            key: job.key,
                            status: report.status,
                            attempts: attempt,
                            lines: report.lines,
                            failure: None,
                            replayed: false,
                        }),
                        job_retries,
                    );
                }
                Err(payload) => {
                    let message = panic_text(payload.as_ref());
                    diags.push(
                        Diagnostic::error(
                            JOB_PANIC,
                            Span::unknown(),
                            format!("job `{}` panicked: {message}", job.name),
                        )
                        .with_note("the job is reported as failed; the run continues"),
                    );
                    format!("panicked: {message}")
                }
                Ok(Err(JobError::Permanent(message))) => {
                    diags.push(Diagnostic::error(
                        JOB_FAILED,
                        Span::unknown(),
                        format!("job `{}` failed: {message}", job.name),
                    ));
                    message
                }
                Ok(Err(JobError::Transient(message))) => {
                    if attempt < self.config.retry.max_attempts {
                        let delay = self.config.retry.delay_ms(job.key, attempt);
                        diags.push(
                            Diagnostic::warning(
                                TRANSIENT_RETRY,
                                Span::unknown(),
                                format!(
                                    "job `{}` failed transiently (attempt {attempt}): {message}",
                                    job.name
                                ),
                            )
                            .with_note(format!("retrying after {delay} ms")),
                        );
                        job_retries += 1;
                        std::thread::sleep(Duration::from_millis(delay));
                        continue;
                    }
                    diags.push(Diagnostic::error(
                        RETRIES_EXHAUSTED,
                        Span::unknown(),
                        format!(
                            "job `{}` still failing after {attempt} attempts: {message}",
                            job.name
                        ),
                    ));
                    message
                }
            };
            return (
                Some(JobOutcome {
                    name: job.name.clone(),
                    key: job.key,
                    status: JobStatus::Failed,
                    attempts: attempt,
                    lines: Vec::new(),
                    failure: Some(failure),
                    replayed: false,
                }),
                job_retries,
            );
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn tmp_journal(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fdrlite-supervisor-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("jobs.journal")
    }

    fn quick_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 0,
            max_delay_ms: 0,
            seed: 7,
        }
    }

    fn ok_job(name: &str, key: u64, calls: &Rc<Cell<u32>>) -> Job {
        let calls = Rc::clone(calls);
        let name = name.to_string();
        let line = format!("assert {name}  PASS");
        Job {
            name,
            key,
            exec: Box::new(move |_ctx| {
                calls.set(calls.get() + 1);
                Ok(JobReport {
                    status: JobStatus::Passed,
                    lines: vec![line.clone()],
                    interrupted: false,
                })
            }),
        }
    }

    #[test]
    fn panicking_job_fails_without_taking_down_the_run() {
        let mut diags = Vec::new();
        let mut journal = Journal::open(tmp_journal("panic"), 1, &mut diags);
        let calls = Rc::new(Cell::new(0));
        let jobs = vec![
            Job {
                name: "boom".to_string(),
                key: 1,
                exec: Box::new(|_ctx| panic!("injected fault")),
            },
            ok_job("after", 2, &calls),
        ];
        let outcome = Supervisor::new(SupervisorConfig {
            retry: quick_retry(),
            run_timeout_ms: None,
        })
        .run(jobs, &mut journal);

        assert_eq!(outcome.jobs.len(), 2);
        assert_eq!(outcome.jobs[0].status, JobStatus::Failed);
        assert_eq!(
            outcome.jobs[0].failure.as_deref(),
            Some("panicked: injected fault")
        );
        assert!(outcome
            .diagnostics
            .iter()
            .any(|d| d.code == JOB_PANIC && d.message.contains("injected fault")));
        assert_eq!(outcome.jobs[1].status, JobStatus::Passed);
        assert_eq!(calls.get(), 1, "the job after the panic still ran");
        assert!(outcome.any_failed());
    }

    #[test]
    fn transient_failures_retry_then_succeed() {
        let mut diags = Vec::new();
        let mut journal = Journal::open(tmp_journal("transient"), 1, &mut diags);
        let attempts_seen = Rc::new(Cell::new(0));
        let seen = Rc::clone(&attempts_seen);
        let jobs = vec![Job {
            name: "flaky".to_string(),
            key: 9,
            exec: Box::new(move |ctx| {
                seen.set(ctx.attempt);
                if ctx.attempt < 3 {
                    Err(JobError::Transient("injected storage fault".to_string()))
                } else {
                    Ok(JobReport {
                        status: JobStatus::Passed,
                        lines: vec!["assert flaky  PASS".to_string()],
                        interrupted: false,
                    })
                }
            }),
        }];
        let outcome = Supervisor::new(SupervisorConfig {
            retry: quick_retry(),
            run_timeout_ms: None,
        })
        .run(jobs, &mut journal);

        assert_eq!(attempts_seen.get(), 3);
        assert_eq!(outcome.jobs[0].status, JobStatus::Passed);
        assert_eq!(outcome.jobs[0].attempts, 3);
        assert_eq!(outcome.retries, 2);
        assert_eq!(
            outcome
                .diagnostics
                .iter()
                .filter(|d| d.code == TRANSIENT_RETRY)
                .count(),
            2
        );
    }

    #[test]
    fn retries_exhaust_into_failed() {
        let mut diags = Vec::new();
        let mut journal = Journal::open(tmp_journal("exhaust"), 1, &mut diags);
        let jobs = vec![Job {
            name: "doomed".to_string(),
            key: 4,
            exec: Box::new(|_ctx| Err(JobError::Transient("disk on fire".to_string()))),
        }];
        let outcome = Supervisor::new(SupervisorConfig {
            retry: quick_retry(),
            run_timeout_ms: None,
        })
        .run(jobs, &mut journal);

        assert_eq!(outcome.jobs[0].status, JobStatus::Failed);
        assert_eq!(outcome.jobs[0].attempts, 3);
        assert!(outcome
            .diagnostics
            .iter()
            .any(|d| d.code == RETRIES_EXHAUSTED));
    }

    #[test]
    fn permanent_failures_never_retry() {
        let mut diags = Vec::new();
        let mut journal = Journal::open(tmp_journal("permanent"), 1, &mut diags);
        let calls = Rc::new(Cell::new(0));
        let seen = Rc::clone(&calls);
        let jobs = vec![Job {
            name: "broken".to_string(),
            key: 5,
            exec: Box::new(move |_ctx| {
                seen.set(seen.get() + 1);
                Err(JobError::Permanent("no such script".to_string()))
            }),
        }];
        let outcome = Supervisor::new(SupervisorConfig {
            retry: quick_retry(),
            run_timeout_ms: None,
        })
        .run(jobs, &mut journal);

        assert_eq!(calls.get(), 1);
        assert_eq!(outcome.jobs[0].status, JobStatus::Failed);
        assert!(outcome.diagnostics.iter().any(|d| d.code == JOB_FAILED));
    }

    #[test]
    fn journal_replays_terminal_outcomes_verbatim() {
        let path = tmp_journal("replay");
        let calls = Rc::new(Cell::new(0));
        let supervisor = Supervisor::new(SupervisorConfig {
            retry: quick_retry(),
            run_timeout_ms: None,
        });

        let mut diags = Vec::new();
        let mut journal = Journal::open(&path, 42, &mut diags);
        let first = supervisor.run(vec![ok_job("a", 11, &calls)], &mut journal);
        assert_eq!(calls.get(), 1);
        assert!(!first.jobs[0].replayed);

        // Same manifest hash: the outcome replays without executing.
        let mut diags = Vec::new();
        let mut journal = Journal::open(&path, 42, &mut diags);
        assert!(diags.is_empty());
        let second = supervisor.run(vec![ok_job("a", 11, &calls)], &mut journal);
        assert_eq!(calls.get(), 1, "replay must not execute the job");
        assert!(second.jobs[0].replayed);
        assert_eq!(second.jobs[0].lines, first.jobs[0].lines);

        // Different manifest hash: rejected, full re-run.
        let mut diags = Vec::new();
        let journal = Journal::open(&path, 43, &mut diags);
        assert!(diags.iter().any(|d| d.code == JOURNAL_ERROR));
        assert!(journal.entries().is_empty());
    }

    #[test]
    fn corrupt_journal_is_rejected_not_trusted() {
        let path = tmp_journal("corrupt");
        let mut diags = Vec::new();
        let mut journal = Journal::open(&path, 1, &mut diags);
        journal.record(
            JournalEntry {
                key: 1,
                name: "a".to_string(),
                status: JobStatus::Passed,
                attempts: 1,
                lines: vec!["assert a  PASS".to_string()],
                failure: None,
            },
            &mut diags,
        );
        assert!(diags.is_empty());

        // Flip one payload byte: the checksum must reject the file.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let mut diags = Vec::new();
        let journal = Journal::open(&path, 1, &mut diags);
        assert!(journal.entries().is_empty());
        assert!(diags.iter().any(|d| d.code == JOURNAL_ERROR));
    }

    #[test]
    fn run_budget_defers_unstarted_jobs() {
        let mut diags = Vec::new();
        let mut journal = Journal::open(tmp_journal("budget"), 1, &mut diags);
        let calls = Rc::new(Cell::new(0));
        let jobs = vec![ok_job("a", 1, &calls), ok_job("b", 2, &calls)];
        let outcome = Supervisor::new(SupervisorConfig {
            retry: quick_retry(),
            run_timeout_ms: Some(0),
        })
        .run(jobs, &mut journal);

        assert_eq!(calls.get(), 0);
        assert!(outcome.jobs.is_empty());
        assert_eq!(outcome.deferred, vec!["a".to_string(), "b".to_string()]);
        assert!(outcome.any_inconclusive());
        assert!(outcome.diagnostics.iter().any(|d| d.code == RUN_BUDGET));
    }

    #[test]
    fn interrupted_reports_defer_instead_of_journaling() {
        let path = tmp_journal("interrupted");
        let mut diags = Vec::new();
        let mut journal = Journal::open(&path, 1, &mut diags);
        let jobs = vec![Job {
            name: "cut".to_string(),
            key: 8,
            exec: Box::new(|_ctx| {
                Ok(JobReport {
                    status: JobStatus::Inconclusive,
                    lines: vec!["assert cut  INCONCLUSIVE".to_string()],
                    interrupted: true,
                })
            }),
        }];
        let outcome = Supervisor::new(SupervisorConfig {
            retry: quick_retry(),
            run_timeout_ms: None,
        })
        .run(jobs, &mut journal);

        assert!(outcome.jobs.is_empty());
        assert_eq!(outcome.deferred, vec!["cut".to_string()]);
        assert!(
            journal.lookup(8).is_none(),
            "interrupted work is not terminal"
        );
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 10,
            max_delay_ms: 200,
            seed: 99,
        };
        let a: Vec<u64> = (1..5).map(|n| policy.delay_ms(1234, n)).collect();
        let b: Vec<u64> = (1..5).map(|n| policy.delay_ms(1234, n)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, &d) in a.iter().enumerate() {
            let exp = (10_u64 << i).min(200);
            assert!(
                d >= exp && d <= exp + exp / 4,
                "attempt {}: {d} vs {exp}",
                i + 1
            );
        }
        let other = RetryPolicy {
            seed: 100,
            ..policy
        };
        assert_ne!(
            (1..5).map(|n| other.delay_ms(1234, n)).collect::<Vec<_>>(),
            a,
            "jitter is seed-dependent"
        );
    }
}
