//! The checking engine: refinement by product exploration of the
//! implementation against the normalised specification.
//!
//! The product walk is a 0-1 breadth-first search: `τ` edges cost 0 and
//! visible edges cost 1, so states are expanded in order of *visible trace
//! length* and the first violation found carries a minimum-length
//! counterexample. The parallel engine ([`crate::parallel`]) maintains the
//! same metric, which is what makes its verdicts and witness lengths agree
//! with the serial checker by construction.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use csp::{Definitions, EventId, Label, Lts, Process, StateId, Trace, TraceEvent};

use crate::counterexample::{BudgetReason, Counterexample, FailureKind, Inconclusive, Verdict};
use crate::error::CheckError;
use crate::normalise::{NormNodeId, NormalisedLts};
use crate::persist::{CkptNode, SerialFrontier};
use crate::stats::CheckStats;

/// Resource budgets for a refinement exploration.
///
/// Unlike the hard caps of [`CheckerBuilder`] (which abort with a
/// [`CheckError`]), budgets degrade gracefully: when one is exhausted the
/// check returns [`Verdict::Inconclusive`] with the exploration statistics
/// gathered so far. A violation found *before* the budget runs out is still
/// reported as a conclusive [`Verdict::Fail`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckOptions {
    /// Stop after discovering this many product states (`None` = unbounded).
    pub max_states: Option<u64>,
    /// Stop after this much wall-clock time (`None` = unbounded).
    pub max_wall_ms: Option<u64>,
}

impl CheckOptions {
    /// No budgets: explore until done or a hard cap aborts.
    pub const UNBOUNDED: CheckOptions = CheckOptions {
        max_states: None,
        max_wall_ms: None,
    };

    /// Is any budget configured?
    pub fn is_bounded(&self) -> bool {
        self.max_states.is_some() || self.max_wall_ms.is_some()
    }
}

/// A running budget: [`CheckOptions`] with the wall-clock deadline resolved
/// against a start instant. Shared by the serial and parallel engines.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Budget {
    max_states: Option<u64>,
    wall: Option<(Instant, u64)>,
}

impl Budget {
    /// Start the clock on `options` now.
    pub(crate) fn start(options: &CheckOptions) -> Budget {
        Budget {
            max_states: options.max_states,
            wall: options
                .max_wall_ms
                .map(|ms| (Instant::now() + Duration::from_millis(ms), ms)),
        }
    }

    pub(crate) fn unbounded() -> Budget {
        Budget {
            max_states: None,
            wall: None,
        }
    }

    /// Is the state budget exhausted with `discovered` states known?
    pub(crate) fn states_exceeded(&self, discovered: u64) -> Option<BudgetReason> {
        match self.max_states {
            Some(limit) if discovered >= limit => Some(BudgetReason::States { limit }),
            _ => None,
        }
    }

    /// Has the wall-clock deadline passed — or a process-wide interrupt
    /// been requested? Consults `Instant::now`; callers should rate-limit
    /// this off their hot path. The interrupt flag rides the same poll so
    /// a `SIGTERM` winds an exploration down exactly like an expiring wall
    /// budget (checkpoint written, resume token attached), even when no
    /// budget was configured.
    pub(crate) fn wall_exceeded(&self) -> Option<BudgetReason> {
        if crate::interrupt::interrupt_requested() {
            return Some(BudgetReason::Interrupted);
        }
        match self.wall {
            Some((deadline, limit_ms)) if Instant::now() >= deadline => {
                Some(BudgetReason::Wall { limit_ms })
            }
            _ => None,
        }
    }

    /// Which budget (if any) is exhausted with `discovered` states known?
    ///
    /// The wall clock is consulted on **every** call when a wall budget is
    /// configured (an `Instant::now` is ~25 ns — noise next to a state
    /// expansion), so wall-budget overshoot is bounded by a single state.
    /// Unbounded runs never touch the clock.
    pub(crate) fn exceeded(&self, discovered: u64) -> Option<BudgetReason> {
        if let Some(reason) = self.states_exceeded(discovered) {
            return Some(reason);
        }
        self.wall_exceeded()
    }

    /// How far past the wall deadline the clock is right now (zero when no
    /// wall budget is set or the deadline has not passed). Sampled at the
    /// moment a budget trips to surface the overshoot in [`CheckStats`].
    pub(crate) fn wall_overshoot(&self) -> Duration {
        match self.wall {
            Some((deadline, _)) => Instant::now().saturating_duration_since(deadline),
            None => Duration::ZERO,
        }
    }
}

/// Configures and builds a [`Checker`].
#[derive(Debug, Clone)]
pub struct CheckerBuilder {
    max_states: usize,
    max_norm_nodes: usize,
    max_product: usize,
    compress: bool,
}

impl Default for CheckerBuilder {
    fn default() -> Self {
        CheckerBuilder {
            max_states: 1_000_000,
            max_norm_nodes: 200_000,
            max_product: 4_000_000,
            compress: false,
        }
    }
}

impl CheckerBuilder {
    /// Start from the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound on reachable states per compiled process.
    pub fn max_states(&mut self, n: usize) -> &mut Self {
        self.max_states = n;
        self
    }

    /// Bound on specification normal-form nodes.
    pub fn max_norm_nodes(&mut self, n: usize) -> &mut Self {
        self.max_norm_nodes = n;
        self
    }

    /// Bound on explored (implementation state, spec node) pairs.
    pub fn max_product(&mut self, n: usize) -> &mut Self {
        self.max_product = n;
        self
    }

    /// Apply strong-bisimulation compression to compiled processes before
    /// checking (FDR's `sbisim`). Preserves every verdict; shrinks the
    /// product for models with redundant interleaving structure.
    pub fn compress(&mut self, on: bool) -> &mut Self {
        self.compress = on;
        self
    }

    /// Build the checker.
    pub fn build(&self) -> Checker {
        Checker {
            max_states: self.max_states,
            max_norm_nodes: self.max_norm_nodes,
            max_product: self.max_product,
            compress: self.compress,
        }
    }
}

/// A refinement checker with configured state-space bounds.
///
/// Create with [`Checker::new`] for defaults or through [`CheckerBuilder`].
#[derive(Debug, Clone)]
pub struct Checker {
    max_states: usize,
    max_norm_nodes: usize,
    max_product: usize,
    compress: bool,
}

impl Default for Checker {
    fn default() -> Self {
        CheckerBuilder::default().build()
    }
}

impl Checker {
    /// A checker with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound on reachable states per compiled process.
    pub fn max_states(&self) -> usize {
        self.max_states
    }

    /// Bound on specification normal-form nodes.
    pub fn max_norm_nodes(&self) -> usize {
        self.max_norm_nodes
    }

    /// Bound on explored (implementation state, spec node) pairs.
    pub fn max_product(&self) -> usize {
        self.max_product
    }

    /// Whether compiled processes are bisimulation-compressed.
    pub fn compress(&self) -> bool {
        self.compress
    }

    /// Compile a process to its explicit LTS (FDR's "explicate"), applying
    /// strong-bisimulation compression when enabled.
    ///
    /// # Errors
    ///
    /// Propagates state-space and recursion errors from the core semantics.
    pub fn compile(&self, p: &Process, defs: &Definitions) -> Result<Lts, CheckError> {
        let lts = Lts::build(p.clone(), defs, self.max_states)?;
        if self.compress {
            Ok(csp::compress::quotient_bisim(&lts).lts)
        } else {
            Ok(lts)
        }
    }

    /// Normalise an LTS for use as a specification.
    ///
    /// # Errors
    ///
    /// [`CheckError::NormalisationExceeded`] if the subset construction grows
    /// past the configured bound.
    pub fn normalise(&self, lts: &Lts) -> Result<NormalisedLts, CheckError> {
        NormalisedLts::build(lts, self.max_norm_nodes)
    }

    /// Check `spec ⊑T impl_` (trace refinement).
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded its bound.
    pub fn trace_refinement(
        &self,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        let spec_lts = self.compile(spec, defs)?;
        let norm = self.normalise(&spec_lts)?;
        let impl_lts = self.compile(impl_, defs)?;
        self.refine(&norm, &impl_lts, RefinementModel::Traces)
    }

    /// Check `spec ⊑F impl_` (stable-failures refinement).
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded its bound.
    pub fn failures_refinement(
        &self,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        let spec_lts = self.compile(spec, defs)?;
        let norm = self.normalise(&spec_lts)?;
        let impl_lts = self.compile(impl_, defs)?;
        self.refine(&norm, &impl_lts, RefinementModel::Failures)
    }

    /// Check `spec ⊑FD impl_` (failures-divergences refinement).
    ///
    /// Implemented as divergence-freedom of the implementation followed by
    /// stable-failures refinement, which coincides with FD refinement
    /// whenever the specification is divergence-free (true of every
    /// specification built by [`crate::properties`]).
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded its bound.
    pub fn failures_divergences_refinement(
        &self,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        let divergence = self.divergence_free(impl_, defs)?;
        if !divergence.is_pass() {
            return Ok(divergence);
        }
        self.failures_refinement(spec, impl_, defs)
    }

    /// Refinement of a pre-compiled implementation against a pre-normalised
    /// specification. Useful when one spec is checked against many
    /// implementations (or vice versa).
    ///
    /// A failing verdict carries a counterexample of minimum visible-trace
    /// length (states are explored in 0-1 BFS order).
    ///
    /// # Errors
    ///
    /// [`CheckError::ProductExceeded`] if the product grows past its bound.
    pub fn refine(
        &self,
        spec: &NormalisedLts,
        impl_lts: &Lts,
        model: RefinementModel,
    ) -> Result<Verdict, CheckError> {
        let mut stats = CheckStats::default();
        refine_zero_one(
            spec,
            impl_lts,
            model,
            self.max_product,
            None,
            &Budget::unbounded(),
            &mut stats,
        )
    }

    /// Like [`Checker::refine`], also returning the exploration's
    /// [`CheckStats`].
    ///
    /// # Errors
    ///
    /// [`CheckError::ProductExceeded`] if the product grows past its bound.
    pub fn refine_with_stats(
        &self,
        spec: &NormalisedLts,
        impl_lts: &Lts,
        model: RefinementModel,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        self.refine_with_options(spec, impl_lts, model, &CheckOptions::UNBOUNDED)
    }

    /// Like [`Checker::refine_with_stats`], under the resource budgets of
    /// `options`. Exhausting a budget yields [`Verdict::Inconclusive`]
    /// (stats attached), never a panic or an unbounded run.
    ///
    /// # Errors
    ///
    /// [`CheckError::ProductExceeded`] if the product grows past its hard
    /// bound before any budget is reached.
    pub fn refine_with_options(
        &self,
        spec: &NormalisedLts,
        impl_lts: &Lts,
        model: RefinementModel,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        self.refine_with_options_resumable(spec, impl_lts, model, options, None)
            .map(|(verdict, _, stats)| (verdict, stats))
    }

    /// [`Checker::refine_with_options`] with checkpoint/resume: pass
    /// `resume` to continue an interrupted exploration, and receive the
    /// continuation frontier alongside any [`Verdict::Inconclusive`]. See
    /// [`refine_zero_one_resumable`] for the exact-continuation contract.
    pub(crate) fn refine_with_options_resumable(
        &self,
        spec: &NormalisedLts,
        impl_lts: &Lts,
        model: RefinementModel,
        options: &CheckOptions,
        resume: Option<&SerialFrontier>,
    ) -> Result<(Verdict, Option<SerialFrontier>, CheckStats), CheckError> {
        let start = Instant::now();
        let mut stats = CheckStats {
            threads: 1,
            shards: 1,
            ..CheckStats::default()
        };
        let budget = Budget::start(options);
        let (verdict, frontier) = refine_zero_one_resumable(
            spec,
            impl_lts,
            model,
            self.max_product,
            None,
            &budget,
            &mut stats,
            resume,
        )?;
        stats.shard_peak = stats.pairs_discovered;
        stats.wall = start.elapsed();
        stats.cpu_busy = stats.wall;
        stats.explore_wall = stats.wall;
        Ok((verdict, frontier, stats))
    }

    /// Like [`Checker::trace_refinement`], also returning the exploration's
    /// [`CheckStats`] (compilation and normalisation are not counted).
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded its bound.
    pub fn trace_refinement_with_stats(
        &self,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        self.trace_refinement_with_options(spec, impl_, defs, &CheckOptions::UNBOUNDED)
    }

    /// Like [`Checker::trace_refinement_with_stats`], under the resource
    /// budgets of `options` (see [`CheckOptions`]).
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn trace_refinement_with_options(
        &self,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        let compile_start = Instant::now();
        let spec_lts = self.compile(spec, defs)?;
        let norm_start = Instant::now();
        let norm = self.normalise(&spec_lts)?;
        let normalise_wall = norm_start.elapsed();
        let impl_lts = self.compile(impl_, defs)?;
        let compile_wall = compile_start.elapsed();
        let (verdict, mut stats) =
            self.refine_with_options(&norm, &impl_lts, RefinementModel::Traces, options)?;
        stats.compile_wall = compile_wall;
        stats.normalise_wall = normalise_wall;
        Ok((verdict, stats))
    }

    /// Like [`Checker::failures_refinement`], under the resource budgets of
    /// `options` (see [`CheckOptions`]).
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn failures_refinement_with_options(
        &self,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        let compile_start = Instant::now();
        let spec_lts = self.compile(spec, defs)?;
        let norm_start = Instant::now();
        let norm = self.normalise(&spec_lts)?;
        let normalise_wall = norm_start.elapsed();
        let impl_lts = self.compile(impl_, defs)?;
        let compile_wall = compile_start.elapsed();
        let (verdict, mut stats) =
            self.refine_with_options(&norm, &impl_lts, RefinementModel::Failures, options)?;
        stats.compile_wall = compile_wall;
        stats.normalise_wall = normalise_wall;
        Ok((verdict, stats))
    }

    /// Like [`Checker::failures_divergences_refinement`], under the resource
    /// budgets of `options`. The divergence phase runs unbudgeted (it is
    /// linear in the implementation LTS); the failures phase honours the
    /// budgets.
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn failures_divergences_refinement_with_options(
        &self,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        let divergence = self.divergence_free(impl_, defs)?;
        if !divergence.is_pass() {
            return Ok((divergence, CheckStats::default()));
        }
        self.failures_refinement_with_options(spec, impl_, defs, options)
    }

    /// Is `p` deadlock free? A deadlock is a reachable state with no
    /// transitions at all, other than the terminated state `Ω`.
    ///
    /// # Errors
    ///
    /// Compilation exceeded its bound.
    pub fn deadlock_free(&self, p: &Process, defs: &Definitions) -> Result<Verdict, CheckError> {
        let lts = self.compile(p, defs)?;
        Ok(self.deadlock_free_compiled(&lts))
    }

    /// [`Checker::deadlock_free`] over an already-compiled LTS (e.g. one
    /// served by a [`crate::ModelStore`]).
    pub fn deadlock_free_compiled(&self, lts: &Lts) -> Verdict {
        let deadlocked: Vec<bool> = lts
            .state_ids()
            .map(|s| lts.is_terminal(s) && !matches!(lts.state(s), Process::Omega))
            .collect();
        self.deadlock_free_with_flags(lts, &deadlocked)
    }

    /// [`Checker::deadlock_free_compiled`] with the per-state deadlock
    /// flags precomputed (e.g. by a cached
    /// [`csp::analysis::GraphAnalysis`]). The witness search — and
    /// therefore the verdict and counterexample — is identical.
    pub fn deadlock_free_with_flags(&self, lts: &Lts, deadlocked: &[bool]) -> Verdict {
        let reach = Reachability::explore(lts);
        for (idx, &s) in reach.order.iter().enumerate() {
            if deadlocked[s.index()] {
                return Verdict::Fail(Counterexample::new(
                    reach.trace_to(idx),
                    FailureKind::Deadlock,
                ));
            }
        }
        Verdict::Pass
    }

    /// Is `p` divergence free (no reachable τ-loop)?
    ///
    /// # Errors
    ///
    /// Compilation exceeded its bound.
    pub fn divergence_free(&self, p: &Process, defs: &Definitions) -> Result<Verdict, CheckError> {
        let lts = self.compile(p, defs)?;
        Ok(self.divergence_free_compiled(&lts))
    }

    /// [`Checker::divergence_free`] over an already-compiled LTS (e.g. one
    /// served by a [`crate::ModelStore`]).
    pub fn divergence_free_compiled(&self, lts: &Lts) -> Verdict {
        let divergent = crate::normalise::divergent_states_of(lts);
        self.divergence_free_with_flags(lts, &divergent)
    }

    /// [`Checker::divergence_free_compiled`] with the per-state divergence
    /// flags precomputed (e.g. by a cached
    /// [`csp::analysis::GraphAnalysis`], which computes its divergent set
    /// with the *same* shared [`csp::analysis::tau_divergence`] routine).
    /// The witness search — and therefore the verdict and counterexample —
    /// is identical.
    pub fn divergence_free_with_flags(&self, lts: &Lts, divergent: &[bool]) -> Verdict {
        let reach = Reachability::explore(lts);
        for (idx, &s) in reach.order.iter().enumerate() {
            if divergent[s.index()] {
                return Verdict::Fail(Counterexample::new(
                    reach.trace_to(idx),
                    FailureKind::Divergence,
                ));
            }
        }
        Verdict::Pass
    }

    /// Is `p` deterministic? After every trace, no event may be both
    /// acceptable and refusable; divergence also counts as nondeterminism
    /// (as in FDR's check).
    ///
    /// # Errors
    ///
    /// Compilation or normalisation exceeded its bound.
    pub fn deterministic(&self, p: &Process, defs: &Definitions) -> Result<Verdict, CheckError> {
        let lts = self.compile(p, defs)?;
        let norm = self.normalise(&lts)?;
        Ok(self.deterministic_compiled(&norm))
    }

    /// [`Checker::deterministic`] over an already-normalised LTS (e.g. one
    /// served by a [`crate::ModelStore`]). The check runs entirely on the
    /// normal form.
    pub fn deterministic_compiled(&self, norm: &NormalisedLts) -> Verdict {
        // BFS over the normal form with parent tracking for witness traces.
        let mut parents: Vec<(u32, Option<EventId>)> = vec![(0, None)];
        let mut order: Vec<NormNodeId> = vec![norm.initial()];
        let mut seen: HashMap<NormNodeId, u32> = HashMap::new();
        seen.insert(norm.initial(), 0);

        let mut frontier = 0usize;
        while frontier < order.len() {
            let node = order[frontier];
            let idx = frontier as u32;

            if norm.divergent(node) {
                return Verdict::Fail(Counterexample::new(
                    rebuild_norm_trace(&order, &parents, idx),
                    FailureKind::Divergence,
                ));
            }
            for e in norm.enabled(node) {
                let refusable = norm.acceptances(node).any(|a| !a.contains(e));
                if refusable {
                    return Verdict::Fail(Counterexample::new(
                        rebuild_norm_trace(&order, &parents, idx),
                        FailureKind::Nondeterminism { event: e },
                    ));
                }
            }

            for e in norm.enabled(node) {
                let next = norm.after(node, e).expect("enabled event has successor");
                if let std::collections::hash_map::Entry::Vacant(entry) = seen.entry(next) {
                    entry.insert(order.len() as u32);
                    order.push(next);
                    parents.push((idx, Some(e)));
                }
            }
            frontier += 1;
        }
        Verdict::Pass
    }
}

/// Which semantic model a refinement runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinementModel {
    /// Finite traces (`⊑T`).
    Traces,
    /// Stable failures (`⊑F`).
    Failures,
}

/// The stable-failures violation test, shared verbatim by the serial and
/// parallel engines: one reusable bitset scratch row at the spec's
/// acceptance width, so each stable implementation state costs an edge scan
/// plus word-level subset tests against the spec node's minimal
/// acceptances — no per-state allocation.
pub(crate) struct FailureProbe {
    scratch: Vec<u64>,
}

impl FailureProbe {
    pub(crate) fn new(spec: &NormalisedLts) -> FailureProbe {
        FailureProbe {
            scratch: vec![0u64; spec.acceptance_words()],
        }
    }

    /// If an implementation state with outgoing `edges` (and Ω-ness
    /// `omega`) is stable, check its acceptance against spec node `n`'s
    /// minimal acceptances. Returns the violation, if any.
    ///
    /// Events past the spec's bitset width are dropped from the scratch
    /// row: no spec acceptance can contain them, so they never decide a
    /// subset test (extra offered events only ever help the
    /// implementation). They still appear in the reported violation.
    pub(crate) fn violation(
        &mut self,
        spec: &NormalisedLts,
        n: NormNodeId,
        edges: &[(Label, StateId)],
        omega: bool,
    ) -> Option<FailureKind> {
        // Terminated processes have no stable failures.
        if omega {
            return None;
        }
        let mut stable = true;
        let mut events: Vec<EventId> = Vec::new();
        let mut tick = false;
        self.scratch.fill(0);
        for &(label, _) in edges {
            match label {
                Label::Tau => stable = false,
                Label::Tick => tick = true,
                Label::Event(e) => {
                    events.push(e);
                    let i = e.index();
                    if i / 64 < self.scratch.len() {
                        self.scratch[i / 64] |= 1 << (i % 64);
                    }
                }
            }
        }
        if !stable {
            return None;
        }
        let ok = spec
            .acceptances(n)
            .any(|spec_acc| spec_acc.is_subset_of_words(&self.scratch, tick));
        if ok {
            None
        } else {
            Some(FailureKind::RefusalViolation {
                accepted: events,
                accepts_tick: tick,
            })
        }
    }
}

/// One discovered product pair in the 0-1 BFS arena. Improvements append a
/// fresh node and repoint the pair's map entry, so parent chains of
/// already-recorded nodes stay immutable.
struct ProductNode {
    pair: (StateId, NormNodeId),
    vlen: u32,
    parent: u32,
    label: Option<EventId>,
}

/// The mutable state of a serial 0-1 BFS product exploration.
struct Explorer {
    nodes: Vec<ProductNode>,
    /// Current best arena node per pair.
    current: HashMap<(StateId, NormNodeId), u32>,
    deque: VecDeque<u32>,
    max_product: usize,
    /// Hard cap on visible trace length; children beyond it are not queued.
    bound: Option<u32>,
}

impl Explorer {
    fn new(root: (StateId, NormNodeId), max_product: usize, bound: Option<u32>) -> Explorer {
        let mut ex = Explorer {
            nodes: Vec::new(),
            current: HashMap::new(),
            deque: VecDeque::new(),
            max_product,
            bound,
        };
        ex.nodes.push(ProductNode {
            pair: root,
            vlen: 0,
            parent: 0,
            label: None,
        });
        ex.current.insert(root, 0);
        ex.deque.push_back(0);
        ex
    }

    /// Offer a child pair at visible depth `vlen`; queue it when it is new
    /// or improves on the best known depth (τ edges go to the front of the
    /// deque, visible edges to the back — the 0-1 BFS discipline).
    fn relax(
        &mut self,
        child: (StateId, NormNodeId),
        vlen: u32,
        parent: u32,
        label: Option<EventId>,
        stats: &mut CheckStats,
    ) -> Result<(), CheckError> {
        if self.bound.is_some_and(|b| vlen > b) {
            return Ok(());
        }
        if let Some(&known) = self.current.get(&child) {
            if vlen >= self.nodes[known as usize].vlen {
                return Ok(());
            }
        } else {
            if self.current.len() >= self.max_product {
                return Err(CheckError::ProductExceeded {
                    limit: self.max_product,
                });
            }
            stats.pairs_discovered += 1;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(ProductNode {
            pair: child,
            vlen,
            parent,
            label,
        });
        self.current.insert(child, idx);
        if label.is_none() {
            self.deque.push_front(idx);
        } else {
            self.deque.push_back(idx);
        }
        stats.frontier_peak = stats.frontier_peak.max(self.deque.len() as u64);
        Ok(())
    }

    /// Snapshot the exploration into a [`SerialFrontier`] checkpoint. The
    /// cumulative stats counters travel with the frontier so a resumed run
    /// reports totals as if it had never stopped.
    fn capture(&self, stats: &CheckStats) -> SerialFrontier {
        SerialFrontier {
            nodes: self
                .nodes
                .iter()
                .map(|n| CkptNode {
                    s: n.pair.0.index() as u32,
                    n: n.pair.1.index() as u32,
                    vlen: n.vlen,
                    parent: n.parent,
                    label: n.label,
                })
                .collect(),
            deque: self.deque.iter().copied().collect(),
            pairs_discovered: stats.pairs_discovered,
            expansions: stats.expansions,
            transitions: stats.transitions,
            frontier_peak: stats.frontier_peak,
        }
    }

    /// Rebuild an exploration from a checkpoint. The pair map is replayed in
    /// arena order under [`Explorer::relax`]'s exact insert-or-improve rule,
    /// so each pair ends up pointing at the same arena node it did when the
    /// frontier was captured and the stale-entry checks behave identically.
    fn restore(f: &SerialFrontier, max_product: usize, bound: Option<u32>) -> Explorer {
        let mut ex = Explorer {
            nodes: Vec::with_capacity(f.nodes.len()),
            current: HashMap::with_capacity(f.nodes.len()),
            deque: f.deque.iter().copied().collect(),
            max_product,
            bound,
        };
        for n in &f.nodes {
            ex.nodes.push(ProductNode {
                pair: (
                    StateId::from_index(n.s as usize),
                    NormNodeId::from_index(n.n as usize),
                ),
                vlen: n.vlen,
                parent: n.parent,
                label: n.label,
            });
        }
        for idx in 0..ex.nodes.len() {
            let (pair, vlen) = (ex.nodes[idx].pair, ex.nodes[idx].vlen);
            let improves = match ex.current.get(&pair) {
                None => true,
                Some(&known) => vlen < ex.nodes[known as usize].vlen,
            };
            if improves {
                ex.current.insert(pair, idx as u32);
            }
        }
        ex
    }

    /// The visible trace leading to arena node `idx`.
    fn trace_to(&self, mut idx: u32) -> Trace {
        let mut events: Vec<TraceEvent> = Vec::new();
        while idx != 0 {
            let node = &self.nodes[idx as usize];
            if let Some(e) = node.label {
                events.push(TraceEvent::Event(e));
            }
            idx = node.parent;
        }
        events.reverse();
        events.into_iter().collect()
    }
}

/// Serial product exploration in 0-1 BFS order (`τ` = 0, visible = 1), so
/// the first violation found has minimum visible-trace length.
///
/// With `bound: Some(l)`, exploration never queues a pair beyond visible
/// depth `l`. When a violation at depth ≤ `l` is known to exist (the
/// parallel engine's canonical witness recovery), this bounds the walk to
/// the ≤ `l` sphere of the product without changing which violation is
/// found first — the expansion order of in-bound nodes is identical to the
/// unbounded walk's.
pub(crate) fn refine_zero_one(
    spec: &NormalisedLts,
    impl_lts: &Lts,
    model: RefinementModel,
    max_product: usize,
    bound: Option<u32>,
    budget: &Budget,
    stats: &mut CheckStats,
) -> Result<Verdict, CheckError> {
    refine_zero_one_resumable(
        spec,
        impl_lts,
        model,
        max_product,
        bound,
        budget,
        stats,
        None,
    )
    .map(|(verdict, _)| verdict)
}

/// [`refine_zero_one`] with checkpoint/resume: pass `resume` to continue an
/// interrupted exploration, and receive the continuation frontier alongside
/// any `Inconclusive` verdict.
///
/// The frontier is an *exact* continuation — node arena, pair map and deque
/// order are restored verbatim — so interrupt + resume reaches a verdict
/// (including the counterexample trace and the final state count)
/// bit-identical to an uninterrupted run. Callers must validate the
/// frontier against these exact models first
/// ([`SerialFrontier::validate`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_zero_one_resumable(
    spec: &NormalisedLts,
    impl_lts: &Lts,
    model: RefinementModel,
    max_product: usize,
    bound: Option<u32>,
    budget: &Budget,
    stats: &mut CheckStats,
    resume: Option<&SerialFrontier>,
) -> Result<(Verdict, Option<SerialFrontier>), CheckError> {
    let mut ex = match resume {
        Some(frontier) => {
            stats.pairs_discovered = frontier.pairs_discovered;
            stats.expansions = frontier.expansions;
            stats.transitions = frontier.transitions;
            stats.frontier_peak = stats.frontier_peak.max(frontier.frontier_peak);
            Explorer::restore(frontier, max_product, bound)
        }
        None => {
            let root = (impl_lts.initial(), spec.initial());
            stats.pairs_discovered += 1;
            Explorer::new(root, max_product, bound)
        }
    };
    let mut probe = FailureProbe::new(spec);

    loop {
        if ex.deque.is_empty() {
            break;
        }
        // Budget check before the pop (same stats as the post-pop check the
        // engine used to do, so trip points are unchanged) — the pending
        // node stays in the deque and the frontier remains a complete
        // continuation.
        if let Some(reason) = budget.exceeded(stats.pairs_discovered) {
            stats.wall_overshoot = budget.wall_overshoot();
            let frontier = ex.capture(stats);
            return Ok((
                Verdict::Inconclusive(Inconclusive::new(stats.pairs_discovered, reason)),
                Some(frontier),
            ));
        }
        let idx = ex.deque.pop_front().expect("deque checked non-empty");
        let node = &ex.nodes[idx as usize];
        let (pair, vlen) = (node.pair, node.vlen);
        if ex.current.get(&pair) != Some(&idx) {
            continue; // superseded by a shorter path
        }
        stats.expansions += 1;
        let (s, n) = pair;

        if model == RefinementModel::Failures {
            let omega = matches!(impl_lts.state(s), Process::Omega);
            if let Some(kind) = probe.violation(spec, n, impl_lts.edges(s), omega) {
                return Ok((
                    Verdict::Fail(Counterexample::new(ex.trace_to(idx), kind)),
                    None,
                ));
            }
        }

        for &(label, target) in impl_lts.edges(s) {
            stats.transitions += 1;
            match label {
                Label::Tau => {
                    ex.relax((target, n), vlen, idx, None, stats)?;
                }
                Label::Event(e) => match spec.after(n, e) {
                    Some(n2) => {
                        ex.relax((target, n2), vlen + 1, idx, Some(e), stats)?;
                    }
                    None => {
                        return Ok((
                            Verdict::Fail(Counterexample::new(
                                ex.trace_to(idx),
                                FailureKind::TraceViolation { event: Some(e) },
                            )),
                            None,
                        ));
                    }
                },
                Label::Tick => {
                    if !spec.allows_tick(n) {
                        return Ok((
                            Verdict::Fail(Counterexample::new(
                                ex.trace_to(idx),
                                FailureKind::TraceViolation { event: None },
                            )),
                            None,
                        ));
                    }
                    // Nothing to explore after successful termination.
                }
            }
        }
    }
    Ok((Verdict::Pass, None))
}

fn rebuild_norm_trace(
    order: &[NormNodeId],
    parents: &[(u32, Option<EventId>)],
    mut idx: u32,
) -> Trace {
    let mut events: Vec<TraceEvent> = Vec::new();
    while idx != 0 {
        let (parent, label) = parents[idx as usize];
        if let Some(e) = label {
            events.push(TraceEvent::Event(e));
        }
        idx = parent;
    }
    let _ = order;
    events.reverse();
    events.into_iter().collect()
}

/// BFS over a single LTS with parent tracking for witness extraction.
struct Reachability {
    order: Vec<StateId>,
    parents: Vec<(u32, Option<EventId>)>,
}

impl Reachability {
    fn explore(lts: &Lts) -> Reachability {
        let mut order = vec![lts.initial()];
        let mut parents: Vec<(u32, Option<EventId>)> = vec![(0, None)];
        let mut seen = vec![false; lts.state_count()];
        seen[lts.initial().index()] = true;
        let mut frontier = 0usize;
        while frontier < order.len() {
            let s = order[frontier];
            for &(label, target) in lts.edges(s) {
                if seen[target.index()] {
                    continue;
                }
                seen[target.index()] = true;
                order.push(target);
                parents.push((frontier as u32, label.event()));
            }
            frontier += 1;
        }
        Reachability { order, parents }
    }

    fn trace_to(&self, mut idx: usize) -> Trace {
        let mut events: Vec<TraceEvent> = Vec::new();
        while idx != 0 {
            let (parent, label) = self.parents[idx];
            if let Some(e) = label {
                events.push(TraceEvent::Event(e));
            }
            idx = parent as usize;
        }
        events.reverse();
        events.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp::EventSet;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    fn checker() -> Checker {
        Checker::new()
    }

    #[test]
    fn reflexive_trace_refinement() {
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let v = checker().trace_refinement(&p, &p, &defs).unwrap();
        assert!(v.is_pass());
    }

    #[test]
    fn trace_violation_found_with_shortest_trace() {
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let v = checker().trace_refinement(&spec, &impl_, &defs).unwrap();
        let cex = v.counterexample().expect("must fail");
        assert_eq!(cex.trace(), &Trace::from_events([e(0)]));
        assert_eq!(
            cex.kind(),
            &FailureKind::TraceViolation { event: Some(e(1)) }
        );
    }

    #[test]
    fn subset_behaviour_trace_refines() {
        let defs = Definitions::new();
        let spec = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let impl_ = Process::prefix(e(0), Process::Stop);
        assert!(checker()
            .trace_refinement(&spec, &impl_, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn unexpected_termination_is_a_trace_violation() {
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let v = checker()
            .trace_refinement(&spec, &Process::Skip, &defs)
            .unwrap();
        assert_eq!(
            v.counterexample().unwrap().kind(),
            &FailureKind::TraceViolation { event: None }
        );
    }

    #[test]
    fn internal_choice_fails_failures_refinement_of_external() {
        // SPEC = a -> STOP [] b -> STOP must offer both; the internal choice
        // may refuse one, so ⊑F fails while ⊑T passes.
        let defs = Definitions::new();
        let spec = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let impl_ = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        assert!(checker()
            .trace_refinement(&spec, &impl_, &defs)
            .unwrap()
            .is_pass());
        let v = checker().failures_refinement(&spec, &impl_, &defs).unwrap();
        let cex = v.counterexample().expect("⊑F must fail");
        assert!(matches!(cex.kind(), FailureKind::RefusalViolation { .. }));
        assert!(cex.trace().is_empty());
    }

    #[test]
    fn failures_refinement_reflexive_on_nondeterministic_process() {
        let defs = Definitions::new();
        let p = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        assert!(checker()
            .failures_refinement(&p, &p, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn deadlocked_stop_fails_failures_refinement_of_prefix() {
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let v = checker()
            .failures_refinement(&spec, &Process::Stop, &defs)
            .unwrap();
        assert!(matches!(
            v.counterexample().unwrap().kind(),
            FailureKind::RefusalViolation { .. }
        ));
    }

    #[test]
    fn deadlock_free_detects_stop() {
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::Stop);
        let v = checker().deadlock_free(&p, &defs).unwrap();
        let cex = v.counterexample().unwrap();
        assert_eq!(cex.kind(), &FailureKind::Deadlock);
        assert_eq!(cex.trace(), &Trace::from_events([e(0)]));
    }

    #[test]
    fn skip_is_deadlock_free() {
        let defs = Definitions::new();
        assert!(checker()
            .deadlock_free(&Process::Skip, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn recursive_process_is_deadlock_free() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        assert!(checker()
            .deadlock_free(&Process::var(d), &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn divergence_detected_after_hiding() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let hidden = Process::hide(Process::var(d), EventSet::singleton(e(0)));
        let v = checker().divergence_free(&hidden, &defs).unwrap();
        assert_eq!(v.counterexample().unwrap().kind(), &FailureKind::Divergence);
    }

    #[test]
    fn deterministic_process_passes() {
        let defs = Definitions::new();
        let p = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        assert!(checker().deterministic(&p, &defs).unwrap().is_pass());
    }

    #[test]
    fn internal_choice_is_nondeterministic() {
        let defs = Definitions::new();
        let p = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let v = checker().deterministic(&p, &defs).unwrap();
        assert!(matches!(
            v.counterexample().unwrap().kind(),
            FailureKind::Nondeterminism { .. }
        ));
    }

    #[test]
    fn product_bound_is_enforced() {
        let defs = Definitions::new();
        let mut c = CheckerBuilder::new();
        c.max_product(2);
        let checker = c.build();
        let spec = Process::prefix_chain((0..5).map(e), Process::Stop);
        let err = checker
            .trace_refinement(&spec, &spec.clone(), &defs)
            .unwrap_err();
        assert!(matches!(err, CheckError::ProductExceeded { limit: 2 }));
    }

    #[test]
    fn serial_state_budget_degrades_to_inconclusive() {
        let defs = Definitions::new();
        let spec = Process::prefix_chain((0..100).map(e), Process::Stop);
        let options = CheckOptions {
            max_states: Some(10),
            max_wall_ms: None,
        };
        let (v, stats) = checker()
            .trace_refinement_with_options(&spec, &spec.clone(), &defs, &options)
            .unwrap();
        let inc = v.inconclusive().expect("must be inconclusive");
        assert_eq!(
            inc.reason,
            crate::counterexample::BudgetReason::States { limit: 10 }
        );
        assert_eq!(inc.states_explored, stats.pairs_discovered);
        assert!(stats.pairs_discovered >= 10);
        assert!(stats.pairs_discovered < 101);
    }

    #[test]
    fn serial_zero_wall_budget_degrades_to_inconclusive() {
        let defs = Definitions::new();
        let spec = Process::prefix_chain((0..100).map(e), Process::Stop);
        let options = CheckOptions {
            max_states: None,
            max_wall_ms: Some(0),
        };
        let (v, _) = checker()
            .trace_refinement_with_options(&spec, &spec.clone(), &defs, &options)
            .unwrap();
        assert!(
            matches!(
                v,
                Verdict::Inconclusive(Inconclusive {
                    reason: BudgetReason::Wall { limit_ms: 0 },
                    ..
                })
            ),
            "{v:?}"
        );
    }

    #[test]
    fn serial_violation_found_within_budget_stays_conclusive() {
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let options = CheckOptions {
            max_states: Some(100),
            max_wall_ms: None,
        };
        let (v, _) = checker()
            .trace_refinement_with_options(&spec, &impl_, &defs, &options)
            .unwrap();
        assert!(v.counterexample().is_some(), "{v:?}");
    }

    #[test]
    fn unbounded_options_change_nothing() {
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        assert!(!CheckOptions::UNBOUNDED.is_bounded());
        let (v, _) = checker()
            .trace_refinement_with_options(&p, &p.clone(), &defs, &CheckOptions::UNBOUNDED)
            .unwrap();
        assert!(v.is_pass());
        let opts = CheckOptions {
            max_states: Some(1),
            ..CheckOptions::default()
        };
        assert!(opts.is_bounded());
    }

    #[test]
    fn budgeted_failures_refinement_is_inconclusive_not_failing() {
        let defs = Definitions::new();
        let spec = Process::prefix_chain((0..50).map(e), Process::Stop);
        let options = CheckOptions {
            max_states: Some(5),
            max_wall_ms: None,
        };
        let (v, _) = checker()
            .failures_refinement_with_options(&spec, &spec.clone(), &defs, &options)
            .unwrap();
        assert!(v.is_inconclusive(), "{v:?}");
        let (fd, _) = checker()
            .failures_divergences_refinement_with_options(&spec, &spec.clone(), &defs, &options)
            .unwrap();
        assert!(fd.is_inconclusive(), "{fd:?}");
    }

    #[test]
    fn refusal_counterexample_after_nonempty_trace() {
        // SPEC = a -> (b -> STOP [] c -> STOP)
        // IMPL = a -> (b -> STOP |~| c -> STOP): fails ⊑F after ⟨a⟩.
        let defs = Definitions::new();
        let spec = Process::prefix(
            e(0),
            Process::external_choice(
                Process::prefix(e(1), Process::Stop),
                Process::prefix(e(2), Process::Stop),
            ),
        );
        let impl_ = Process::prefix(
            e(0),
            Process::internal_choice(
                Process::prefix(e(1), Process::Stop),
                Process::prefix(e(2), Process::Stop),
            ),
        );
        let v = checker().failures_refinement(&spec, &impl_, &defs).unwrap();
        let cex = v.counterexample().unwrap();
        assert_eq!(cex.trace(), &Trace::from_events([e(0)]));
    }
}

#[cfg(test)]
mod fd_and_compression_tests {
    use super::*;
    use csp::{EventId, EventSet};

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn fd_refinement_rejects_divergent_implementations() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let divergent = Process::hide(Process::var(d), EventSet::singleton(e(0)));
        let spec = Process::Stop;
        let v = Checker::new()
            .failures_divergences_refinement(&spec, &divergent, &defs)
            .unwrap();
        assert_eq!(v.counterexample().unwrap().kind(), &FailureKind::Divergence);
    }

    #[test]
    fn fd_refinement_passes_where_failures_does() {
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::Stop);
        let v = Checker::new()
            .failures_divergences_refinement(&p, &p, &defs)
            .unwrap();
        assert!(v.is_pass());
    }

    #[test]
    fn compression_preserves_verdicts() {
        let defs = Definitions::new();
        // An implementation with redundant interleaving structure.
        let imp = Process::interleave(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(0), Process::Stop),
        );
        let spec = Process::prefix(
            e(0),
            Process::external_choice(Process::prefix(e(0), Process::Stop), Process::Stop),
        );
        let plain = Checker::new().trace_refinement(&spec, &imp, &defs).unwrap();
        let mut b = CheckerBuilder::new();
        b.compress(true);
        let compressed = b.build().trace_refinement(&spec, &imp, &defs).unwrap();
        assert_eq!(plain.is_pass(), compressed.is_pass());
    }

    #[test]
    fn compression_shrinks_the_compiled_lts() {
        let defs = Definitions::new();
        let components: Vec<Process> = (0..4)
            .map(|_| Process::prefix(e(0), Process::prefix(e(1), Process::Stop)))
            .collect();
        let p = Process::interleave_all(components);
        let plain = Checker::new().compile(&p, &defs).unwrap();
        let mut b = CheckerBuilder::new();
        b.compress(true);
        let small = b.build().compile(&p, &defs).unwrap();
        assert!(
            small.state_count() < plain.state_count(),
            "{} vs {}",
            small.state_count(),
            plain.state_count()
        );
    }
}
