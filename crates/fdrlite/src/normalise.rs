//! Specification normalisation: τ-closed subset construction.
//!
//! Refinement checking against an arbitrary (nondeterministic) specification
//! requires the spec in *normal form*: a deterministic automaton over visible
//! events where each node also records
//!
//! * whether the spec may terminate there,
//! * the **minimal acceptance sets** of its stable states (for the
//!   stable-failures model), and
//! * whether the node can diverge (an infinite τ-path exists).
//!
//! This mirrors FDR's `normalise` compilation step.

use std::collections::{BTreeMap, HashMap};

use csp::{EventId, EventSet, Label, Lts, StateId};

use crate::error::CheckError;

/// Index of a node in a [`NormalisedLts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NormNodeId(u32);

impl NormNodeId {
    /// Raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a raw index (cache/checkpoint deserialisation).
    pub(crate) fn from_index(index: usize) -> NormNodeId {
        NormNodeId(index as u32)
    }
}

/// The initials of one stable state: the visible events it offers plus
/// whether it offers termination.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Acceptance {
    /// Visible events offered.
    pub events: EventSet,
    /// Whether `✓` is offered.
    pub tick: bool,
}

impl Acceptance {
    /// Is `self` a subset of `other` (component-wise)?
    pub fn is_subset(&self, other: &Acceptance) -> bool {
        (!self.tick || other.tick) && self.events.is_subset(&other.events)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct NormNode {
    pub(crate) after: BTreeMap<EventId, NormNodeId>,
    pub(crate) allows_tick: bool,
    pub(crate) acceptances: Vec<Acceptance>,
    pub(crate) divergent: bool,
}

/// A normalised (deterministic) view of an [`Lts`], used as the
/// specification side of a refinement check.
#[derive(Debug, Clone)]
pub struct NormalisedLts {
    nodes: Vec<NormNode>,
}

impl NormalisedLts {
    /// Normalise `lts` by τ-closed subset construction.
    ///
    /// # Errors
    ///
    /// [`CheckError::NormalisationExceeded`] if more than `max_nodes` subset
    /// nodes are produced.
    pub fn build(lts: &Lts, max_nodes: usize) -> Result<NormalisedLts, CheckError> {
        let divergent_states = divergent_states_of(lts);

        let mut nodes: Vec<NormNode> = Vec::new();
        let mut key_index: HashMap<Vec<StateId>, NormNodeId> = HashMap::new();
        let mut keys: Vec<Vec<StateId>> = Vec::new();

        let initial_key = lts.tau_closure(lts.initial());
        key_index.insert(initial_key.clone(), NormNodeId(0));
        keys.push(initial_key);

        let mut frontier = 0usize;
        while frontier < keys.len() {
            let key = keys[frontier].clone();
            let mut allows_tick = false;
            let mut acceptances: Vec<Acceptance> = Vec::new();
            let mut divergent = false;
            // event -> union of target states (pre-closure)
            let mut successors: BTreeMap<EventId, Vec<StateId>> = BTreeMap::new();

            for &s in &key {
                if divergent_states[s.index()] {
                    divergent = true;
                }
                let mut stable = true;
                let mut acc_events: Vec<EventId> = Vec::new();
                let mut acc_tick = false;
                for &(label, target) in lts.edges(s) {
                    match label {
                        Label::Tau => stable = false,
                        Label::Tick => {
                            allows_tick = true;
                            acc_tick = true;
                        }
                        Label::Event(e) => {
                            successors.entry(e).or_default().push(target);
                            acc_events.push(e);
                        }
                    }
                }
                if stable {
                    acceptances.push(Acceptance {
                        events: acc_events.into_iter().collect(),
                        tick: acc_tick,
                    });
                }
            }

            let mut after = BTreeMap::new();
            for (event, targets) in successors {
                let mut closure: Vec<StateId> = Vec::new();
                for t in targets {
                    closure.extend(lts.tau_closure(t));
                }
                closure.sort_unstable();
                closure.dedup();
                let id = match key_index.get(&closure) {
                    Some(&id) => id,
                    None => {
                        if keys.len() >= max_nodes {
                            return Err(CheckError::NormalisationExceeded { limit: max_nodes });
                        }
                        let id = NormNodeId(keys.len() as u32);
                        key_index.insert(closure.clone(), id);
                        keys.push(closure);
                        id
                    }
                };
                after.insert(event, id);
            }

            nodes.push(NormNode {
                after,
                allows_tick,
                acceptances: minimal_acceptances(acceptances),
                divergent,
            });
            frontier += 1;
        }

        Ok(NormalisedLts { nodes })
    }

    /// The initial node.
    pub fn initial(&self) -> NormNodeId {
        NormNodeId(0)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Successor node on visible event `e`, if the spec allows `e` here.
    pub fn after(&self, node: NormNodeId, e: EventId) -> Option<NormNodeId> {
        self.nodes[node.index()].after.get(&e).copied()
    }

    /// Whether the spec may terminate (`✓`) at this node.
    pub fn allows_tick(&self, node: NormNodeId) -> bool {
        self.nodes[node.index()].allows_tick
    }

    /// The minimal acceptance sets of this node's stable states.
    ///
    /// Empty exactly when the node has no stable states (i.e. it diverges),
    /// in which case the spec has **no** stable failure with this trace.
    pub fn acceptances(&self, node: NormNodeId) -> &[Acceptance] {
        &self.nodes[node.index()].acceptances
    }

    /// Whether the node can diverge.
    pub fn divergent(&self, node: NormNodeId) -> bool {
        self.nodes[node.index()].divergent
    }

    /// All visible events enabled at this node.
    pub fn enabled(&self, node: NormNodeId) -> impl Iterator<Item = EventId> + '_ {
        self.nodes[node.index()].after.keys().copied()
    }

    /// Raw node table (cache serialisation).
    pub(crate) fn raw_nodes(&self) -> &[NormNode] {
        &self.nodes
    }

    /// Rebuild from a raw node table (cache deserialisation). The caller is
    /// responsible for the table's internal consistency; `persist` validates
    /// every index bound before calling this.
    pub(crate) fn from_raw_nodes(nodes: Vec<NormNode>) -> NormalisedLts {
        NormalisedLts { nodes }
    }
}

/// States with an infinite outgoing τ-path (they can diverge).
///
/// Computed by peeling states with no remaining outgoing τ-edges (reverse
/// Kahn); whatever survives can τ-step forever.
pub(crate) fn divergent_states_of(lts: &Lts) -> Vec<bool> {
    let n = lts.state_count();
    let mut outdeg = vec![0usize; n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in lts.state_ids() {
        for &(label, target) in lts.edges(s) {
            if label.is_tau() {
                outdeg[s.index()] += 1;
                rev[target.index()].push(s.index());
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| outdeg[i] == 0).collect();
    let mut removed = vec![false; n];
    for &q in &queue {
        removed[q] = true;
    }
    while let Some(s) = queue.pop() {
        for &p in &rev[s] {
            if removed[p] {
                continue;
            }
            outdeg[p] -= 1;
            if outdeg[p] == 0 {
                removed[p] = true;
                queue.push(p);
            }
        }
    }
    removed.into_iter().map(|r| !r).collect()
}

/// Keep only acceptances that have no strict subset among the others.
fn minimal_acceptances(mut accs: Vec<Acceptance>) -> Vec<Acceptance> {
    accs.sort_unstable();
    accs.dedup();
    let keep: Vec<bool> = accs
        .iter()
        .map(|a| !accs.iter().any(|b| b != a && b.is_subset(a)))
        .collect();
    accs.into_iter()
        .zip(keep)
        .filter_map(|(a, k)| k.then_some(a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp::{Definitions, Process};

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    fn norm(p: Process) -> NormalisedLts {
        let lts = Lts::build(p, &Definitions::new(), 10_000).unwrap();
        NormalisedLts::build(&lts, 10_000).unwrap()
    }

    #[test]
    fn deterministic_process_normalises_one_to_one() {
        let p = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let n = norm(p);
        assert_eq!(n.node_count(), 3);
        let n1 = n.after(n.initial(), e(0)).unwrap();
        assert!(n.after(n1, e(1)).is_some());
        assert!(n.after(n.initial(), e(1)).is_none());
    }

    #[test]
    fn internal_choice_merges_into_one_node() {
        // a -> STOP |~| b -> STOP: initial node allows both a and b
        // (trace-wise) but has two singleton acceptances.
        let p = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let n = norm(p);
        let init = n.initial();
        assert!(n.after(init, e(0)).is_some());
        assert!(n.after(init, e(1)).is_some());
        let accs = n.acceptances(init);
        assert_eq!(accs.len(), 2);
        assert!(accs.iter().all(|a| a.events.len() == 1 && !a.tick));
    }

    #[test]
    fn external_choice_has_single_acceptance() {
        let p = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let n = norm(p);
        let accs = n.acceptances(n.initial());
        assert_eq!(accs.len(), 1);
        assert_eq!(accs[0].events.len(), 2);
    }

    #[test]
    fn tick_is_recorded() {
        let n = norm(Process::Skip);
        assert!(n.allows_tick(n.initial()));
        let accs = n.acceptances(n.initial());
        assert_eq!(accs.len(), 1);
        assert!(accs[0].tick);
    }

    #[test]
    fn divergence_flag_set_for_hidden_loop() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let hidden = Process::hide(Process::var(d), EventSet::singleton(e(0)));
        let lts = Lts::build(hidden, &defs, 1_000).unwrap();
        let n = NormalisedLts::build(&lts, 1_000).unwrap();
        assert!(n.divergent(n.initial()));
        assert!(n.acceptances(n.initial()).is_empty());
    }

    #[test]
    fn minimal_acceptances_filters_supersets() {
        let a_small = Acceptance {
            events: EventSet::singleton(e(0)),
            tick: false,
        };
        let a_big = Acceptance {
            events: [e(0), e(1)].into_iter().collect(),
            tick: false,
        };
        let out = minimal_acceptances(vec![a_big.clone(), a_small.clone()]);
        assert_eq!(out, vec![a_small]);
    }

    #[test]
    fn node_bound_is_enforced() {
        let p = Process::prefix_chain((0..20).map(e), Process::Stop);
        let lts = Lts::build(p, &Definitions::new(), 1_000).unwrap();
        let err = NormalisedLts::build(&lts, 3).unwrap_err();
        assert!(matches!(
            err,
            CheckError::NormalisationExceeded { limit: 3 }
        ));
    }
}
