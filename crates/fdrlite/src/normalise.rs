//! Specification normalisation: τ-closed subset construction onto a flat,
//! cache-friendly normal form.
//!
//! Refinement checking against an arbitrary (nondeterministic) specification
//! requires the spec in *normal form*: a deterministic automaton over visible
//! events where each node also records
//!
//! * whether the spec may terminate there,
//! * the **minimal acceptance sets** of its stable states (for the
//!   stable-failures model), and
//! * whether the node can diverge (an infinite τ-path exists).
//!
//! This mirrors FDR's `normalise` compilation step. The representation is
//! flat throughout — no per-node heap structures:
//!
//! * **Closure keys** (the τ-closed state sets of the subset construction)
//!   live in one interned sorted slab: a shared `Vec<StateId>` plus one
//!   `(start, end)` range per node, deduplicated through FNV hash buckets.
//!   Re-discovering a subset costs a hash and one slice comparison, never a
//!   `Vec` allocation.
//! * **The transition table** is CSR: per-node ranges into parallel
//!   event/target arrays sorted by event, so [`NormalisedLts::after`] is a
//!   binary search over a contiguous slice.
//! * **Acceptance sets** are rows of `u64` bitset words in one deduplicated
//!   pool addressed by [`AcceptanceId`]; nodes hold CSR ranges of ids, and
//!   the stable-failures subset test is word-parallel
//!   ([`AcceptanceView::is_subset_of_words`]).

use std::collections::HashMap;

use csp::{EventId, EventSet, Label, Lts, StateId};

use crate::error::CheckError;

/// Index of a node in a [`NormalisedLts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NormNodeId(u32);

impl NormNodeId {
    /// Raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a raw index (cache/checkpoint deserialisation).
    pub(crate) fn from_index(index: usize) -> NormNodeId {
        NormNodeId(index as u32)
    }
}

/// Index of a deduplicated acceptance row in a [`NormalisedLts`]'s pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AcceptanceId(u32);

impl AcceptanceId {
    /// Raw index of this acceptance row.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a raw index (cache deserialisation).
    pub(crate) fn from_index(index: usize) -> AcceptanceId {
        AcceptanceId(index as u32)
    }
}

/// The initials of one stable state: the visible events it offers plus
/// whether it offers termination.
///
/// This is the materialised form; inside a [`NormalisedLts`] acceptances are
/// stored as bitset rows and read through [`AcceptanceView`], which converts
/// on demand via [`AcceptanceView::to_acceptance`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Acceptance {
    /// Visible events offered.
    pub events: EventSet,
    /// Whether `✓` is offered.
    pub tick: bool,
}

impl Acceptance {
    /// Is `self` a subset of `other` (component-wise)?
    pub fn is_subset(&self, other: &Acceptance) -> bool {
        (!self.tick || other.tick) && self.events.is_subset(&other.events)
    }
}

/// Borrowed view of one acceptance row: bitset words plus the tick flag.
#[derive(Debug, Clone, Copy)]
pub struct AcceptanceView<'a> {
    words: &'a [u64],
    tick: bool,
}

impl<'a> AcceptanceView<'a> {
    /// Whether `✓` is offered.
    pub fn tick(&self) -> bool {
        self.tick
    }

    /// Membership test for a visible event.
    pub fn contains(&self, e: EventId) -> bool {
        let i = e.index();
        i / 64 < self.words.len() && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Word-level subset test against an acceptance given as raw bitset
    /// words (same width as [`NormalisedLts::acceptance_words`]) plus a
    /// tick flag: is `self ⊆ (words, tick)` component-wise?
    pub fn is_subset_of_words(&self, words: &[u64], tick: bool) -> bool {
        debug_assert_eq!(words.len(), self.words.len());
        (!self.tick || tick)
            && self
                .words
                .iter()
                .zip(words)
                .all(|(mine, theirs)| mine & !theirs == 0)
    }

    /// The events in this acceptance, in ascending id order.
    pub fn events(&self) -> impl Iterator<Item = EventId> + 'a {
        self.words.iter().copied().enumerate().flat_map(|(wi, w)| {
            (0..64)
                .filter(move |b| (w >> b) & 1 == 1)
                .map(move |b| EventId::from_index(wi * 64 + b))
        })
    }

    /// Materialise into an owned [`Acceptance`].
    pub fn to_acceptance(&self) -> Acceptance {
        Acceptance {
            events: self.events().collect(),
            tick: self.tick,
        }
    }
}

/// A normalised (deterministic) view of an [`Lts`], used as the
/// specification side of a refinement check.
///
/// All storage is flat (see the module docs): CSR transition table, CSR
/// acceptance-id table, one deduplicated bitset pool. The `persist` module
/// reads and rebuilds these fields directly when caching normal forms.
#[derive(Debug, Clone)]
pub struct NormalisedLts {
    /// CSR offsets into `after_ev`/`after_tgt`, length `node_count + 1`.
    pub(crate) after_off: Vec<u32>,
    /// Transition events, sorted ascending within each node's range.
    pub(crate) after_ev: Vec<EventId>,
    /// Transition targets, parallel to `after_ev`.
    pub(crate) after_tgt: Vec<NormNodeId>,
    /// Per-node "may terminate" flags.
    pub(crate) tick_ok: Vec<bool>,
    /// Per-node divergence flags.
    pub(crate) div_flag: Vec<bool>,
    /// CSR offsets into `acc_ids`, length `node_count + 1`.
    pub(crate) acc_off: Vec<u32>,
    /// Acceptance rows of each node, minimal-antichain order.
    pub(crate) acc_ids: Vec<AcceptanceId>,
    /// Bitset words per pool row (covers the largest event id in the LTS).
    pub(crate) acc_wps: u32,
    /// The pool: row `i` occupies `pool_words[i*acc_wps..(i+1)*acc_wps]`.
    pub(crate) pool_words: Vec<u64>,
    /// Tick flag of each pool row, parallel to the rows of `pool_words`.
    pub(crate) pool_ticks: Vec<bool>,
}

impl NormalisedLts {
    /// Normalise `lts` by τ-closed subset construction.
    ///
    /// # Errors
    ///
    /// [`CheckError::NormalisationExceeded`] if more than `max_nodes` subset
    /// nodes are produced.
    pub fn build(lts: &Lts, max_nodes: usize) -> Result<NormalisedLts, CheckError> {
        // Intern `closure` (sorted, deduplicated); returns the node id and
        // whether this call created it.
        fn intern_key(
            closure: &[StateId],
            slab: &mut Vec<StateId>,
            ranges: &mut Vec<(u32, u32)>,
            buckets: &mut HashMap<u64, Vec<u32>>,
        ) -> (u32, bool) {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for s in closure {
                h ^= s.index() as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            let ids = buckets.entry(h).or_default();
            for &id in ids.iter() {
                let (a, b) = ranges[id as usize];
                if &slab[a as usize..b as usize] == closure {
                    return (id, false);
                }
            }
            let id = ranges.len() as u32;
            let start = slab.len() as u32;
            slab.extend_from_slice(closure);
            ranges.push((start, slab.len() as u32));
            ids.push(id);
            (id, true)
        }

        let divergent_states = divergent_states_of(lts);

        // Bitset width: enough words for the largest visible event id.
        let max_event = lts
            .state_ids()
            .flat_map(|s| lts.edges(s).iter())
            .filter_map(|&(l, _)| l.event())
            .map(EventId::index)
            .max();
        let wps = max_event.map_or(0, |m| m / 64 + 1);

        // Interned sorted-slab closure keys.
        let mut slab: Vec<StateId> = Vec::new();
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();

        // Deduplicated acceptance pool.
        let mut pool_words: Vec<u64> = Vec::new();
        let mut pool_ticks: Vec<bool> = Vec::new();
        let mut pool_index: HashMap<(Vec<u64>, bool), u32> = HashMap::new();

        let mut after_off: Vec<u32> = vec![0];
        let mut after_ev: Vec<EventId> = Vec::new();
        let mut after_tgt: Vec<NormNodeId> = Vec::new();
        let mut tick_ok: Vec<bool> = Vec::new();
        let mut div_flag: Vec<bool> = Vec::new();
        let mut acc_off: Vec<u32> = vec![0];
        let mut acc_ids: Vec<AcceptanceId> = Vec::new();

        let initial_key = lts.tau_closure(lts.initial());
        intern_key(&initial_key, &mut slab, &mut ranges, &mut buckets);

        // Scratch reused across nodes.
        let mut succ_pairs: Vec<(EventId, StateId)> = Vec::new();
        let mut closure: Vec<StateId> = Vec::new();
        let mut row = vec![0u64; wps];

        let mut frontier = 0usize;
        while frontier < ranges.len() {
            let (ka, kb) = ranges[frontier];
            let mut allows_tick = false;
            let mut divergent = false;
            let mut accs: Vec<(Vec<u64>, bool)> = Vec::new();
            succ_pairs.clear();

            for i in ka..kb {
                let s = slab[i as usize];
                if divergent_states[s.index()] {
                    divergent = true;
                }
                let mut stable = true;
                let mut acc_tick = false;
                row.fill(0);
                for &(label, target) in lts.edges(s) {
                    match label {
                        Label::Tau => stable = false,
                        Label::Tick => {
                            allows_tick = true;
                            acc_tick = true;
                        }
                        Label::Event(e) => {
                            succ_pairs.push((e, target));
                            row[e.index() / 64] |= 1 << (e.index() % 64);
                        }
                    }
                }
                if stable {
                    accs.push((row.clone(), acc_tick));
                }
            }

            for (words, tick) in minimal_acceptances(accs) {
                let next = pool_ticks.len() as u32;
                let id = *pool_index.entry((words, tick)).or_insert_with_key(|k| {
                    pool_words.extend_from_slice(&k.0);
                    pool_ticks.push(k.1);
                    next
                });
                acc_ids.push(AcceptanceId(id));
            }
            acc_off.push(acc_ids.len() as u32);

            // Group successor targets by event; each group's τ-closure is a
            // candidate node.
            succ_pairs.sort_unstable();
            let mut i = 0usize;
            while i < succ_pairs.len() {
                let event = succ_pairs[i].0;
                closure.clear();
                while i < succ_pairs.len() && succ_pairs[i].0 == event {
                    closure.extend(lts.tau_closure(succ_pairs[i].1));
                    i += 1;
                }
                closure.sort_unstable();
                closure.dedup();
                let (id, is_new) = intern_key(&closure, &mut slab, &mut ranges, &mut buckets);
                if is_new && ranges.len() > max_nodes {
                    return Err(CheckError::NormalisationExceeded { limit: max_nodes });
                }
                after_ev.push(event);
                after_tgt.push(NormNodeId(id));
            }
            after_off.push(after_ev.len() as u32);
            tick_ok.push(allows_tick);
            div_flag.push(divergent);
            frontier += 1;
        }

        Ok(NormalisedLts {
            after_off,
            after_ev,
            after_tgt,
            tick_ok,
            div_flag,
            acc_off,
            acc_ids,
            acc_wps: wps as u32,
            pool_words,
            pool_ticks,
        })
    }

    /// The initial node.
    pub fn initial(&self) -> NormNodeId {
        NormNodeId(0)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.tick_ok.len()
    }

    fn after_range(&self, node: NormNodeId) -> std::ops::Range<usize> {
        self.after_off[node.index()] as usize..self.after_off[node.index() + 1] as usize
    }

    /// Successor node on visible event `e`, if the spec allows `e` here.
    pub fn after(&self, node: NormNodeId, e: EventId) -> Option<NormNodeId> {
        let r = self.after_range(node);
        self.after_ev[r.clone()]
            .binary_search(&e)
            .ok()
            .map(|i| self.after_tgt[r.start + i])
    }

    /// Whether the spec may terminate (`✓`) at this node.
    pub fn allows_tick(&self, node: NormNodeId) -> bool {
        self.tick_ok[node.index()]
    }

    /// Bitset words per acceptance row. An implementation-side acceptance
    /// for [`AcceptanceView::is_subset_of_words`] must use this width
    /// (events beyond it cannot occur in any spec acceptance, so dropping
    /// them never changes a subset verdict).
    pub fn acceptance_words(&self) -> usize {
        self.acc_wps as usize
    }

    /// The acceptance rows of this node, as pool ids.
    ///
    /// Empty exactly when the node has no stable states (i.e. it diverges),
    /// in which case the spec has **no** stable failure with this trace.
    pub fn acceptance_ids(&self, node: NormNodeId) -> &[AcceptanceId] {
        &self.acc_ids[self.acc_off[node.index()] as usize..self.acc_off[node.index() + 1] as usize]
    }

    /// View one pool row.
    pub fn acceptance(&self, id: AcceptanceId) -> AcceptanceView<'_> {
        let wps = self.acc_wps as usize;
        AcceptanceView {
            words: &self.pool_words[id.index() * wps..(id.index() + 1) * wps],
            tick: self.pool_ticks[id.index()],
        }
    }

    /// The minimal acceptance sets of this node's stable states.
    pub fn acceptances(&self, node: NormNodeId) -> impl Iterator<Item = AcceptanceView<'_>> + '_ {
        self.acceptance_ids(node)
            .iter()
            .map(|&id| self.acceptance(id))
    }

    /// Rows in the deduplicated acceptance pool.
    pub fn acceptance_pool_len(&self) -> usize {
        self.pool_ticks.len()
    }

    /// Whether the node can diverge.
    pub fn divergent(&self, node: NormNodeId) -> bool {
        self.div_flag[node.index()]
    }

    /// All visible events enabled at this node.
    pub fn enabled(&self, node: NormNodeId) -> impl Iterator<Item = EventId> + '_ {
        self.after_ev[self.after_range(node)].iter().copied()
    }
}

/// States with an infinite outgoing τ-path (they can diverge).
///
/// Delegates to the shared [`csp::analysis::tau_divergence`] routine — the
/// same Tarjan τ-SCC pass behind [`csp::analysis::GraphAnalysis`] and the
/// `[FD=` divergence phase, so normal forms cannot drift from them.
pub(crate) fn divergent_states_of(lts: &Lts) -> Vec<bool> {
    csp::analysis::tau_divergence(lts.state_count(), |s| lts.edges(s)).divergent
}

/// Keep only acceptance rows that have no strict subset among the others.
///
/// Output order is pinned: ascending lexicographic on the bitset words,
/// tickless before ticked — deterministic for any input order.
fn minimal_acceptances(mut rows: Vec<(Vec<u64>, bool)>) -> Vec<(Vec<u64>, bool)> {
    fn subset(a: &(Vec<u64>, bool), b: &(Vec<u64>, bool)) -> bool {
        (!a.1 || b.1) && a.0.iter().zip(&b.0).all(|(x, y)| x & !y == 0)
    }
    rows.sort_unstable();
    rows.dedup();
    let keep: Vec<bool> = rows
        .iter()
        .map(|a| !rows.iter().any(|b| b != a && subset(b, a)))
        .collect();
    rows.into_iter()
        .zip(keep)
        .filter_map(|(a, k)| k.then_some(a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp::{Definitions, Process};

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    fn norm(p: Process) -> NormalisedLts {
        let lts = Lts::build(p, &Definitions::new(), 10_000).unwrap();
        NormalisedLts::build(&lts, 10_000).unwrap()
    }

    #[test]
    fn deterministic_process_normalises_one_to_one() {
        let p = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let n = norm(p);
        assert_eq!(n.node_count(), 3);
        let n1 = n.after(n.initial(), e(0)).unwrap();
        assert!(n.after(n1, e(1)).is_some());
        assert!(n.after(n.initial(), e(1)).is_none());
    }

    #[test]
    fn internal_choice_merges_into_one_node() {
        // a -> STOP |~| b -> STOP: initial node allows both a and b
        // (trace-wise) but has two singleton acceptances.
        let p = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let n = norm(p);
        let init = n.initial();
        assert!(n.after(init, e(0)).is_some());
        assert!(n.after(init, e(1)).is_some());
        let accs: Vec<Acceptance> = n.acceptances(init).map(|a| a.to_acceptance()).collect();
        assert_eq!(accs.len(), 2);
        assert!(accs.iter().all(|a| a.events.len() == 1 && !a.tick));
    }

    #[test]
    fn external_choice_has_single_acceptance() {
        let p = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let n = norm(p);
        let accs: Vec<Acceptance> = n
            .acceptances(n.initial())
            .map(|a| a.to_acceptance())
            .collect();
        assert_eq!(accs.len(), 1);
        assert_eq!(accs[0].events.len(), 2);
    }

    #[test]
    fn tick_is_recorded() {
        let n = norm(Process::Skip);
        assert!(n.allows_tick(n.initial()));
        let accs: Vec<Acceptance> = n
            .acceptances(n.initial())
            .map(|a| a.to_acceptance())
            .collect();
        assert_eq!(accs.len(), 1);
        assert!(accs[0].tick);
    }

    #[test]
    fn divergence_flag_set_for_hidden_loop() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let hidden = Process::hide(Process::var(d), EventSet::singleton(e(0)));
        let lts = Lts::build(hidden, &defs, 1_000).unwrap();
        let n = NormalisedLts::build(&lts, 1_000).unwrap();
        assert!(n.divergent(n.initial()));
        assert!(n.acceptance_ids(n.initial()).is_empty());
    }

    #[test]
    fn identical_acceptances_share_one_pool_row() {
        // a -> a -> STOP: two nodes offer exactly {a}; the pool holds the
        // row once and both nodes reference the same id.
        let p = Process::prefix(e(0), Process::prefix(e(0), Process::Stop));
        let n = norm(p);
        let init = n.initial();
        let mid = n.after(init, e(0)).unwrap();
        assert_eq!(n.acceptance_ids(init), n.acceptance_ids(mid));
        // Pool rows: {a} (shared) and the empty acceptance of STOP.
        assert_eq!(n.acceptance_pool_len(), 2);
    }

    #[test]
    fn word_level_subset_test_matches_materialised_one() {
        let p = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let n = norm(p);
        let view = n.acceptances(n.initial()).next().unwrap();
        // {e0, e1} ⊆ {e0, e1, tick} but ⊄ {e0}.
        let mut both = vec![0u64; n.acceptance_words()];
        both[0] = 0b11;
        let mut only0 = vec![0u64; n.acceptance_words()];
        only0[0] = 0b01;
        assert!(view.is_subset_of_words(&both, true));
        assert!(view.is_subset_of_words(&both, false));
        assert!(!view.is_subset_of_words(&only0, true));
    }

    #[test]
    fn minimal_acceptances_filters_supersets() {
        let small = (vec![0b01u64], false);
        let big = (vec![0b11u64], false);
        let out = minimal_acceptances(vec![big, small.clone()]);
        assert_eq!(out, vec![small]);
    }

    #[test]
    fn minimal_acceptances_output_order_is_pinned() {
        // Pairwise-incomparable rows in scrambled input order: the output
        // is sorted ascending lexicographic on the word vectors (low word
        // first), tickless before ticked. The superset {e0,e1} is dropped
        // regardless of where it appears, as is {e0,✓} (⊇ {e0}).
        let r_tick = (vec![0u64, 0u64], true);
        let r_e64 = (vec![0u64, 0b1u64], false);
        let r_e0 = (vec![0b01u64, 0u64], false);
        let r_e1 = (vec![0b10u64, 0u64], false);
        let r_e0_tick = (vec![0b01u64, 0u64], true);
        let r_both = (vec![0b11u64, 0u64], false);
        let out = minimal_acceptances(vec![
            r_both,
            r_e64.clone(),
            r_e1.clone(),
            r_e0_tick,
            r_tick.clone(),
            r_e0.clone(),
        ]);
        assert_eq!(out, vec![r_tick, r_e64, r_e0, r_e1]);
    }

    #[test]
    fn node_bound_is_enforced() {
        let p = Process::prefix_chain((0..20).map(e), Process::Stop);
        let lts = Lts::build(p, &Definitions::new(), 1_000).unwrap();
        let err = NormalisedLts::build(&lts, 3).unwrap_err();
        assert!(matches!(
            err,
            CheckError::NormalisationExceeded { limit: 3 }
        ));
    }
}
