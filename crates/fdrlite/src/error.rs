//! Error type for refinement checking.

use std::fmt;

use csp::CspError;

/// Errors raised while compiling or checking processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// An error from the underlying process semantics (state-space bound,
    /// undefined or unguarded recursion).
    Csp(CspError),
    /// Normalisation of the specification exceeded the node bound.
    NormalisationExceeded {
        /// The bound that was exceeded.
        limit: usize,
    },
    /// The product exploration exceeded the pair bound.
    ProductExceeded {
        /// The bound that was exceeded.
        limit: usize,
    },
    /// An internal engine failure — a worker thread of the parallel checker
    /// panicked. The check's outcome is unknown; the process itself keeps
    /// running.
    Internal {
        /// The worker's panic message.
        message: String,
        /// Index of the worker thread that panicked, when known (`None`
        /// when the panic surfaced outside any single worker, e.g. from
        /// the scope join itself).
        worker: Option<u16>,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Csp(e) => write!(f, "{e}"),
            CheckError::NormalisationExceeded { limit } => {
                write!(f, "specification normalisation exceeded {limit} nodes")
            }
            CheckError::ProductExceeded { limit } => {
                write!(f, "product exploration exceeded {limit} state pairs")
            }
            CheckError::Internal { message, worker } => match worker {
                Some(w) => write!(f, "internal checker error (worker {w}): {message}"),
                None => write!(f, "internal checker error: {message}"),
            },
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::Csp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CspError> for CheckError {
    fn from(e: CspError) -> Self {
        CheckError::Csp(e)
    }
}
