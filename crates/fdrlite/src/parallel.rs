//! Multi-threaded refinement checking: a work-stealing product exploration.
//!
//! The paper (§VII-A) points at FDR's grid/cloud support as the route to
//! checking at automotive scale. This module is the single-machine
//! analogue. The engine is *model-parameterised*: one product walker
//! serves `[T=` (trace), `[F=` (stable-failures) and — composed with the
//! shared τ-divergence routine — `[FD=` checks. In failures mode each
//! worker additionally runs the same word-level refusal test as the serial
//! engine ([`FailureProbe`]) against the spec's bitset acceptance pool when
//! it expands a stable implementation state. It is built from three
//! pieces:
//!
//! * **Per-worker deques with stealing.** Every worker owns a LIFO deque
//!   ([`crossbeam::deque::Worker`]); when it runs dry it steals batches
//!   from the global injector or a sibling's deque, so stragglers never
//!   idle at a level barrier (the previous engine was level-synchronised
//!   and serialised the visited-set merge between levels).
//! * **A sharded visited set.** Discovered `(impl state, spec node)` pairs
//!   live in `N` lock-striped shards keyed by a hash of the pair, each
//!   padded to its own cache line. A worker touches exactly one shard per
//!   discovered edge, so contention falls off with the shard count. Each
//!   shard records the best known *visible depth* of its pairs and admits
//!   re-expansion when a strictly shorter path is found, which keeps the
//!   shortest-witness metric exact without global synchronisation.
//! * **Parent recording during the pass.** Every worker appends discovered
//!   nodes to a private arena with a parent pointer `(worker, index)` and
//!   the visible event on the discovering edge. A violation therefore
//!   yields a witness directly — there is no known-failing full serial
//!   re-exploration as in the previous engine. The engine then re-walks
//!   the product *bounded to the recorded minimum depth* with the serial
//!   0-1 BFS, which canonicalises the witness: verdicts **and**
//!   counterexample traces are identical to [`Checker::refine`] and
//!   deterministic across runs and thread counts. The re-walk touches only
//!   the ≤ `L` sphere of the product (where `L` is the witness length the
//!   parallel pass already proved minimal), so a shallow violation in a
//!   huge model costs a shallow walk, not a second full exploration.
//!
//! Termination uses a global pending-task counter: workers exit when every
//! deque is empty and no task is in flight. A worker panic is converted
//! into [`CheckError::Internal`] instead of aborting the process.
//!
//! One caveat is inherent to racing the product bound: when the product
//! has *more* reachable pairs than [`Checker::max_product`] **and** also
//! contains a violation, the engine may deterministically report either
//! the violation or [`CheckError::ProductExceeded`] depending on discovery
//! order. Within the bound, results are exact and deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::utils::{Backoff, CachePadded};
use csp::{CsrEdges, Definitions, EventId, Label, Lts, Process, StateId, Trace, TraceEvent};

use crate::checker::{
    refine_zero_one, Budget, CheckOptions, Checker, FailureProbe, RefinementModel,
};
use crate::counterexample::{BudgetReason, Inconclusive, Verdict};
use crate::error::CheckError;
use crate::normalise::{NormNodeId, NormalisedLts};
use crate::persist::ParallelFrontier;
use crate::stats::CheckStats;
use crate::store::CompiledModel;

type Pair = (StateId, NormNodeId);

/// Most workers the engine will spawn (worker ids are packed into a `u16`).
const MAX_THREADS: usize = 256;

/// Check `spec ⊑T impl_` using `threads` worker threads.
///
/// Semantically identical to [`Checker::trace_refinement`]: the verdict and
/// the counterexample (trace *and* failure kind) are the same, for any
/// thread count, on every run.
///
/// # Errors
///
/// Propagates compilation/normalisation failures and bound violations from
/// the underlying checker; a worker panic surfaces as
/// [`CheckError::Internal`].
pub fn trace_refinement(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    threads: usize,
) -> Result<Verdict, CheckError> {
    trace_refinement_with_stats(checker, spec, impl_, defs, threads).map(|(v, _)| v)
}

/// Like [`trace_refinement`], also returning the exploration's
/// [`CheckStats`] (compilation and normalisation are not counted).
///
/// # Errors
///
/// As for [`trace_refinement`].
pub fn trace_refinement_with_stats(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    threads: usize,
) -> Result<(Verdict, CheckStats), CheckError> {
    trace_refinement_with_options(
        checker,
        spec,
        impl_,
        defs,
        threads,
        &CheckOptions::UNBOUNDED,
    )
}

/// Like [`trace_refinement_with_stats`], under the resource budgets of
/// `options` (see [`CheckOptions`]). Exhausting a budget yields
/// [`Verdict::Inconclusive`]; a violation discovered before exhaustion is
/// still recovered and reported as a conclusive [`Verdict::Fail`] whenever
/// the canonical re-walk also fits in a fresh instance of the same budget.
///
/// # Errors
///
/// As for [`trace_refinement`].
pub fn trace_refinement_with_options(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    threads: usize,
    options: &CheckOptions,
) -> Result<(Verdict, CheckStats), CheckError> {
    refinement_with_options(
        checker,
        spec,
        impl_,
        defs,
        RefinementModel::Traces,
        threads,
        options,
    )
}

/// Check `spec ⊑F impl_` (stable-failures refinement) using `threads`
/// worker threads. Semantically identical to
/// [`Checker::failures_refinement`] at any thread count, on every run.
///
/// # Errors
///
/// As for [`trace_refinement`].
pub fn failures_refinement(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    threads: usize,
) -> Result<Verdict, CheckError> {
    failures_refinement_with_options(
        checker,
        spec,
        impl_,
        defs,
        threads,
        &CheckOptions::UNBOUNDED,
    )
    .map(|(v, _)| v)
}

/// Like [`failures_refinement`], under the resource budgets of `options`,
/// also returning the exploration's [`CheckStats`].
///
/// # Errors
///
/// As for [`trace_refinement`].
pub fn failures_refinement_with_options(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    threads: usize,
    options: &CheckOptions,
) -> Result<(Verdict, CheckStats), CheckError> {
    refinement_with_options(
        checker,
        spec,
        impl_,
        defs,
        RefinementModel::Failures,
        threads,
        options,
    )
}

/// Check `spec ⊑FD impl_` (failures-divergences refinement) using
/// `threads` worker threads: divergence-freedom of the implementation
/// (linear, via the shared τ-divergence routine) followed by a parallel
/// stable-failures product walk. Semantically identical to
/// [`Checker::failures_divergences_refinement`] at any thread count.
///
/// # Errors
///
/// As for [`trace_refinement`].
pub fn failures_divergences_refinement(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    threads: usize,
) -> Result<Verdict, CheckError> {
    failures_divergences_refinement_with_options(
        checker,
        spec,
        impl_,
        defs,
        threads,
        &CheckOptions::UNBOUNDED,
    )
    .map(|(v, _)| v)
}

/// Like [`failures_divergences_refinement`], under the resource budgets of
/// `options` (the divergence phase runs unbudgeted, as in the serial
/// checker), also returning the failures phase's [`CheckStats`].
///
/// # Errors
///
/// As for [`trace_refinement`].
pub fn failures_divergences_refinement_with_options(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    threads: usize,
    options: &CheckOptions,
) -> Result<(Verdict, CheckStats), CheckError> {
    let divergence = checker.divergence_free(impl_, defs)?;
    if !divergence.is_pass() {
        return Ok((divergence, CheckStats::default()));
    }
    failures_refinement_with_options(checker, spec, impl_, defs, threads, options)
}

fn refinement_with_options(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    model: RefinementModel,
    threads: usize,
    options: &CheckOptions,
) -> Result<(Verdict, CheckStats), CheckError> {
    let compile_start = Instant::now();
    let spec_lts = checker.compile(spec, defs)?;
    let norm_start = Instant::now();
    let norm = checker.normalise(&spec_lts)?;
    let normalise_wall = norm_start.elapsed();
    let impl_lts = checker.compile(impl_, defs)?;
    let compile_wall = compile_start.elapsed();
    let (verdict, mut stats) =
        refine_product_with_options(checker, &norm, &impl_lts, model, threads, options)?;
    stats.compile_wall = compile_wall;
    stats.normalise_wall = normalise_wall;
    Ok((verdict, stats))
}

/// Parallel refinement of a pre-compiled implementation against a
/// pre-normalised specification in the given semantic `model` — the engine
/// core, exposed for callers (such as the benchmark harness) that amortise
/// compilation across runs. An `[FD=` check composes this
/// (`RefinementModel::Failures`) with a divergence-freedom pre-phase, as
/// [`failures_divergences_refinement`] does.
///
/// # Errors
///
/// [`CheckError::ProductExceeded`] if the product grows past the checker's
/// bound; [`CheckError::Internal`] if a worker panics.
pub fn refine_product(
    checker: &Checker,
    norm: &NormalisedLts,
    impl_lts: &Lts,
    model: RefinementModel,
    threads: usize,
) -> Result<(Verdict, CheckStats), CheckError> {
    refine_product_with_options(
        checker,
        norm,
        impl_lts,
        model,
        threads,
        &CheckOptions::UNBOUNDED,
    )
}

/// Like [`refine_product`], under the resource budgets of `options`.
///
/// When a budget is exhausted mid-pass:
///
/// * with no violation recorded, the verdict is [`Verdict::Inconclusive`];
/// * with a violation recorded, the canonical re-walk runs under a *fresh*
///   instance of the same budget — if it completes, the conclusive
///   [`Verdict::Fail`] is returned (a found counterexample is sound
///   regardless of how much of the product was explored); if it too runs
///   out, the verdict degrades to [`Verdict::Inconclusive`].
///
/// Determinism across runs and thread counts is only guaranteed for
/// unbudgeted checks: a wall-clock budget observes real time, and a state
/// budget races discovery order between workers.
///
/// # Errors
///
/// [`CheckError::ProductExceeded`] if the product grows past the checker's
/// bound; [`CheckError::Internal`] if a worker panics.
pub fn refine_product_with_options(
    checker: &Checker,
    norm: &NormalisedLts,
    impl_lts: &Lts,
    model: RefinementModel,
    threads: usize,
    options: &CheckOptions,
) -> Result<(Verdict, CheckStats), CheckError> {
    let csr = impl_lts.to_csr();
    refine_csr_with_options(checker, norm, impl_lts, &csr, model, threads, options)
}

/// Like [`refine_product_with_options`], over a [`CompiledModel`] from a
/// [`crate::ModelStore`] — the model's prebuilt CSR snapshot is traversed
/// directly instead of being reflattened per call.
///
/// # Errors
///
/// As for [`refine_product_with_options`].
pub fn refine_compiled_with_options(
    checker: &Checker,
    norm: &NormalisedLts,
    compiled: &CompiledModel,
    model: RefinementModel,
    threads: usize,
    options: &CheckOptions,
) -> Result<(Verdict, CheckStats), CheckError> {
    refine_compiled_resumable(checker, norm, compiled, model, threads, options, None)
        .map(|(verdict, _, stats)| (verdict, stats))
}

/// [`refine_compiled_with_options`] with checkpoint/resume: pass `resume`
/// to continue an interrupted exploration, and receive the continuation
/// frontier alongside any [`Verdict::Inconclusive`].
///
/// Unlike the serial engine's exact continuation, a parallel frontier keeps
/// only the merged visited set, the outstanding tasks and the best recorded
/// witness depth — the verdict and counterexample are nevertheless exact,
/// because every conclusive [`Verdict::Fail`] is produced by the canonical
/// bounded serial re-walk, never by the racing pass itself. Callers must
/// validate the frontier against these exact models first
/// ([`ParallelFrontier::validate`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_compiled_resumable(
    checker: &Checker,
    norm: &NormalisedLts,
    compiled: &CompiledModel,
    model: RefinementModel,
    threads: usize,
    options: &CheckOptions,
    resume: Option<&ParallelFrontier>,
) -> Result<(Verdict, Option<ParallelFrontier>, CheckStats), CheckError> {
    refine_csr_resumable(
        checker,
        norm,
        compiled.lts(),
        compiled.csr(),
        model,
        threads,
        options,
        resume,
    )
}

#[allow(clippy::too_many_arguments)]
fn refine_csr_with_options(
    checker: &Checker,
    norm: &NormalisedLts,
    impl_lts: &Lts,
    csr: &CsrEdges,
    model: RefinementModel,
    threads: usize,
    options: &CheckOptions,
) -> Result<(Verdict, CheckStats), CheckError> {
    refine_csr_resumable(checker, norm, impl_lts, csr, model, threads, options, None)
        .map(|(verdict, _, stats)| (verdict, stats))
}

#[allow(clippy::too_many_arguments)]
fn refine_csr_resumable(
    checker: &Checker,
    norm: &NormalisedLts,
    impl_lts: &Lts,
    csr: &CsrEdges,
    model: RefinementModel,
    threads: usize,
    options: &CheckOptions,
    resume: Option<&ParallelFrontier>,
) -> Result<(Verdict, Option<ParallelFrontier>, CheckStats), CheckError> {
    let start = Instant::now();
    let threads = threads.clamp(1, MAX_THREADS);
    let budget = Budget::start(options);
    // Ω-ness is the one per-state fact the failures probe needs that the
    // CSR snapshot does not carry; precompute it once so workers never
    // touch the term arena.
    let omega: Vec<bool> = match model {
        RefinementModel::Traces => Vec::new(),
        RefinementModel::Failures => (0..impl_lts.state_count())
            .map(|i| matches!(impl_lts.state(StateId::from_index(i)), Process::Omega))
            .collect(),
    };
    let outcome = explore(
        norm,
        csr,
        impl_lts.initial(),
        model,
        &omega,
        threads,
        checker.max_product(),
        &budget,
        resume,
    )?;
    let (raw, exhausted, frontier, mut stats) = outcome;
    if exhausted.is_some() {
        stats.wall_overshoot = budget.wall_overshoot();
    }

    let (verdict, frontier) = match raw {
        None => match exhausted {
            Some(reason) => (
                Verdict::Inconclusive(Inconclusive::new(stats.pairs_discovered, reason)),
                frontier,
            ),
            None => (Verdict::Pass, None),
        },
        Some(witness) => {
            // Canonical witness recovery: re-walk the ≤ L sphere with the
            // serial 0-1 BFS. On a complete pass L is proved minimal, so
            // the walk must find a violation, finds it without ever
            // expanding past depth L, and returns the exact verdict the
            // serial checker would. On a budget-cut pass the re-walk runs
            // under a fresh budget of its own and may itself come back
            // inconclusive.
            let rewalk_budget = if exhausted.is_some() {
                Budget::start(options)
            } else {
                Budget::unbounded()
            };
            let mut rewalk = CheckStats::default();
            let bounded = refine_zero_one(
                norm,
                impl_lts,
                model,
                checker.max_product(),
                Some(witness.vlen),
                &rewalk_budget,
                &mut rewalk,
            )?;
            stats.rewalk_expansions = rewalk.expansions;
            // A resumed run's arenas only reach back to the resume point,
            // so the recorded trace can be a suffix of the real witness —
            // the depth is still exact, which is all the re-walk needs.
            debug_assert!(
                resume.is_some()
                    || exhausted.is_some()
                    || witness.trace.len()
                        == match &bounded {
                            Verdict::Fail(cex) => cex.trace().len(),
                            _ => usize::MAX,
                        },
                "recorded and canonical witness lengths must agree"
            );
            match bounded {
                Verdict::Pass => (
                    Verdict::Inconclusive(Inconclusive::new(
                        stats.pairs_discovered,
                        exhausted.expect("bounded re-walk can only pass after a budget cut"),
                    )),
                    frontier,
                ),
                other => (other, None),
            }
        }
    };
    stats.wall = start.elapsed();
    stats.explore_wall = stats.wall;
    Ok((verdict, frontier, stats))
}

/// A violation as recorded by the parallel pass: the witness rebuilt from
/// the per-worker parent arenas, plus its visible depth.
struct RecordedWitness {
    trace: Trace,
    vlen: u32,
}

/// One node of a worker's parent arena. `parent == self` marks the root.
#[derive(Clone, Copy)]
struct NodeRec {
    parent: NodeRef,
    label: Option<EventId>,
}

/// Cross-arena node address.
#[derive(Clone, Copy, PartialEq, Eq)]
struct NodeRef {
    worker: u16,
    idx: u32,
}

/// A unit of work: one product pair to expand, with its visible depth and
/// its arena address (for parent chains). Self-contained, so stolen tasks
/// never read another worker's arena.
#[derive(Clone, Copy)]
struct Task {
    s: StateId,
    n: NormNodeId,
    vlen: u32,
    node: NodeRef,
}

/// The best violation seen so far.
#[derive(Clone, Copy)]
struct Candidate {
    vlen: u32,
    node: NodeRef,
}

/// State shared by all workers.
struct Shared {
    shards: Vec<CachePadded<Mutex<HashMap<Pair, u32>>>>,
    shard_mask: usize,
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    /// Tasks queued or in flight; 0 ⇔ exploration is complete.
    pending: AtomicUsize,
    /// Distinct pairs discovered (for the product bound).
    discovered: AtomicUsize,
    /// Visible depth of the best violation found so far (`u32::MAX` while
    /// none); doubles as the pruning bound — no witness shorter than the
    /// best can pass through a pair at depth ≥ best.
    best: AtomicU32,
    candidate: Mutex<Option<Candidate>>,
    /// Product bound tripped: abandon the run.
    overflow: AtomicBool,
    /// A resource budget ran out: wind down and report
    /// [`Verdict::Inconclusive`] (unless a violation was already found).
    budget_hit: AtomicBool,
    /// Which budget ran out first.
    budget_reason: Mutex<Option<BudgetReason>>,
    /// A sibling panicked: abandon the run instead of spinning forever on
    /// its undrained pending count.
    panicked: AtomicBool,
    max_product: usize,
    budget: Budget,
}

impl Shared {
    /// Record budget exhaustion (first reason wins) and signal wind-down.
    fn exhaust(&self, reason: BudgetReason) {
        let mut slot = self
            .budget_reason
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        slot.get_or_insert(reason);
        self.budget_hit.store(true, Ordering::Relaxed);
    }
}

fn shard_of(pair: Pair, mask: usize) -> usize {
    let x = pair.0.index() as u64;
    let y = pair.1.index() as u64;
    let h = (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ y.wrapping_mul(0xA24B_AED4_963E_E407))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) & mask
}

fn lock_shard(shard: &Mutex<HashMap<Pair, u32>>) -> std::sync::MutexGuard<'_, HashMap<Pair, u32>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-worker counters, merged into [`CheckStats`] after the join.
#[derive(Default)]
struct WorkerStats {
    expansions: u64,
    transitions: u64,
    steals: u64,
    frontier_peak: u64,
    busy: Duration,
}

/// Arms on entry; disarmed on orderly exit. If the worker unwinds instead,
/// `Drop` flips the shared flag so siblings stop waiting for its pending
/// tasks.
struct PanicGuard<'a> {
    shared: &'a Shared,
    armed: bool,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.panicked.store(true, Ordering::Relaxed);
        }
    }
}

/// The parallel decision pass. Returns the recorded witness (from parent
/// arenas) when a violation exists, `None` when the refinement holds, plus
/// a continuation frontier whenever a budget cut the pass short.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn explore(
    norm: &NormalisedLts,
    csr: &CsrEdges,
    impl_initial: StateId,
    model: RefinementModel,
    omega: &[bool],
    threads: usize,
    max_product: usize,
    budget: &Budget,
    resume: Option<&ParallelFrontier>,
) -> Result<
    (
        Option<RecordedWitness>,
        Option<BudgetReason>,
        Option<ParallelFrontier>,
        CheckStats,
    ),
    CheckError,
> {
    let shard_count = (threads.next_power_of_two() * 16).clamp(16, 512);
    let shards: Vec<CachePadded<Mutex<HashMap<Pair, u32>>>> = (0..shard_count)
        .map(|_| CachePadded::new(Mutex::new(HashMap::new())))
        .collect();

    let locals: Vec<Worker<Task>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Task>> = locals.iter().map(Worker::stealer).collect();

    let shared = Shared {
        shards,
        shard_mask: shard_count - 1,
        injector: Injector::new(),
        stealers,
        pending: AtomicUsize::new(0),
        discovered: AtomicUsize::new(0),
        best: AtomicU32::new(u32::MAX),
        candidate: Mutex::new(None),
        overflow: AtomicBool::new(false),
        budget_hit: AtomicBool::new(false),
        budget_reason: Mutex::new(None),
        panicked: AtomicBool::new(false),
        max_product,
        budget: *budget,
    };

    // Seed. On a fresh run the root pair lives in worker 0's arena at
    // index 0 and is published through the injector so whichever worker
    // starts first claims it. On a resumed run the checkpoint's visited
    // set repopulates the shards and every outstanding task is republished
    // through the injector with a fresh arena root in worker 0's arena
    // (parent chains before the interrupt are gone; only witness *depths*
    // must survive, and they travel inside the tasks).
    let root = (impl_initial, norm.initial());
    let mut worker0_arena: Vec<NodeRec> = Vec::new();
    match resume {
        Some(f) => {
            for &(s, n, vlen) in &f.visited {
                let pair = (
                    StateId::from_index(s as usize),
                    NormNodeId::from_index(n as usize),
                );
                lock_shard(&shared.shards[shard_of(pair, shared.shard_mask)]).insert(pair, vlen);
            }
            shared
                .discovered
                .store(f.discovered as usize, Ordering::Relaxed);
            shared.best.store(f.best, Ordering::Relaxed);
            shared.pending.store(f.frontier.len(), Ordering::Relaxed);
            for &(s, n, vlen) in &f.frontier {
                let node = NodeRef {
                    worker: 0,
                    idx: worker0_arena.len() as u32,
                };
                worker0_arena.push(NodeRec {
                    parent: node,
                    label: None,
                });
                shared.injector.push(Task {
                    s: StateId::from_index(s as usize),
                    n: NormNodeId::from_index(n as usize),
                    vlen,
                    node,
                });
            }
        }
        None => {
            let root_ref = NodeRef { worker: 0, idx: 0 };
            lock_shard(&shared.shards[shard_of(root, shared.shard_mask)]).insert(root, 0);
            shared.discovered.store(1, Ordering::Relaxed);
            shared.pending.store(1, Ordering::Relaxed);
            shared.injector.push(Task {
                s: root.0,
                n: root.1,
                vlen: 0,
                node: root_ref,
            });
            worker0_arena.push(NodeRec {
                parent: root_ref,
                label: None,
            });
        }
    }

    let mut arenas: Vec<Vec<NodeRec>> = Vec::with_capacity(threads);
    let mut merged = WorkerStats::default();
    let mut leftover_tasks: Vec<Task> = Vec::new();
    let mut panic_message: Option<(u16, String)> = None;

    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut worker0_arena = Some(worker0_arena);
        for (me, local) in locals.into_iter().enumerate() {
            let shared = &shared;
            let arena = if me == 0 {
                worker0_arena.take().expect("worker 0 arena seeded once")
            } else {
                Vec::new()
            };
            handles.push(scope.spawn(move |_| {
                let mut ctx = WorkerCtx {
                    me: me as u16,
                    local,
                    arena,
                    shared,
                    norm,
                    csr,
                    model,
                    omega,
                    probe: FailureProbe::new(norm),
                    stats: WorkerStats::default(),
                };
                ctx.run();
                // Drain what this worker never got to: on a budget exit
                // the local deque still holds queued tasks that belong in
                // the checkpoint frontier (empty on normal completion).
                let mut leftovers: Vec<Task> = Vec::new();
                while let Some(task) = ctx.local.pop() {
                    leftovers.push(task);
                }
                (ctx.arena, ctx.stats, leftovers)
            }));
        }
        for (me, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((arena, stats, leftovers)) => {
                    merged.expansions += stats.expansions;
                    merged.transitions += stats.transitions;
                    merged.steals += stats.steals;
                    merged.frontier_peak = merged.frontier_peak.max(stats.frontier_peak);
                    merged.busy += stats.busy;
                    arenas.push(arena);
                    leftover_tasks.extend(leftovers);
                }
                Err(payload) => {
                    panic_message.get_or_insert_with(|| (me as u16, panic_text(payload.as_ref())));
                    // Keep arena indexing consistent for the survivors.
                    arenas.push(Vec::new());
                }
            }
        }
    })
    .map_err(|payload| CheckError::Internal {
        message: panic_text(payload.as_ref()),
        worker: None,
    })?;

    if let Some((worker, message)) = panic_message {
        return Err(CheckError::Internal {
            message,
            worker: Some(worker),
        });
    }
    if shared.overflow.load(Ordering::Relaxed) {
        return Err(CheckError::ProductExceeded { limit: max_product });
    }
    let exhausted = *shared
        .budget_reason
        .lock()
        .unwrap_or_else(PoisonError::into_inner);

    // Counters accumulate across interrupt/resume so the final stats read
    // as if the run had never stopped.
    let mut stats = CheckStats {
        threads,
        shards: shard_count,
        pairs_discovered: shared.discovered.load(Ordering::Relaxed) as u64,
        expansions: merged.expansions + resume.map_or(0, |f| f.expansions),
        transitions: merged.transitions + resume.map_or(0, |f| f.transitions),
        frontier_peak: merged
            .frontier_peak
            .max(resume.map_or(0, |f| f.frontier_peak)),
        steals: merged.steals + resume.map_or(0, |f| f.steals),
        shard_peak: 0,
        rewalk_expansions: 0,
        wall: Duration::ZERO,
        cpu_busy: merged.busy,
        ..CheckStats::default()
    };
    for shard in &shared.shards {
        stats.shard_peak = stats.shard_peak.max(lock_shard(shard).len() as u64);
    }

    // Capture the continuation frontier on a budget exit: every task still
    // queued in a worker deque or the injector, plus the merged visited
    // set. Sorted so the checkpoint bytes are stable for a given cut.
    let frontier = exhausted.is_some().then(|| {
        let mut tasks: Vec<(u32, u32, u32)> = leftover_tasks
            .iter()
            .map(|t| (t.s.index() as u32, t.n.index() as u32, t.vlen))
            .collect();
        loop {
            match shared.injector.steal() {
                Steal::Success(task) => {
                    tasks.push((task.s.index() as u32, task.n.index() as u32, task.vlen));
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        }
        tasks.sort_unstable();
        let mut visited: Vec<(u32, u32, u32)> = Vec::with_capacity(stats.pairs_discovered as usize);
        for shard in &shared.shards {
            visited.extend(
                lock_shard(shard)
                    .iter()
                    .map(|(&(s, n), &vlen)| (s.index() as u32, n.index() as u32, vlen)),
            );
        }
        visited.sort_unstable();
        ParallelFrontier {
            visited,
            frontier: tasks,
            discovered: stats.pairs_discovered,
            best: shared.best.load(Ordering::Relaxed),
            expansions: stats.expansions,
            transitions: stats.transitions,
            steals: stats.steals,
            frontier_peak: stats.frontier_peak,
        }
    });

    let witness = shared
        .candidate
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .map(|candidate| {
            let trace = recorded_trace(&arenas, candidate.node);
            // Resumed arenas only reach back to the resume point, so the
            // rebuilt trace can be a suffix; its depth is still exact.
            debug_assert!(resume.is_some() || trace.len() as u32 == candidate.vlen);
            RecordedWitness {
                trace,
                vlen: candidate.vlen,
            }
        })
        .or_else(|| {
            // A violation recorded before the interrupt survives only as
            // the seeded pruning bound; resurrect it so the canonical
            // re-walk still runs and the verdict stays conclusive.
            let best = shared.best.load(Ordering::Relaxed);
            (best != u32::MAX).then(|| RecordedWitness {
                trace: Trace::empty(),
                vlen: best,
            })
        });
    Ok((witness, exhausted, frontier, stats))
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker thread panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker thread panicked: {s}")
    } else {
        "worker thread panicked".to_owned()
    }
}

/// Rebuild the visible trace of `node` from the per-worker parent arenas.
fn recorded_trace(arenas: &[Vec<NodeRec>], mut node: NodeRef) -> Trace {
    let mut events: Vec<TraceEvent> = Vec::new();
    loop {
        let rec = arenas[node.worker as usize][node.idx as usize];
        if let Some(e) = rec.label {
            events.push(TraceEvent::Event(e));
        }
        if rec.parent == node {
            break;
        }
        node = rec.parent;
    }
    events.reverse();
    events.into_iter().collect()
}

/// One worker's execution context.
struct WorkerCtx<'a> {
    me: u16,
    local: Worker<Task>,
    arena: Vec<NodeRec>,
    shared: &'a Shared,
    norm: &'a NormalisedLts,
    csr: &'a CsrEdges,
    model: RefinementModel,
    /// Ω-flags per implementation state (empty in trace mode).
    omega: &'a [bool],
    /// Per-worker scratch row for the word-level refusal test.
    probe: FailureProbe,
    stats: WorkerStats,
}

impl WorkerCtx<'_> {
    fn run(&mut self) {
        let started = Instant::now();
        let mut idle = Duration::ZERO;
        let mut processed: u64 = 0;
        let backoff = Backoff::new();
        let mut guard = PanicGuard {
            shared: self.shared,
            armed: true,
        };
        loop {
            if self.shared.overflow.load(Ordering::Relaxed)
                || self.shared.budget_hit.load(Ordering::Relaxed)
                || self.shared.panicked.load(Ordering::Relaxed)
            {
                break;
            }
            // Wall-clock budget: sampled every 256th task to stay off the
            // hot path (each worker samples independently).
            if processed & 255 == 0 {
                if let Some(reason) = self.shared.budget.wall_exceeded() {
                    self.shared.exhaust(reason);
                    break;
                }
            }
            match self.find_task() {
                Some(task) => {
                    // State budget: checked between tasks, so an expansion
                    // is atomic — a task either fully expands (all its
                    // successors offered) or goes back in the deque for the
                    // checkpoint frontier. A mid-expansion cut would leave
                    // a half-offered task that no resume could finish.
                    let count = self.shared.discovered.load(Ordering::Relaxed) as u64;
                    if let Some(reason) = self.shared.budget.states_exceeded(count) {
                        self.shared.exhaust(reason);
                        self.local.push(task);
                        break;
                    }
                    backoff.reset();
                    processed += 1;
                    self.process(task);
                    self.shared.pending.fetch_sub(1, Ordering::Release);
                }
                None => {
                    if self.shared.pending.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    let waiting = Instant::now();
                    backoff.snooze();
                    idle += waiting.elapsed();
                }
            }
        }
        guard.armed = false;
        drop(guard);
        self.stats.busy = started.elapsed().saturating_sub(idle);
    }

    /// Pop local work, or steal a batch from the injector / a sibling.
    fn find_task(&mut self) -> Option<Task> {
        if let Some(task) = self.local.pop() {
            return Some(task);
        }
        loop {
            let mut retry = false;
            match self.shared.injector.steal_batch_and_pop(&self.local) {
                Steal::Success(task) => {
                    self.stats.steals += 1;
                    return Some(task);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
            let n = self.shared.stealers.len();
            for k in 1..n {
                let victim = (self.me as usize + k) % n;
                match self.shared.stealers[victim].steal_batch_and_pop(&self.local) {
                    Steal::Success(task) => {
                        self.stats.steals += 1;
                        return Some(task);
                    }
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if !retry {
                return None;
            }
        }
    }

    /// Expand one product pair: scan its implementation edges, offer the
    /// successors, record any violation.
    fn process(&mut self, task: Task) {
        // No witness shorter than the current best can pass through here.
        if task.vlen >= self.shared.best.load(Ordering::Relaxed) {
            return;
        }
        // Superseded by a shorter path to the same pair? Skip the stale
        // expansion; the improved task is (or was) queued separately.
        let pair = (task.s, task.n);
        {
            let shard = &self.shared.shards[shard_of(pair, self.shared.shard_mask)];
            if lock_shard(shard).get(&pair).is_some_and(|&d| d < task.vlen) {
                return;
            }
        }
        self.stats.expansions += 1;
        // Failures mode: the same stability/refusal test the serial engine
        // runs when it dequeues a pair. A refusal violation's witness is
        // the path *to* the pair, so its depth is exactly `task.vlen`.
        if self.model == RefinementModel::Failures {
            let omega = self.omega[task.s.index()];
            if self
                .probe
                .violation(self.norm, task.n, self.csr.edges(task.s), omega)
                .is_some()
            {
                self.record_violation(task.vlen, task.node);
                return;
            }
        }
        for &(label, target) in self.csr.edges(task.s) {
            self.stats.transitions += 1;
            match label {
                Label::Tau => self.offer(target, task.n, task.vlen, None, task.node),
                Label::Event(e) => match self.norm.after(task.n, e) {
                    Some(n2) => self.offer(target, n2, task.vlen + 1, Some(e), task.node),
                    None => self.record_violation(task.vlen, task.node),
                },
                Label::Tick => {
                    if !self.norm.allows_tick(task.n) {
                        self.record_violation(task.vlen, task.node);
                    }
                }
            }
        }
    }

    /// Offer a successor pair at visible depth `vlen`: insert or improve
    /// its shard entry, append a parent record, and queue a task.
    fn offer(
        &mut self,
        s: StateId,
        n: NormNodeId,
        vlen: u32,
        label: Option<EventId>,
        parent: NodeRef,
    ) {
        if vlen >= self.shared.best.load(Ordering::Relaxed) {
            return; // cannot lead to a shorter witness than the best known
        }
        let pair = (s, n);
        {
            let shard = &self.shared.shards[shard_of(pair, self.shared.shard_mask)];
            let mut map = lock_shard(shard);
            match map.entry(pair) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    if *entry.get() <= vlen {
                        return;
                    }
                    entry.insert(vlen); // shorter path: re-expand
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    let count = self.shared.discovered.fetch_add(1, Ordering::Relaxed) + 1;
                    if count > self.shared.max_product {
                        self.shared.overflow.store(true, Ordering::Relaxed);
                        return;
                    }
                    entry.insert(vlen);
                }
            }
        }
        let node = NodeRef {
            worker: self.me,
            idx: self.arena.len() as u32,
        };
        self.arena.push(NodeRec { parent, label });
        let pending = self.shared.pending.fetch_add(1, Ordering::Release) + 1;
        self.stats.frontier_peak = self.stats.frontier_peak.max(pending as u64);
        self.local.push(Task { s, n, vlen, node });
    }

    /// Record a violation at visible depth `vlen` and tighten the pruning
    /// bound.
    fn record_violation(&self, vlen: u32, node: NodeRef) {
        let mut current = self.shared.best.load(Ordering::Relaxed);
        while vlen < current {
            match self.shared.best.compare_exchange_weak(
                current,
                vlen,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        let mut slot = self
            .shared
            .candidate
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match *slot {
            Some(existing) if existing.vlen <= vlen => {}
            _ => *slot = Some(Candidate { vlen, node }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterexample::FailureKind;
    use csp::EventId;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn parallel_agrees_with_serial_on_pass() {
        let defs = Definitions::new();
        let spec = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let impl_ = Process::prefix(e(0), Process::Stop);
        let c = Checker::new();
        let v = trace_refinement(&c, &spec, &impl_, &defs, 4).unwrap();
        assert!(v.is_pass());
    }

    #[test]
    fn parallel_agrees_with_serial_on_fail() {
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let c = Checker::new();
        let parallel = trace_refinement(&c, &spec, &impl_, &defs, 4).unwrap();
        let serial = c.trace_refinement(&spec, &impl_, &defs).unwrap();
        assert_eq!(parallel, serial);
        assert!(!parallel.is_pass());
    }

    #[test]
    fn large_interleaving_checked_in_parallel() {
        // n independent two-event components: state space 3^n.
        let n = 7;
        let components: Vec<Process> = (0..n)
            .map(|i| Process::prefix(e(2 * i), Process::prefix(e(2 * i + 1), Process::Stop)))
            .collect();
        let impl_ = Process::interleave_all(components);
        let mut specdefs = Definitions::new();
        let universe: csp::EventSet = (0..2 * n).map(e).collect();
        let spec = crate::properties::run(&mut specdefs, "RUN", &universe);
        let c = Checker::new();
        let (v, stats) = trace_refinement_with_stats(&c, &spec, &impl_, &specdefs, 4).unwrap();
        assert!(v.is_pass());
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.pairs_discovered, 3u64.pow(7));
        assert!(stats.expansions >= stats.pairs_discovered);
        assert!(stats.rewalk_expansions == 0, "no re-walk on pass");
    }

    #[test]
    fn witness_is_canonical_across_thread_counts() {
        // An interleaving with a violation reachable along many schedules:
        // every thread count must report the identical counterexample.
        let honest: Vec<Process> = (0..4)
            .map(|i| Process::prefix(e(2 * i), Process::prefix(e(2 * i + 1), Process::Stop)))
            .collect();
        let rogue = Process::prefix(
            e(0),
            Process::prefix(e(2), Process::prefix(e(99), Process::Stop)),
        );
        let mut parts = honest;
        parts.push(rogue);
        let impl_ = Process::interleave_all(parts);
        let mut specdefs = Definitions::new();
        let universe: csp::EventSet = (0..8).map(e).collect();
        let spec = crate::properties::run(&mut specdefs, "RUN", &universe);

        let c = Checker::new();
        let serial = c.trace_refinement(&spec, &impl_, &specdefs).unwrap();
        let serial_cex = serial.counterexample().expect("violation expected");
        assert_eq!(
            serial_cex.kind(),
            &FailureKind::TraceViolation { event: Some(e(99)) }
        );
        for threads in [1usize, 2, 3, 4, 8] {
            let par = trace_refinement(&c, &spec, &impl_, &specdefs, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn recorded_witness_matches_canonical_length() {
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let impl_ = Process::prefix(
            e(0),
            Process::prefix(e(1), Process::prefix(e(2), Process::Stop)),
        );
        let c = Checker::new();
        let spec_lts = c.compile(&spec, &defs).unwrap();
        let norm = c.normalise(&spec_lts).unwrap();
        let impl_lts = c.compile(&impl_, &defs).unwrap();
        let csr = impl_lts.to_csr();
        let (witness, exhausted, frontier, _) = explore(
            &norm,
            &csr,
            impl_lts.initial(),
            RefinementModel::Traces,
            &[],
            4,
            1_000_000,
            &Budget::unbounded(),
            None,
        )
        .unwrap();
        assert!(exhausted.is_none());
        assert!(frontier.is_none());
        let witness = witness.expect("violation expected");
        assert_eq!(witness.vlen, 2);
        assert_eq!(witness.trace.len(), 2);

        let (verdict, stats) =
            refine_product(&c, &norm, &impl_lts, RefinementModel::Traces, 4).unwrap();
        let cex = verdict.counterexample().expect("violation expected");
        assert_eq!(cex.trace().len(), 2);
        assert!(stats.rewalk_expansions > 0);
    }

    #[test]
    fn parallel_failures_agrees_with_serial_on_refusal() {
        // Internal choice refuses one branch in the implementation where
        // the spec's external choice accepts both: a pure `[F=` violation
        // that no trace check can see.
        let defs = Definitions::new();
        let spec = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let impl_ = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let c = Checker::new();
        assert!(trace_refinement(&c, &spec, &impl_, &defs, 4)
            .unwrap()
            .is_pass());
        let serial = c.failures_refinement(&spec, &impl_, &defs).unwrap();
        assert!(!serial.is_pass());
        for threads in [1usize, 2, 4, 8] {
            let par = failures_refinement(&c, &spec, &impl_, &defs, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_fd_reports_divergence_before_the_product() {
        let mut defs = Definitions::new();
        let universe = csp::EventSet::singleton(e(0));
        let spec = crate::properties::run(&mut defs, "RUN", &universe);
        // A hidden b-loop diverges immediately after `a`.
        let cell = defs.declare("LOOP");
        defs.define(cell, Process::prefix(e(1), Process::Var(cell)));
        let impl_ = Process::hide(
            Process::prefix(e(0), Process::Var(cell)),
            csp::EventSet::singleton(e(1)),
        );
        let c = Checker::new();
        let serial = c
            .failures_divergences_refinement(&spec, &impl_, &defs)
            .unwrap();
        assert!(!serial.is_pass());
        for threads in [1usize, 4] {
            let par = failures_divergences_refinement(&c, &spec, &impl_, &defs, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn product_bound_is_enforced_in_parallel() {
        let defs = Definitions::new();
        let mut b = crate::checker::CheckerBuilder::new();
        b.max_product(4);
        let c = b.build();
        let spec = Process::prefix_chain((0..10).map(e), Process::Stop);
        let err = trace_refinement(&c, &spec, &spec.clone(), &defs, 4).unwrap_err();
        assert_eq!(err, CheckError::ProductExceeded { limit: 4 });
    }

    #[test]
    fn worker_panics_become_internal_errors() {
        // Exercise the same join-and-translate path the engine uses.
        let outcome: Result<(), CheckError> = crossbeam::scope(|scope| {
            let handle = scope.spawn(|_| -> () { panic!("injected fault") });
            match handle.join() {
                Ok(value) => Ok(value),
                Err(payload) => Err(CheckError::Internal {
                    message: panic_text(payload.as_ref()),
                    worker: Some(3),
                }),
            }
        })
        .expect("scope itself survives a joined worker panic");
        let err = outcome.unwrap_err();
        assert_eq!(
            err,
            CheckError::Internal {
                message: "worker thread panicked: injected fault".to_owned(),
                worker: Some(3),
            }
        );
        // The Display must preserve both the panic payload and the index of
        // the thread it came from — the CLI prints exactly this string.
        assert_eq!(
            err.to_string(),
            "internal checker error (worker 3): worker thread panicked: injected fault"
        );
    }

    #[test]
    fn state_budget_degrades_to_inconclusive() {
        // 3^9 product states against a budget of 100: the pass cannot
        // finish, and there is no violation to fall back on.
        let n = 9;
        let components: Vec<Process> = (0..n)
            .map(|i| Process::prefix(e(2 * i), Process::prefix(e(2 * i + 1), Process::Stop)))
            .collect();
        let impl_ = Process::interleave_all(components);
        let mut specdefs = Definitions::new();
        let universe: csp::EventSet = (0..2 * n).map(e).collect();
        let spec = crate::properties::run(&mut specdefs, "RUN", &universe);
        let c = Checker::new();
        let options = CheckOptions {
            max_states: Some(100),
            max_wall_ms: None,
        };
        let (v, stats) =
            trace_refinement_with_options(&c, &spec, &impl_, &specdefs, 4, &options).unwrap();
        let inc = v.inconclusive().expect("must be inconclusive");
        assert_eq!(inc.reason, BudgetReason::States { limit: 100 });
        assert!(inc.states_explored >= 100);
        assert!(stats.pairs_discovered < 3u64.pow(9));
    }

    #[test]
    fn zero_wall_budget_degrades_to_inconclusive() {
        let n = 9;
        let components: Vec<Process> = (0..n)
            .map(|i| Process::prefix(e(2 * i), Process::prefix(e(2 * i + 1), Process::Stop)))
            .collect();
        let impl_ = Process::interleave_all(components);
        let mut specdefs = Definitions::new();
        let universe: csp::EventSet = (0..2 * n).map(e).collect();
        let spec = crate::properties::run(&mut specdefs, "RUN", &universe);
        let c = Checker::new();
        let options = CheckOptions {
            max_states: None,
            max_wall_ms: Some(0),
        };
        let (v, _) =
            trace_refinement_with_options(&c, &spec, &impl_, &specdefs, 2, &options).unwrap();
        match v {
            Verdict::Inconclusive(inc) => {
                assert_eq!(inc.reason, BudgetReason::Wall { limit_ms: 0 });
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn violation_found_within_budget_stays_conclusive() {
        // The violation sits one event deep; even a tight state budget
        // leaves room to find and recover it.
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let c = Checker::new();
        let options = CheckOptions {
            max_states: Some(1_000),
            max_wall_ms: None,
        };
        let (v, _) = trace_refinement_with_options(&c, &spec, &impl_, &defs, 4, &options).unwrap();
        let serial = c.trace_refinement(&spec, &impl_, &defs).unwrap();
        assert_eq!(v, serial);
        assert!(v.counterexample().is_some());
    }

    #[test]
    fn stats_json_round_trips_engine_fields() {
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let c = Checker::new();
        let (_, stats) = trace_refinement_with_stats(&c, &spec, &spec.clone(), &defs, 2).unwrap();
        let json = stats.to_json();
        assert!(json.contains("\"threads\":2"), "{json}");
        assert!(json.contains("\"shards\":"), "{json}");
    }
}
