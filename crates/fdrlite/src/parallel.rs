//! Multi-threaded refinement checking.
//!
//! The paper (§VII-A) points at FDR's grid/cloud support as the route to
//! checking at automotive scale. This module provides the single-machine
//! analogue: a level-synchronised parallel breadth-first product exploration
//! using `crossbeam` scoped threads.
//!
//! The parallel pass only decides *whether* the refinement holds; when it
//! finds a violation the (cheap, and now known-failing) serial exploration is
//! re-run to reconstruct the shortest counterexample trace. This keeps the
//! hot path free of parent bookkeeping.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use csp::{Definitions, Label, Lts, Process, StateId};

use crate::checker::{Checker, RefinementModel};
use crate::counterexample::Verdict;
use crate::error::CheckError;
use crate::normalise::{NormNodeId, NormalisedLts};

/// Check `spec ⊑T impl_` using `threads` worker threads.
///
/// Semantically identical to [`Checker::trace_refinement`]; the verdict and
/// counterexample (if any) are the same.
///
/// # Errors
///
/// Propagates compilation/normalisation failures and bound violations from
/// the underlying checker.
pub fn trace_refinement(
    checker: &Checker,
    spec: &Process,
    impl_: &Process,
    defs: &Definitions,
    threads: usize,
) -> Result<Verdict, CheckError> {
    let spec_lts = checker.compile(spec, defs)?;
    let norm = checker.normalise(&spec_lts)?;
    let impl_lts = checker.compile(impl_, defs)?;

    if !violates(&norm, &impl_lts, threads.max(1)) {
        return Ok(Verdict::Pass);
    }
    // A violation exists: rerun serially to extract the shortest witness.
    checker.refine(&norm, &impl_lts, RefinementModel::Traces)
}

/// Parallel decision procedure: does the implementation escape the spec?
fn violates(norm: &NormalisedLts, impl_lts: &Lts, threads: usize) -> bool {
    let found = AtomicBool::new(false);
    let mut visited: HashSet<(StateId, NormNodeId)> = HashSet::new();
    let root = (impl_lts.initial(), norm.initial());
    visited.insert(root);
    let mut frontier: Vec<(StateId, NormNodeId)> = vec![root];

    while !frontier.is_empty() && !found.load(Ordering::Relaxed) {
        let chunk_size = frontier.len().div_ceil(threads);
        let mut results: Vec<Vec<(StateId, NormNodeId)>> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in frontier.chunks(chunk_size) {
                let found = &found;
                handles.push(scope.spawn(move |_| {
                    let mut next: Vec<(StateId, NormNodeId)> = Vec::new();
                    for &(s, n) in chunk {
                        if found.load(Ordering::Relaxed) {
                            break;
                        }
                        for &(label, target) in impl_lts.edges(s) {
                            match label {
                                Label::Tau => next.push((target, n)),
                                Label::Event(e) => match norm.after(n, e) {
                                    Some(n2) => next.push((target, n2)),
                                    None => {
                                        found.store(true, Ordering::Relaxed);
                                        return next;
                                    }
                                },
                                Label::Tick => {
                                    if !norm.allows_tick(n) {
                                        found.store(true, Ordering::Relaxed);
                                        return next;
                                    }
                                }
                            }
                        }
                    }
                    next
                }));
            }
            for h in handles {
                results.push(h.join().expect("worker thread panicked"));
            }
        })
        .expect("crossbeam scope failed");

        if found.load(Ordering::Relaxed) {
            return true;
        }
        let mut next_frontier = Vec::new();
        for pair in results.into_iter().flatten() {
            if visited.insert(pair) {
                next_frontier.push(pair);
            }
        }
        frontier = next_frontier;
    }
    found.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp::EventId;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn parallel_agrees_with_serial_on_pass() {
        let defs = Definitions::new();
        let spec = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let impl_ = Process::prefix(e(0), Process::Stop);
        let c = Checker::new();
        let v = trace_refinement(&c, &spec, &impl_, &defs, 4).unwrap();
        assert!(v.is_pass());
    }

    #[test]
    fn parallel_agrees_with_serial_on_fail() {
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));
        let c = Checker::new();
        let parallel = trace_refinement(&c, &spec, &impl_, &defs, 4).unwrap();
        let serial = c.trace_refinement(&spec, &impl_, &defs).unwrap();
        assert_eq!(parallel, serial);
        assert!(!parallel.is_pass());
    }

    #[test]
    fn large_interleaving_checked_in_parallel() {
        // n independent two-event components: state space 3^n.
        let defs = Definitions::new();
        let n = 7;
        let components: Vec<Process> = (0..n)
            .map(|i| Process::prefix(e(2 * i), Process::prefix(e(2 * i + 1), Process::Stop)))
            .collect();
        let impl_ = Process::interleave_all(components);
        let mut specdefs = Definitions::new();
        let universe: csp::EventSet = (0..2 * n).map(e).collect();
        let spec = crate::properties::run(&mut specdefs, "RUN", &universe);
        // Merge: spec defs live in their own table; combine both.
        // (run() only touches specdefs, impl_ uses none.)
        let _ = defs;
        let c = Checker::new();
        let v = trace_refinement(&c, &spec, &impl_, &specdefs, 4).unwrap();
        assert!(v.is_pass());
    }
}
