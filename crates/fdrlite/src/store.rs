//! A content-addressed store of compiled models, shared across the whole
//! checking stack.
//!
//! Every end-to-end check starts the same way: explicate the process tree
//! into an [`Lts`], snapshot it as CSR for the parallel engine, and (for
//! specifications) normalise it. Before this store existed each entry point
//! redid that work per call, so a script with five assertions over one
//! `SYSTEM` compiled `SYSTEM` five times. A [`ModelStore`] interns every
//! process into one hash-consed [`TermArena`] and caches the compiled
//! artifacts under their term id plus the [`Checker`] bounds that shaped
//! them, so structurally equal processes checked under equal bounds compile
//! exactly once.
//!
//! The store is a pure cache: every verdict, counterexample and witness
//! trace produced through it is bit-identical to the corresponding direct
//! [`Checker`] / [`crate::parallel`] call, at any thread count. What changes
//! is only the [`CheckStats`] cost split — warm runs report near-zero
//! `compile_wall` and nonzero `store_hits`.
//!
//! # Sharing one store across definitions tables
//!
//! A [`TermArena`] memoises definition bodies by [`csp::DefId`], so a
//! single arena is valid for exactly one [`Definitions`] table. The store
//! therefore fingerprints every table it sees and keeps **one arena per
//! table**: structurally identical terms from different scripts land in
//! different arenas and different cache entries, so a supervised batch
//! (`autocsp run`) can safely route every script through one shared store
//! without one script's recursion bodies leaking into another's models.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csp::analysis::GraphAnalysis;
use csp::{CsrEdges, Definitions, Lts, Process, TermArena, TermId};

use crate::checker::{CheckOptions, Checker, RefinementModel};
use crate::counterexample::{BudgetReason, Verdict};
use crate::error::CheckError;
use crate::normalise::NormalisedLts;
use crate::parallel;
use crate::persist::{
    content_hash, CheckId, CheckIdParts, Checkpoint, EngineFrontier, ModelHash, ModelKey,
    NormDiskKey, PersistConfig, PersistentCache, ResumePolicy,
};
use crate::stats::CheckStats;

/// A compiled process: its explicit [`Lts`] together with the CSR snapshot
/// the work-stealing engine traverses.
///
/// Produced (and cached) by [`ModelStore::compile`]; handed to the engines
/// behind an `Arc` so concurrent checks share one allocation.
#[derive(Debug)]
pub struct CompiledModel {
    lts: Lts,
    csr: CsrEdges,
}

impl CompiledModel {
    /// Rebuild a compiled model from a deserialised [`Lts`] (disk-cache load
    /// path); the CSR snapshot is recomputed, never trusted from disk.
    pub(crate) fn from_lts(lts: Lts) -> CompiledModel {
        let csr = lts.to_csr();
        CompiledModel { lts, csr }
    }

    /// The explicit transition system.
    pub fn lts(&self) -> &Lts {
        &self.lts
    }

    /// The flat CSR snapshot of the transition relation.
    pub fn csr(&self) -> &CsrEdges {
        &self.csr
    }
}

/// Cache key for a compiled model: the interned term plus every checker
/// bound that shapes the compiled artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CompileKey {
    term: TermId,
    /// Store-local id of the definitions table the term was built under.
    /// A `Var(i)` term denotes a different process under every table, so
    /// a store shared across scripts must never serve one script's
    /// compile for another's structurally identical term.
    defs: u32,
    max_states: usize,
    compress: bool,
}

impl CompileKey {
    fn new(term: TermId, defs: u32, checker: &Checker) -> CompileKey {
        CompileKey {
            term,
            defs,
            max_states: checker.max_states(),
            compress: checker.compress(),
        }
    }
}

/// Cache key for a normalised specification: the compile key plus the
/// normalisation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NormKey {
    compile: CompileKey,
    max_norm_nodes: usize,
}

/// Everything behind the store's mutex: the shared arena, both in-memory
/// caches, and the content-hash memo that keys the on-disk cache.
#[derive(Default)]
struct StoreInner {
    /// One interning arena per registered definitions table (indexed by
    /// the table's store-local id). An arena memoises definition bodies
    /// by [`csp::DefId`], so sharing one across tables would let one
    /// script's recursion bodies leak into another's models.
    arenas: Vec<TermArena>,
    compiled: HashMap<CompileKey, Arc<CompiledModel>>,
    normalised: HashMap<NormKey, Arc<NormalisedLts>>,
    analysed: HashMap<CompileKey, Arc<GraphAnalysis>>,
    hashes: HashMap<(TermId, u32), ModelHash>,
    defs_ids: HashMap<u64, u32>,
    hits: u64,
    misses: u64,
    analysis_hits: u64,
    analysis_misses: u64,
}

impl StoreInner {
    /// The store-local id of a definitions table, registered by content
    /// fingerprint. The first table seen gets id 0, the next distinct one
    /// id 1, and so on; identical tables share an id, so single-script
    /// workloads pay one fingerprint per call and cache exactly as before.
    fn defs_id(&mut self, defs: &Definitions) -> u32 {
        let fp = crate::persist::defs_fingerprint(defs);
        if let Some(&id) = self.defs_ids.get(&fp) {
            return id;
        }
        let id = u32::try_from(self.arenas.len()).unwrap_or(u32::MAX);
        self.defs_ids.insert(fp, id);
        self.arenas.push(TermArena::new());
        id
    }

    /// The structural content hash of `p`, memoised per interned term and
    /// definitions table (the same term hashes differently under
    /// different tables — recursion bodies are part of its meaning).
    fn model_hash(
        &mut self,
        term: TermId,
        defs_id: u32,
        p: &Process,
        defs: &Definitions,
    ) -> ModelHash {
        if let Some(&hash) = self.hashes.get(&(term, defs_id)) {
            return hash;
        }
        let hash = content_hash(p, defs);
        self.hashes.insert((term, defs_id), hash);
        hash
    }

    fn disk_model_key(
        &mut self,
        term: TermId,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> ModelKey {
        let defs_id = self.defs_id(defs);
        ModelKey {
            hash: self.model_hash(term, defs_id, p, defs),
            max_states: checker.max_states() as u64,
            compress: checker.compress(),
        }
    }

    fn check_id(
        &mut self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        model: RefinementModel,
        threads: usize,
    ) -> CheckId {
        let defs_id = self.defs_id(defs);
        let spec_term = self.arenas[defs_id as usize].intern(spec);
        let spec_hash = self.model_hash(spec_term, defs_id, spec, defs);
        let impl_term = self.arenas[defs_id as usize].intern(impl_);
        let impl_hash = self.model_hash(impl_term, defs_id, impl_, defs);
        CheckIdParts {
            spec: spec_hash,
            impl_: impl_hash,
            model,
            max_states: checker.max_states() as u64,
            max_norm_nodes: checker.max_norm_nodes() as u64,
            max_product: checker.max_product() as u64,
            compress: checker.compress(),
            parallel: threads > 1,
        }
        .id()
    }

    fn compile(
        &mut self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
        disk: Option<&PersistentCache>,
    ) -> Result<Arc<CompiledModel>, CheckError> {
        let defs_id = self.defs_id(defs);
        let term = self.arenas[defs_id as usize].intern(p);
        let key = CompileKey::new(term, defs_id, checker);
        if let Some(model) = self.compiled.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(model));
        }
        if let Some(cache) = disk {
            let dkey = self.disk_model_key(term, checker, p, defs);
            if let Some(lts) = cache.load_model(&dkey) {
                self.hits += 1;
                let model = Arc::new(CompiledModel::from_lts(lts));
                self.compiled.insert(key, Arc::clone(&model));
                return Ok(model);
            }
        }
        self.misses += 1;
        let lts = Lts::build_in(
            &mut self.arenas[defs_id as usize],
            term,
            defs,
            checker.max_states(),
        )?;
        let lts = if checker.compress() {
            csp::compress::quotient_bisim(&lts).lts
        } else {
            lts
        };
        if let Some(cache) = disk {
            let dkey = self.disk_model_key(term, checker, p, defs);
            cache.store_model(&dkey, &lts);
        }
        let csr = lts.to_csr();
        let model = Arc::new(CompiledModel { lts, csr });
        self.compiled.insert(key, Arc::clone(&model));
        Ok(model)
    }

    /// The second component is the wall time spent *building* the normal
    /// form — [`Duration::ZERO`] on any cache hit — so callers can report
    /// the subset construction's share of their compile wall.
    fn normalised(
        &mut self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
        disk: Option<&PersistentCache>,
    ) -> Result<(Arc<NormalisedLts>, Duration), CheckError> {
        let defs_id = self.defs_id(defs);
        let term = self.arenas[defs_id as usize].intern(p);
        let key = NormKey {
            compile: CompileKey::new(term, defs_id, checker),
            max_norm_nodes: checker.max_norm_nodes(),
        };
        if let Some(norm) = self.normalised.get(&key) {
            self.hits += 1;
            return Ok((Arc::clone(norm), Duration::ZERO));
        }
        if let Some(cache) = disk {
            // A disk-cached normal form skips the spec compile entirely.
            let dkey = NormDiskKey {
                model: self.disk_model_key(term, checker, p, defs),
                max_norm_nodes: checker.max_norm_nodes() as u64,
            };
            if let Some(norm) = cache.load_norm(&dkey) {
                self.hits += 1;
                let norm = Arc::new(norm);
                self.normalised.insert(key, Arc::clone(&norm));
                return Ok((norm, Duration::ZERO));
            }
        }
        let model = self.compile(checker, p, defs, disk)?;
        self.misses += 1;
        let norm_start = Instant::now();
        let norm = Arc::new(NormalisedLts::build(model.lts(), checker.max_norm_nodes())?);
        let norm_wall = norm_start.elapsed();
        if let Some(cache) = disk {
            let dkey = NormDiskKey {
                model: self.disk_model_key(term, checker, p, defs),
                max_norm_nodes: checker.max_norm_nodes() as u64,
            };
            cache.store_norm(&dkey, &norm);
        }
        self.normalised.insert(key, Arc::clone(&norm));
        Ok((norm, norm_wall))
    }

    /// The SCC/divergence/deadlock classification of an already-compiled
    /// model, cached per [`CompileKey`] so it is computed at most once per
    /// compiled artifact. The analysis is derived data (always recomputable
    /// from the compile), so it lives in memory only and keeps its own
    /// hit/miss counters — the `hits`/`misses` pair stays a pure measure of
    /// compile/normalise work.
    fn analysis(&mut self, key: CompileKey, model: &CompiledModel) -> Arc<GraphAnalysis> {
        if let Some(analysis) = self.analysed.get(&key) {
            self.analysis_hits += 1;
            return Arc::clone(analysis);
        }
        self.analysis_misses += 1;
        let lts = model.lts();
        let omega: Vec<bool> = lts
            .state_ids()
            .map(|s| matches!(lts.state(s), Process::Omega))
            .collect();
        let analysis = Arc::new(GraphAnalysis::of_csr(model.csr(), &omega));
        self.analysed.insert(key, Arc::clone(&analysis));
        analysis
    }
}

/// A shared, content-addressed cache of compiled (and normalised) models.
///
/// See the module docs above for the caching contract. The store is
/// `Send + Sync`; a mutex guards the arena and both caches, but the engines
/// run outside the lock — only interning and cache lookups serialise.
pub struct ModelStore {
    inner: Mutex<StoreInner>,
    persist: Mutex<Option<PersistConfig>>,
}

impl Default for ModelStore {
    fn default() -> Self {
        ModelStore::new()
    }
}

impl ModelStore {
    /// An empty store.
    pub fn new() -> ModelStore {
        ModelStore {
            inner: Mutex::new(StoreInner::default()),
            persist: Mutex::new(None),
        }
    }

    /// An empty store backed by an on-disk cache (no checkpointing, no
    /// resume — configure those with [`ModelStore::set_persist`]).
    pub fn with_cache(cache: Arc<PersistentCache>) -> ModelStore {
        let store = ModelStore::new();
        store.set_persist(PersistConfig {
            cache,
            checkpoint_every: None,
            resume: ResumePolicy::Off,
        });
        store
    }

    /// Attach (or replace) the persistence configuration: the on-disk
    /// cache, the checkpoint cadence and the resume policy.
    pub fn set_persist(&self, cfg: PersistConfig) {
        *self.persist.lock().expect("persist lock poisoned") = Some(cfg);
    }

    fn persist_config(&self) -> Option<PersistConfig> {
        self.persist.lock().expect("persist lock poisoned").clone()
    }

    fn cache_handle(&self) -> Option<Arc<PersistentCache>> {
        self.persist_config().map(|cfg| cfg.cache)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("model store poisoned")
    }

    /// Artifacts served from cache so far (compiled models and normal
    /// forms both count).
    pub fn hits(&self) -> u64 {
        self.lock().hits
    }

    /// Artifacts built fresh so far.
    pub fn misses(&self) -> u64 {
        self.lock().misses
    }

    fn counters(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Graph analyses served from cache so far.
    pub fn analysis_hits(&self) -> u64 {
        self.lock().analysis_hits
    }

    /// Graph analyses computed fresh so far.
    pub fn analysis_misses(&self) -> u64 {
        self.lock().analysis_misses
    }

    fn analysis_counters(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.analysis_hits, inner.analysis_misses)
    }

    /// The SCC/divergence/deadlock classification of `p`'s compiled LTS
    /// (see [`GraphAnalysis`]), compiled through the cache and itself
    /// cached per compiled model: one compiled artifact is analysed at
    /// most once, however many property checks, `[FD=` runs or `analyze`
    /// passes ask for it.
    ///
    /// # Errors
    ///
    /// Compilation exceeded its bound.
    pub fn graph_analysis(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Arc<GraphAnalysis>, CheckError> {
        let disk = self.cache_handle();
        let mut inner = self.lock();
        let model = inner.compile(checker, p, defs, disk.as_deref())?;
        let defs_id = inner.defs_id(defs);
        let term = inner.arenas[defs_id as usize].intern(p);
        let key = CompileKey::new(term, defs_id, checker);
        Ok(inner.analysis(key, &model))
    }

    /// Compile `p` (explicate + optional compression + CSR snapshot),
    /// served from cache when an equal term was already compiled under
    /// equal bounds.
    ///
    /// # Errors
    ///
    /// Propagates state-space and recursion errors from the core semantics.
    pub fn compile(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Arc<CompiledModel>, CheckError> {
        let disk = self.cache_handle();
        self.lock().compile(checker, p, defs, disk.as_deref())
    }

    /// Normalise `p` for use as a specification, compiling it through the
    /// cache first.
    ///
    /// # Errors
    ///
    /// As for [`ModelStore::compile`], plus
    /// [`CheckError::NormalisationExceeded`].
    pub fn normalised(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Arc<NormalisedLts>, CheckError> {
        let disk = self.cache_handle();
        self.lock()
            .normalised(checker, p, defs, disk.as_deref())
            .map(|(norm, _)| norm)
    }

    /// Check `spec ⊑T impl_` through the store. With `threads > 1` the
    /// product exploration runs on [`parallel`]'s work-stealing engine over
    /// the cached CSR snapshot; the verdict and counterexample are
    /// bit-identical either way.
    ///
    /// The returned [`CheckStats`] carry the compile/explore wall split and
    /// the store hit/miss deltas of this call.
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn trace_refinement(
        &self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        threads: usize,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        self.refinement(
            checker,
            spec,
            impl_,
            defs,
            threads,
            RefinementModel::Traces,
            options,
        )
    }

    /// Check `spec ⊑F impl_` through the store. With `threads > 1` the
    /// stable-failures product walk runs on [`parallel`]'s work-stealing
    /// engine (same bit-identical verdict/counterexample guarantee as
    /// [`ModelStore::trace_refinement`]).
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn failures_refinement(
        &self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        threads: usize,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        self.refinement(
            checker,
            spec,
            impl_,
            defs,
            threads,
            RefinementModel::Failures,
            options,
        )
    }

    /// Check `spec ⊑FD impl_` through the store: divergence-freedom of the
    /// implementation first (over the cached compile and its cached
    /// [`GraphAnalysis`] divergence bits), then stable-failures refinement
    /// reusing that same compiled model — on the work-stealing engine when
    /// `threads > 1`.
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn failures_divergences_refinement(
        &self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        threads: usize,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        let persist = self.persist_config();
        let disk = persist.as_ref().map(|cfg| Arc::clone(&cfg.cache));
        let (hits0, misses0) = self.counters();
        let (ahits0, amisses0) = self.analysis_counters();
        let compile_start = Instant::now();
        let (impl_m, analysis) = self.compile_and_analyse(checker, impl_, defs)?;
        let divergence = checker.divergence_free_with_flags(impl_m.lts(), analysis.divergent());
        if !divergence.is_pass() {
            let (hits1, misses1) = self.counters();
            let (ahits1, amisses1) = self.analysis_counters();
            let stats = CheckStats {
                compile_wall: compile_start.elapsed(),
                store_hits: hits1 - hits0,
                store_misses: misses1 - misses0,
                analysis_hits: ahits1 - ahits0,
                analysis_misses: amisses1 - amisses0,
                ..CheckStats::default()
            };
            return Ok((divergence, stats));
        }
        // The divergence phase is linear and re-run fresh on resume; the
        // stable-failures walk is the part worth checkpointing, and it
        // shares its check identity with a plain ⊑F of the same models.
        let (norm, norm_wall, id) = {
            let mut inner = self.lock();
            let (norm, norm_wall) = inner.normalised(checker, spec, defs, disk.as_deref())?;
            let id = persist.as_ref().map(|_| {
                inner.check_id(
                    checker,
                    spec,
                    impl_,
                    defs,
                    RefinementModel::Failures,
                    threads,
                )
            });
            (norm, norm_wall, id)
        };
        let compile_wall = compile_start.elapsed();
        let (verdict, mut stats) = self.engine_run(
            checker,
            &norm,
            &impl_m,
            threads,
            RefinementModel::Failures,
            options,
            persist
                .as_ref()
                .map(|cfg| (cfg, id.expect("id with persist"))),
        )?;
        stats.compile_wall = compile_wall;
        stats.normalise_wall = norm_wall;
        stats.predicted_pairs =
            (norm.node_count() as u64).saturating_mul(impl_m.lts().state_count() as u64);
        let (hits1, misses1) = self.counters();
        stats.store_hits = hits1 - hits0;
        stats.store_misses = misses1 - misses0;
        let (ahits1, amisses1) = self.analysis_counters();
        stats.analysis_hits = ahits1 - ahits0;
        stats.analysis_misses = amisses1 - amisses0;
        Ok((verdict, stats))
    }

    /// Is `p` deadlock free? Compiles through the cache, reads the
    /// guaranteed-deadlock sinks off the cached [`GraphAnalysis`], then
    /// runs the checker's witness search over those flags.
    ///
    /// # Errors
    ///
    /// Compilation exceeded its bound.
    pub fn deadlock_free(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        let (model, analysis) = self.compile_and_analyse(checker, p, defs)?;
        Ok(checker.deadlock_free_with_flags(model.lts(), analysis.deadlocked()))
    }

    /// Is `p` divergence free? Compiles through the cache, reads the
    /// divergent-state set off the cached [`GraphAnalysis`] (the same set
    /// the direct checker's τ-peel computes), then runs the checker's
    /// witness search over those flags.
    ///
    /// # Errors
    ///
    /// Compilation exceeded its bound.
    pub fn divergence_free(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        let (model, analysis) = self.compile_and_analyse(checker, p, defs)?;
        Ok(checker.divergence_free_with_flags(model.lts(), analysis.divergent()))
    }

    /// One compile-counter touch, one analysis-counter touch: compile `p`
    /// through the cache and analyse the result, under a single lock.
    fn compile_and_analyse(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<(Arc<CompiledModel>, Arc<GraphAnalysis>), CheckError> {
        let disk = self.cache_handle();
        let mut inner = self.lock();
        let model = inner.compile(checker, p, defs, disk.as_deref())?;
        let defs_id = inner.defs_id(defs);
        let term = inner.arenas[defs_id as usize].intern(p);
        let key = CompileKey::new(term, defs_id, checker);
        let analysis = inner.analysis(key, &model);
        Ok((model, analysis))
    }

    /// Is `p` deterministic? Normalises through the cache, then runs
    /// [`Checker::deterministic_compiled`].
    ///
    /// # Errors
    ///
    /// Compilation or normalisation exceeded its bound.
    pub fn deterministic(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        let norm = self.normalised(checker, p, defs)?;
        Ok(checker.deterministic_compiled(&norm))
    }

    /// Refinement of a cached spec normal form against a cached impl
    /// compile; the engines run outside the store lock.
    #[allow(clippy::too_many_arguments)]
    fn refinement(
        &self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        threads: usize,
        model: RefinementModel,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        let persist = self.persist_config();
        let disk = persist.as_ref().map(|cfg| Arc::clone(&cfg.cache));
        let (hits0, misses0) = self.counters();
        let compile_start = Instant::now();
        let (norm, norm_wall, impl_m, id) = {
            let mut inner = self.lock();
            let (norm, norm_wall) = inner.normalised(checker, spec, defs, disk.as_deref())?;
            let impl_m = inner.compile(checker, impl_, defs, disk.as_deref())?;
            let id = persist
                .as_ref()
                .map(|_| inner.check_id(checker, spec, impl_, defs, model, threads));
            (norm, norm_wall, impl_m, id)
        };
        let compile_wall = compile_start.elapsed();
        let (verdict, mut stats) = self.engine_run(
            checker,
            &norm,
            &impl_m,
            threads,
            model,
            options,
            persist
                .as_ref()
                .map(|cfg| (cfg, id.expect("id with persist"))),
        )?;
        stats.compile_wall = compile_wall;
        stats.normalise_wall = norm_wall;
        // Sound a-priori bound on the product walk: every explored pair is
        // (impl state, spec normal-form node).
        stats.predicted_pairs =
            (norm.node_count() as u64).saturating_mul(impl_m.lts().state_count() as u64);
        let (hits1, misses1) = self.counters();
        stats.store_hits = hits1 - hits0;
        stats.store_misses = misses1 - misses0;
        Ok((verdict, stats))
    }

    /// Run the refinement engine (serial or work-stealing) over compiled
    /// artifacts, with checkpoint/resume when a [`PersistConfig`] is
    /// attached.
    ///
    /// With persistence, a run that exhausts its budget writes a checkpoint
    /// keyed by the check's [`CheckId`] and carries the resume token in the
    /// `Inconclusive` verdict; a conclusive verdict removes any checkpoint.
    /// `checkpoint_every` is implemented by segmenting the *state* budget:
    /// the engine is driven in slices of that many newly discovered product
    /// pairs, a checkpoint is written at each slice boundary, and the run
    /// continues in-process — the serial frontier is an exact continuation
    /// and the parallel verdict is canonicalised by the bounded re-walk, so
    /// segmentation never changes a verdict or counterexample.
    #[allow(clippy::too_many_arguments)]
    fn engine_run(
        &self,
        checker: &Checker,
        norm: &NormalisedLts,
        impl_m: &CompiledModel,
        threads: usize,
        model: RefinementModel,
        options: &CheckOptions,
        persist: Option<(&PersistConfig, CheckId)>,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        let parallel_engine = threads > 1;
        let Some((cfg, id)) = persist else {
            return if parallel_engine {
                parallel::refine_compiled_with_options(
                    checker, norm, impl_m, model, threads, options,
                )
            } else {
                checker.refine_with_options(norm, impl_m.lts(), model, options)
            };
        };

        let cache = &cfg.cache;
        let want_resume = match cfg.resume {
            ResumePolicy::Off => false,
            ResumePolicy::Auto => true,
            ResumePolicy::Token(token) => token == id,
        };
        let mut carried: Option<EngineFrontier> = if want_resume {
            cache.load_checkpoint(id).and_then(|ckpt| {
                let states = impl_m.lts().state_count();
                let nodes = norm.node_count();
                let fits = ckpt.model == model
                    && match (&ckpt.frontier, parallel_engine) {
                        (EngineFrontier::Serial(f), false) => f.validate(states, nodes),
                        (EngineFrontier::Parallel(f), true) => f.validate(states, nodes),
                        _ => false,
                    };
                if fits {
                    Some(ckpt.frontier)
                } else {
                    cache.discard_checkpoint(id, "frontier does not fit the current models");
                    None
                }
            })
        } else {
            None
        };

        let explore_start = Instant::now();
        let mut cpu_total = Duration::ZERO;
        loop {
            let discovered = match &carried {
                Some(EngineFrontier::Serial(f)) => f.pairs_discovered,
                Some(EngineFrontier::Parallel(f)) => f.discovered,
                None => 0,
            };
            // Slice the state budget at the next checkpoint boundary (never
            // past the caller's real budget).
            let slice_limit = cfg.checkpoint_every.map(|every| {
                let target = discovered.saturating_add(every.max(1));
                options.max_states.map_or(target, |real| real.min(target))
            });
            let slice = CheckOptions {
                max_states: slice_limit.or(options.max_states),
                max_wall_ms: options.max_wall_ms,
            };
            let (verdict, frontier, mut stats) = if parallel_engine {
                let resume = match &carried {
                    Some(EngineFrontier::Parallel(f)) => Some(f),
                    _ => None,
                };
                let (v, f, s) = parallel::refine_compiled_resumable(
                    checker, norm, impl_m, model, threads, &slice, resume,
                )?;
                (v, f.map(EngineFrontier::Parallel), s)
            } else {
                let resume = match &carried {
                    Some(EngineFrontier::Serial(f)) => Some(f),
                    _ => None,
                };
                let (v, f, s) = checker.refine_with_options_resumable(
                    norm,
                    impl_m.lts(),
                    model,
                    &slice,
                    resume,
                )?;
                (v, f.map(EngineFrontier::Serial), s)
            };
            cpu_total += stats.cpu_busy;
            stats.wall = explore_start.elapsed();
            stats.explore_wall = stats.wall;
            stats.cpu_busy = cpu_total;

            match verdict {
                Verdict::Inconclusive(mut inc) => {
                    if let Some(frontier) = frontier {
                        cache.save_checkpoint(&Checkpoint {
                            id,
                            model,
                            frontier: frontier.clone(),
                        });
                        // A slice boundary is not the caller's budget: keep
                        // exploring in-process. Only the caller's own state
                        // or wall budget surfaces as Inconclusive.
                        let synthetic = match inc.reason {
                            BudgetReason::States { limit } => {
                                slice_limit == Some(limit) && options.max_states != Some(limit)
                            }
                            // A real wall budget or a shutdown request always
                            // surfaces to the caller (with the resume token).
                            BudgetReason::Wall { .. } | BudgetReason::Interrupted => false,
                        };
                        if synthetic {
                            carried = Some(frontier);
                            continue;
                        }
                        inc.resume = Some(id.token());
                    }
                    return Ok((Verdict::Inconclusive(inc), stats));
                }
                conclusive => {
                    cache.remove_checkpoint(id);
                    return Ok((conclusive, stats));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterexample::FailureKind;
    use csp::{EventId, EventSet};

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn repeated_compiles_hit_the_cache() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));

        let a = store.compile(&checker, &p, &defs).unwrap();
        assert_eq!(store.hits(), 0);
        assert_eq!(store.misses(), 1);

        let b = store.compile(&checker, &p.clone(), &defs).unwrap();
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same allocation");
    }

    #[test]
    fn different_bounds_compile_separately() {
        let store = ModelStore::new();
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::Stop);

        let loose = Checker::new();
        let mut b = crate::CheckerBuilder::new();
        b.max_states(10);
        let tight = b.build();

        store.compile(&loose, &p, &defs).unwrap();
        store.compile(&tight, &p, &defs).unwrap();
        assert_eq!(store.misses(), 2, "distinct bounds must not share a slot");
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn shared_store_keeps_definitions_tables_apart() {
        // Two tables whose DefId(0) bodies differ: `P = a -> STOP` vs
        // `P = b -> STOP`. The term `Var(0)` is structurally identical in
        // both scripts, so a defs-blind cache would serve table A's model
        // for table B and flip its verdict.
        let checker = Checker::new();
        let store = ModelStore::new();
        let spec = Process::prefix(e(0), Process::Stop);

        let mut defs_a = Definitions::new();
        let pa = defs_a.declare("P");
        defs_a.define(pa, Process::prefix(e(0), Process::Stop));
        let mut defs_b = Definitions::new();
        let pb = defs_b.declare("P");
        defs_b.define(pb, Process::prefix(e(1), Process::Stop));

        let (a, _) = store
            .trace_refinement(
                &checker,
                &spec,
                &Process::var(pa),
                &defs_a,
                1,
                &CheckOptions::UNBOUNDED,
            )
            .unwrap();
        assert!(a.is_pass(), "P = a -> STOP refines a -> STOP");

        let (b, _) = store
            .trace_refinement(
                &checker,
                &spec,
                &Process::var(pb),
                &defs_b,
                1,
                &CheckOptions::UNBOUNDED,
            )
            .unwrap();
        assert!(
            !b.is_pass(),
            "P = b -> STOP must refute even though Var(0) was cached for table A"
        );
        assert_eq!(
            b.counterexample().unwrap().kind(),
            &FailureKind::TraceViolation { event: Some(e(1)) }
        );
    }

    #[test]
    fn store_verdicts_match_direct_checker() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));

        let direct = checker.trace_refinement(&spec, &impl_, &defs).unwrap();
        let (via_store, stats) = store
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .unwrap();
        assert_eq!(direct, via_store);
        assert_eq!(
            via_store.counterexample().unwrap().kind(),
            &FailureKind::TraceViolation { event: Some(e(1)) }
        );
        assert_eq!(stats.store_misses, 3, "spec lts + spec norm + impl lts");
        assert_eq!(stats.store_hits, 0);

        // Warm re-check: same verdict, everything served from cache.
        let (warm, warm_stats) = store
            .trace_refinement(
                &checker,
                &spec.clone(),
                &impl_.clone(),
                &defs,
                1,
                &CheckOptions::UNBOUNDED,
            )
            .unwrap();
        assert_eq!(warm, via_store);
        assert_eq!(warm_stats.store_hits, 2, "norm + impl compile");
        assert_eq!(warm_stats.store_misses, 0);
    }

    #[test]
    fn parallel_path_matches_serial_through_the_store() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));

        let (serial, _) = store
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .unwrap();
        let (par, _) = store
            .trace_refinement(&checker, &spec, &impl_, &defs, 4, &CheckOptions::UNBOUNDED)
            .unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn fd_check_reuses_the_impl_compile() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::Stop);

        let direct = checker
            .failures_divergences_refinement(&p, &p, &defs)
            .unwrap();
        let (via_store, stats) = store
            .failures_divergences_refinement(&checker, &p, &p, &defs, 1, &CheckOptions::UNBOUNDED)
            .unwrap();
        assert_eq!(direct, via_store);
        // The impl compile is reused when the spec (equal term here) is
        // normalised: one lts miss, one norm miss, one compile hit.
        assert_eq!(stats.store_misses, 2);
        assert_eq!(stats.store_hits, 1);
    }

    #[test]
    fn fd_divergent_impl_fails_with_stats() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let divergent = Process::hide(Process::var(d), EventSet::singleton(e(0)));

        let (v, stats) = store
            .failures_divergences_refinement(
                &checker,
                &Process::Stop,
                &divergent,
                &defs,
                1,
                &CheckOptions::UNBOUNDED,
            )
            .unwrap();
        assert_eq!(v.counterexample().unwrap().kind(), &FailureKind::Divergence);
        assert_eq!(stats.store_misses, 1, "only the impl was compiled");
    }

    #[test]
    fn property_checks_match_direct_checker_and_cache() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let p = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );

        assert_eq!(
            store.deadlock_free(&checker, &p, &defs).unwrap(),
            checker.deadlock_free(&p, &defs).unwrap()
        );
        assert_eq!(
            store.divergence_free(&checker, &p, &defs).unwrap(),
            checker.divergence_free(&p, &defs).unwrap()
        );
        assert_eq!(
            store.deterministic(&checker, &p, &defs).unwrap(),
            checker.deterministic(&p, &defs).unwrap()
        );
        // deadlock: 1 miss; divergence: 1 hit; deterministic: norm miss +
        // compile hit.
        assert_eq!(store.misses(), 2);
        assert_eq!(store.hits(), 2);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<ModelStore>();
        assert_sync_send::<CompiledModel>();
    }
}
