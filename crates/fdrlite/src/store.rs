//! A content-addressed store of compiled models, shared across the whole
//! checking stack.
//!
//! Every end-to-end check starts the same way: explicate the process tree
//! into an [`Lts`], snapshot it as CSR for the parallel engine, and (for
//! specifications) normalise it. Before this store existed each entry point
//! redid that work per call, so a script with five assertions over one
//! `SYSTEM` compiled `SYSTEM` five times. A [`ModelStore`] interns every
//! process into one hash-consed [`TermArena`] and caches the compiled
//! artifacts under their term id plus the [`Checker`] bounds that shaped
//! them, so structurally equal processes checked under equal bounds compile
//! exactly once.
//!
//! The store is a pure cache: every verdict, counterexample and witness
//! trace produced through it is bit-identical to the corresponding direct
//! [`Checker`] / [`crate::parallel`] call, at any thread count. What changes
//! is only the [`CheckStats`] cost split — warm runs report near-zero
//! `compile_wall` and nonzero `store_hits`.
//!
//! # One store per definitions table
//!
//! The arena memoises definition bodies by [`csp::DefId`], so a store is
//! valid for exactly **one** [`Definitions`] table — the same contract as
//! [`TermArena`]. Create one store per loaded script (or per standalone
//! table) and share it across that script's assertions, conformance traces
//! and property constructions.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use csp::{CsrEdges, Definitions, Lts, Process, TermArena, TermId};

use crate::checker::{CheckOptions, Checker, RefinementModel};
use crate::counterexample::Verdict;
use crate::error::CheckError;
use crate::normalise::NormalisedLts;
use crate::parallel;
use crate::stats::CheckStats;

/// A compiled process: its explicit [`Lts`] together with the CSR snapshot
/// the work-stealing engine traverses.
///
/// Produced (and cached) by [`ModelStore::compile`]; handed to the engines
/// behind an `Arc` so concurrent checks share one allocation.
#[derive(Debug)]
pub struct CompiledModel {
    lts: Lts,
    csr: CsrEdges,
}

impl CompiledModel {
    /// The explicit transition system.
    pub fn lts(&self) -> &Lts {
        &self.lts
    }

    /// The flat CSR snapshot of the transition relation.
    pub fn csr(&self) -> &CsrEdges {
        &self.csr
    }
}

/// Cache key for a compiled model: the interned term plus every checker
/// bound that shapes the compiled artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CompileKey {
    term: TermId,
    max_states: usize,
    compress: bool,
}

impl CompileKey {
    fn new(term: TermId, checker: &Checker) -> CompileKey {
        CompileKey {
            term,
            max_states: checker.max_states(),
            compress: checker.compress(),
        }
    }
}

/// Cache key for a normalised specification: the compile key plus the
/// normalisation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NormKey {
    compile: CompileKey,
    max_norm_nodes: usize,
}

/// Everything behind the store's mutex: the shared arena and both caches.
#[derive(Default)]
struct StoreInner {
    arena: TermArena,
    compiled: HashMap<CompileKey, Arc<CompiledModel>>,
    normalised: HashMap<NormKey, Arc<NormalisedLts>>,
    hits: u64,
    misses: u64,
}

impl StoreInner {
    fn compile(
        &mut self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Arc<CompiledModel>, CheckError> {
        let term = self.arena.intern(p);
        let key = CompileKey::new(term, checker);
        if let Some(model) = self.compiled.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(model));
        }
        self.misses += 1;
        let lts = Lts::build_in(&mut self.arena, term, defs, checker.max_states())?;
        let lts = if checker.compress() {
            csp::compress::quotient_bisim(&lts).lts
        } else {
            lts
        };
        let csr = lts.to_csr();
        let model = Arc::new(CompiledModel { lts, csr });
        self.compiled.insert(key, Arc::clone(&model));
        Ok(model)
    }

    fn normalised(
        &mut self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Arc<NormalisedLts>, CheckError> {
        let term = self.arena.intern(p);
        let key = NormKey {
            compile: CompileKey::new(term, checker),
            max_norm_nodes: checker.max_norm_nodes(),
        };
        if let Some(norm) = self.normalised.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(norm));
        }
        let model = self.compile(checker, p, defs)?;
        self.misses += 1;
        let norm = Arc::new(NormalisedLts::build(model.lts(), checker.max_norm_nodes())?);
        self.normalised.insert(key, Arc::clone(&norm));
        Ok(norm)
    }
}

/// A shared, content-addressed cache of compiled (and normalised) models.
///
/// See the module docs above for the caching contract. The store is
/// `Send + Sync`; a mutex guards the arena and both caches, but the engines
/// run outside the lock — only interning and cache lookups serialise.
pub struct ModelStore {
    inner: Mutex<StoreInner>,
}

impl Default for ModelStore {
    fn default() -> Self {
        ModelStore::new()
    }
}

impl ModelStore {
    /// An empty store.
    pub fn new() -> ModelStore {
        ModelStore {
            inner: Mutex::new(StoreInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("model store poisoned")
    }

    /// Artifacts served from cache so far (compiled models and normal
    /// forms both count).
    pub fn hits(&self) -> u64 {
        self.lock().hits
    }

    /// Artifacts built fresh so far.
    pub fn misses(&self) -> u64 {
        self.lock().misses
    }

    fn counters(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Compile `p` (explicate + optional compression + CSR snapshot),
    /// served from cache when an equal term was already compiled under
    /// equal bounds.
    ///
    /// # Errors
    ///
    /// Propagates state-space and recursion errors from the core semantics.
    pub fn compile(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Arc<CompiledModel>, CheckError> {
        self.lock().compile(checker, p, defs)
    }

    /// Normalise `p` for use as a specification, compiling it through the
    /// cache first.
    ///
    /// # Errors
    ///
    /// As for [`ModelStore::compile`], plus
    /// [`CheckError::NormalisationExceeded`].
    pub fn normalised(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Arc<NormalisedLts>, CheckError> {
        self.lock().normalised(checker, p, defs)
    }

    /// Check `spec ⊑T impl_` through the store. With `threads > 1` the
    /// product exploration runs on [`parallel`]'s work-stealing engine over
    /// the cached CSR snapshot; the verdict and counterexample are
    /// bit-identical either way.
    ///
    /// The returned [`CheckStats`] carry the compile/explore wall split and
    /// the store hit/miss deltas of this call.
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn trace_refinement(
        &self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        threads: usize,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        self.refinement(
            checker,
            spec,
            impl_,
            defs,
            threads,
            RefinementModel::Traces,
            options,
        )
    }

    /// Check `spec ⊑F impl_` through the store (serial engine; the
    /// stable-failures walk is not parallelised).
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn failures_refinement(
        &self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        self.refinement(
            checker,
            spec,
            impl_,
            defs,
            1,
            RefinementModel::Failures,
            options,
        )
    }

    /// Check `spec ⊑FD impl_` through the store: divergence-freedom of the
    /// implementation first (over the cached compile), then stable-failures
    /// refinement reusing that same compiled model.
    ///
    /// # Errors
    ///
    /// Compilation or exploration exceeded a hard bound.
    pub fn failures_divergences_refinement(
        &self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        let (hits0, misses0) = self.counters();
        let compile_start = Instant::now();
        let impl_m = self.compile(checker, impl_, defs)?;
        let divergence = checker.divergence_free_compiled(impl_m.lts());
        if !divergence.is_pass() {
            let (hits1, misses1) = self.counters();
            let stats = CheckStats {
                compile_wall: compile_start.elapsed(),
                store_hits: hits1 - hits0,
                store_misses: misses1 - misses0,
                ..CheckStats::default()
            };
            return Ok((divergence, stats));
        }
        let norm = self.normalised(checker, spec, defs)?;
        let compile_wall = compile_start.elapsed();
        let (verdict, mut stats) =
            checker.refine_with_options(&norm, impl_m.lts(), RefinementModel::Failures, options)?;
        stats.compile_wall = compile_wall;
        let (hits1, misses1) = self.counters();
        stats.store_hits = hits1 - hits0;
        stats.store_misses = misses1 - misses0;
        Ok((verdict, stats))
    }

    /// Is `p` deadlock free? Compiles through the cache, then runs
    /// [`Checker::deadlock_free_compiled`].
    ///
    /// # Errors
    ///
    /// Compilation exceeded its bound.
    pub fn deadlock_free(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        Ok(checker.deadlock_free_compiled(self.compile(checker, p, defs)?.lts()))
    }

    /// Is `p` divergence free? Compiles through the cache, then runs
    /// [`Checker::divergence_free_compiled`].
    ///
    /// # Errors
    ///
    /// Compilation exceeded its bound.
    pub fn divergence_free(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        Ok(checker.divergence_free_compiled(self.compile(checker, p, defs)?.lts()))
    }

    /// Is `p` deterministic? Normalises through the cache, then runs
    /// [`Checker::deterministic_compiled`].
    ///
    /// # Errors
    ///
    /// Compilation or normalisation exceeded its bound.
    pub fn deterministic(
        &self,
        checker: &Checker,
        p: &Process,
        defs: &Definitions,
    ) -> Result<Verdict, CheckError> {
        let norm = self.normalised(checker, p, defs)?;
        Ok(checker.deterministic_compiled(&norm))
    }

    /// Refinement of a cached spec normal form against a cached impl
    /// compile; the engines run outside the store lock.
    #[allow(clippy::too_many_arguments)]
    fn refinement(
        &self,
        checker: &Checker,
        spec: &Process,
        impl_: &Process,
        defs: &Definitions,
        threads: usize,
        model: RefinementModel,
        options: &CheckOptions,
    ) -> Result<(Verdict, CheckStats), CheckError> {
        let (hits0, misses0) = self.counters();
        let compile_start = Instant::now();
        let (norm, impl_m) = {
            let mut inner = self.lock();
            let norm = inner.normalised(checker, spec, defs)?;
            let impl_m = inner.compile(checker, impl_, defs)?;
            (norm, impl_m)
        };
        let compile_wall = compile_start.elapsed();
        let (verdict, mut stats) = if threads > 1 && model == RefinementModel::Traces {
            parallel::refine_compiled_with_options(checker, &norm, &impl_m, threads, options)?
        } else {
            checker.refine_with_options(&norm, impl_m.lts(), model, options)?
        };
        stats.compile_wall = compile_wall;
        let (hits1, misses1) = self.counters();
        stats.store_hits = hits1 - hits0;
        stats.store_misses = misses1 - misses0;
        Ok((verdict, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterexample::FailureKind;
    use csp::{EventId, EventSet};

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn repeated_compiles_hit_the_cache() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));

        let a = store.compile(&checker, &p, &defs).unwrap();
        assert_eq!(store.hits(), 0);
        assert_eq!(store.misses(), 1);

        let b = store.compile(&checker, &p.clone(), &defs).unwrap();
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same allocation");
    }

    #[test]
    fn different_bounds_compile_separately() {
        let store = ModelStore::new();
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::Stop);

        let loose = Checker::new();
        let mut b = crate::CheckerBuilder::new();
        b.max_states(10);
        let tight = b.build();

        store.compile(&loose, &p, &defs).unwrap();
        store.compile(&tight, &p, &defs).unwrap();
        assert_eq!(store.misses(), 2, "distinct bounds must not share a slot");
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn store_verdicts_match_direct_checker() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));

        let direct = checker.trace_refinement(&spec, &impl_, &defs).unwrap();
        let (via_store, stats) = store
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .unwrap();
        assert_eq!(direct, via_store);
        assert_eq!(
            via_store.counterexample().unwrap().kind(),
            &FailureKind::TraceViolation { event: Some(e(1)) }
        );
        assert_eq!(stats.store_misses, 3, "spec lts + spec norm + impl lts");
        assert_eq!(stats.store_hits, 0);

        // Warm re-check: same verdict, everything served from cache.
        let (warm, warm_stats) = store
            .trace_refinement(
                &checker,
                &spec.clone(),
                &impl_.clone(),
                &defs,
                1,
                &CheckOptions::UNBOUNDED,
            )
            .unwrap();
        assert_eq!(warm, via_store);
        assert_eq!(warm_stats.store_hits, 2, "norm + impl compile");
        assert_eq!(warm_stats.store_misses, 0);
    }

    #[test]
    fn parallel_path_matches_serial_through_the_store() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let spec = Process::prefix(e(0), Process::Stop);
        let impl_ = Process::prefix(e(0), Process::prefix(e(1), Process::Stop));

        let (serial, _) = store
            .trace_refinement(&checker, &spec, &impl_, &defs, 1, &CheckOptions::UNBOUNDED)
            .unwrap();
        let (par, _) = store
            .trace_refinement(&checker, &spec, &impl_, &defs, 4, &CheckOptions::UNBOUNDED)
            .unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn fd_check_reuses_the_impl_compile() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let p = Process::prefix(e(0), Process::Stop);

        let direct = checker
            .failures_divergences_refinement(&p, &p, &defs)
            .unwrap();
        let (via_store, stats) = store
            .failures_divergences_refinement(&checker, &p, &p, &defs, &CheckOptions::UNBOUNDED)
            .unwrap();
        assert_eq!(direct, via_store);
        // The impl compile is reused when the spec (equal term here) is
        // normalised: one lts miss, one norm miss, one compile hit.
        assert_eq!(stats.store_misses, 2);
        assert_eq!(stats.store_hits, 1);
    }

    #[test]
    fn fd_divergent_impl_fails_with_stats() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));
        let divergent = Process::hide(Process::var(d), EventSet::singleton(e(0)));

        let (v, stats) = store
            .failures_divergences_refinement(
                &checker,
                &Process::Stop,
                &divergent,
                &defs,
                &CheckOptions::UNBOUNDED,
            )
            .unwrap();
        assert_eq!(v.counterexample().unwrap().kind(), &FailureKind::Divergence);
        assert_eq!(stats.store_misses, 1, "only the impl was compiled");
    }

    #[test]
    fn property_checks_match_direct_checker_and_cache() {
        let checker = Checker::new();
        let store = ModelStore::new();
        let defs = Definitions::new();
        let p = Process::external_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );

        assert_eq!(
            store.deadlock_free(&checker, &p, &defs).unwrap(),
            checker.deadlock_free(&p, &defs).unwrap()
        );
        assert_eq!(
            store.divergence_free(&checker, &p, &defs).unwrap(),
            checker.divergence_free(&p, &defs).unwrap()
        );
        assert_eq!(
            store.deterministic(&checker, &p, &defs).unwrap(),
            checker.deterministic(&p, &defs).unwrap()
        );
        // deadlock: 1 miss; divergence: 1 hit; deterministic: norm miss +
        // compile hit.
        assert_eq!(store.misses(), 2);
        assert_eq!(store.hits(), 2);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<ModelStore>();
        assert_sync_send::<CompiledModel>();
    }
}
