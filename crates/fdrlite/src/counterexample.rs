//! Check verdicts and counterexample witnesses.

use csp::{Alphabet, EventId, Trace};
use std::fmt;

/// The outcome of a check: it holds, a witness refutes it, or a resource
/// budget ran out before either could be established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds.
    Pass,
    /// The property fails; the counterexample explains why.
    Fail(Counterexample),
    /// A resource budget ([`crate::CheckOptions`]) was exhausted before the
    /// check could conclude. Neither a proof nor a counterexample exists:
    /// the states explored so far contained no violation, but unexplored
    /// states might.
    Inconclusive(Inconclusive),
}

impl Verdict {
    /// Did the check pass? `false` for both [`Verdict::Fail`] and
    /// [`Verdict::Inconclusive`].
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// Did the check run out of budget before concluding?
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Verdict::Inconclusive(_))
    }

    /// The counterexample, if the check failed.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Pass | Verdict::Inconclusive(_) => None,
            Verdict::Fail(c) => Some(c),
        }
    }

    /// Budget-exhaustion details, if the check was inconclusive.
    pub fn inconclusive(&self) -> Option<&Inconclusive> {
        match self {
            Verdict::Inconclusive(i) => Some(i),
            _ => None,
        }
    }
}

/// Details attached to [`Verdict::Inconclusive`]: how far the exploration
/// got and which budget stopped it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconclusive {
    /// Product states explored before the budget ran out.
    pub states_explored: u64,
    /// Which budget was exhausted.
    pub reason: BudgetReason,
    /// Resume token for `autocsp check --resume`, present when a persistent
    /// cache was attached and a checkpoint was written. The token is a
    /// deterministic function of the check's identity (model hashes,
    /// semantic model, compile bounds, engine class), so re-running the
    /// same check yields the same token.
    pub resume: Option<String>,
}

impl Inconclusive {
    /// Budget-exhaustion details with no resume checkpoint attached.
    pub fn new(states_explored: u64, reason: BudgetReason) -> Inconclusive {
        Inconclusive {
            states_explored,
            reason,
            resume: None,
        }
    }
}

impl fmt::Display for Inconclusive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after exploring {} states",
            self.reason, self.states_explored
        )
    }
}

/// Which [`crate::CheckOptions`] budget stopped an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// `max_states` was reached.
    States {
        /// The configured state budget.
        limit: u64,
    },
    /// `max_wall_ms` elapsed.
    Wall {
        /// The configured wall-clock budget in milliseconds.
        limit_ms: u64,
    },
    /// A graceful shutdown was requested ([`crate::request_interrupt`],
    /// e.g. from a `SIGTERM` handler); the exploration wound down at the
    /// next budget poll and checkpointed its frontier like any other
    /// budget exhaustion.
    Interrupted,
}

impl fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetReason::States { limit } => write!(f, "state budget ({limit}) exhausted"),
            BudgetReason::Wall { limit_ms } => {
                write!(f, "wall-clock budget ({limit_ms} ms) exhausted")
            }
            BudgetReason::Interrupted => write!(f, "interrupted by shutdown request"),
        }
    }
}

/// Why a check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The implementation performed a visible event (or `✓` when `event` is
    /// `None`) the specification does not allow after the witness trace.
    TraceViolation {
        /// The offending event; `None` means unexpected termination.
        event: Option<EventId>,
    },
    /// The implementation reached a stable state whose refusals exceed
    /// anything the specification allows after the witness trace.
    RefusalViolation {
        /// The visible events the implementation still accepts there.
        accepted: Vec<EventId>,
        /// Whether the implementation accepts `✓` there.
        accepts_tick: bool,
    },
    /// The implementation deadlocks after the witness trace.
    Deadlock,
    /// The implementation can diverge (perform `τ` forever) after the
    /// witness trace.
    Divergence,
    /// After the witness trace the process can both accept and refuse
    /// `event` — it is nondeterministic.
    Nondeterminism {
        /// The ambivalent event.
        event: EventId,
    },
}

/// A witness refuting a check: the trace that leads to the problem plus the
/// kind of problem found there.
///
/// This is the "counterexample / failure trace" of the paper's Fig. 1, fed
/// back to the software designer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    trace: Trace,
    kind: FailureKind,
}

impl Counterexample {
    pub(crate) fn new(trace: Trace, kind: FailureKind) -> Self {
        Counterexample { trace, kind }
    }

    /// The visible trace leading to the violation.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// What went wrong at the end of the trace.
    pub fn kind(&self) -> &FailureKind {
        &self.kind
    }

    /// Render the counterexample with event names from `alphabet`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> CounterexampleDisplay<'a> {
        CounterexampleDisplay {
            cex: self,
            alphabet,
        }
    }
}

/// Pretty-printer returned by [`Counterexample::display`].
#[derive(Debug)]
pub struct CounterexampleDisplay<'a> {
    cex: &'a Counterexample,
    alphabet: &'a Alphabet,
}

impl fmt::Display for CounterexampleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "after {}", self.cex.trace.display(self.alphabet))?;
        match &self.cex.kind {
            FailureKind::TraceViolation { event: Some(e) } => {
                write!(
                    f,
                    ", the implementation performs `{}` which the specification forbids",
                    self.alphabet.name(*e)
                )
            }
            FailureKind::TraceViolation { event: None } => {
                write!(
                    f,
                    ", the implementation terminates but the specification forbids ✓"
                )
            }
            FailureKind::RefusalViolation {
                accepted,
                accepts_tick,
            } => {
                write!(f, ", the implementation may refuse everything except {{")?;
                for (i, e) in accepted.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.alphabet.name(*e))?;
                }
                if *accepts_tick {
                    if !accepted.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "✓")?;
                }
                write!(f, "}}, which the specification does not allow")
            }
            FailureKind::Deadlock => write!(f, ", the implementation deadlocks"),
            FailureKind::Divergence => write!(f, ", the implementation can diverge"),
            FailureKind::Nondeterminism { event } => write!(
                f,
                ", the process may both accept and refuse `{}`",
                self.alphabet.name(*event)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Pass.is_pass());
        assert!(Verdict::Pass.counterexample().is_none());
        let cex = Counterexample::new(Trace::empty(), FailureKind::Deadlock);
        let v = Verdict::Fail(cex.clone());
        assert!(!v.is_pass());
        assert_eq!(v.counterexample(), Some(&cex));
    }

    #[test]
    fn inconclusive_verdict_accessors() {
        let v = Verdict::Inconclusive(Inconclusive::new(
            1234,
            BudgetReason::States { limit: 1000 },
        ));
        assert!(!v.is_pass());
        assert!(v.is_inconclusive());
        assert!(v.counterexample().is_none());
        let i = v.inconclusive().expect("details");
        assert_eq!(i.states_explored, 1234);
        let text = i.to_string();
        assert!(text.contains("state budget (1000)"), "{text}");
        assert!(text.contains("1234 states"), "{text}");
        let wall = Inconclusive::new(9, BudgetReason::Wall { limit_ms: 50 });
        assert!(wall.to_string().contains("50 ms"), "{wall}");
    }

    #[test]
    fn display_names_the_offending_event() {
        let mut ab = Alphabet::new();
        let bad = ab.intern("send.rogue");
        let cex = Counterexample::new(
            Trace::empty(),
            FailureKind::TraceViolation { event: Some(bad) },
        );
        let text = cex.display(&ab).to_string();
        assert!(text.contains("send.rogue"), "{text}");
    }
}
