//! Reusable specification-process templates.
//!
//! The paper (§V-B) expresses security properties as abstract CSP processes
//! and checks that the extracted implementation refines them. These builders
//! produce the standard shapes used there and in the CSP security literature
//! (Ryan & Schneider): `RUN`, `CHAOS`, request–response, never-occurs and
//! precedence properties.
//!
//! The builders only construct specification *processes*; when they are
//! checked repeatedly (e.g. one property against many implementations, or
//! several assertions naming the same property in a CSPm script) the
//! compile/normalise work is shared through [`crate::ModelStore`], which
//! caches by hash-consed term identity — see `docs/ARCHITECTURE.md`.

use csp::{DefId, Definitions, EventId, EventSet, Process};

/// `RUN(A)`: always willing to perform any event of `A`, forever.
pub fn run(defs: &mut Definitions, name: &str, events: &EventSet) -> Process {
    let d = defs.declare(name);
    let branches = events
        .iter()
        .map(|e| Process::prefix(e, Process::var(d)))
        .collect();
    defs.define(d, Process::external_choice_all(branches));
    Process::var(d)
}

/// `CHAOS(A)`: may perform or refuse anything in `A` at any point.
///
/// Trace-equivalent to [`run`], but in the failures model it may also refuse
/// everything — the weakest specification over `A`.
pub fn chaos(defs: &mut Definitions, name: &str, events: &EventSet) -> Process {
    let d = defs.declare(name);
    let branches: Vec<Process> = events
        .iter()
        .map(|e| Process::prefix(e, Process::var(d)))
        .collect();
    defs.define(
        d,
        Process::internal_choice(Process::Stop, Process::external_choice_all(branches)),
    );
    Process::var(d)
}

/// The paper's `SP02` shape: every `request` is answered by exactly one
/// `response` before the next request (`SP = req -> rsp -> SP`).
pub fn request_response(
    defs: &mut Definitions,
    name: &str,
    request: EventId,
    response: EventId,
) -> Process {
    let d = defs.declare(name);
    defs.define(
        d,
        Process::prefix(request, Process::prefix(response, Process::var(d))),
    );
    Process::var(d)
}

/// Like [`request_response`], but other events from `other` may freely occur
/// at any point — the "more sophisticated model" sketched in §V-B of the
/// paper, where unrelated traffic is allowed on an `other` channel while the
/// request is still answered before the next request.
pub fn request_response_with_noise(
    defs: &mut Definitions,
    name: &str,
    request: EventId,
    response: EventId,
    other: &EventSet,
) -> Process {
    let idle = defs.declare(&format!("{name}_idle"));
    let busy = defs.declare(&format!("{name}_busy"));
    let mut idle_branches = vec![Process::prefix(request, Process::var(busy))];
    idle_branches.extend(other.iter().map(|e| Process::prefix(e, Process::var(idle))));
    defs.define(idle, Process::external_choice_all(idle_branches));
    let mut busy_branches = vec![Process::prefix(response, Process::var(idle))];
    busy_branches.extend(other.iter().map(|e| Process::prefix(e, Process::var(busy))));
    defs.define(busy, Process::external_choice_all(busy_branches));
    Process::var(idle)
}

/// A safety property: events of `universe \ forbidden` may occur freely, but
/// nothing in `forbidden` may ever occur.
pub fn never(
    defs: &mut Definitions,
    name: &str,
    universe: &EventSet,
    forbidden: &EventSet,
) -> Process {
    run(defs, name, &universe.difference(forbidden))
}

/// A precedence property: no event of `then` may occur before some event of
/// `first` has occurred; afterwards everything in `universe` is free.
pub fn precedes(
    defs: &mut Definitions,
    name: &str,
    universe: &EventSet,
    first: &EventSet,
    then: &EventSet,
) -> Process {
    let after = run(defs, &format!("{name}_after"), universe);
    let d = defs.declare(name);
    let mut branches: Vec<Process> = first
        .iter()
        .map(|e| Process::prefix(e, after.clone()))
        .collect();
    for e in universe.difference(&first.union(then)).iter() {
        branches.push(Process::prefix(e, Process::var(d)));
    }
    defs.define(d, Process::external_choice_all(branches));
    Process::var(d)
}

/// Convenience: declare a recursive process `name = body(var)` in one step,
/// where `body` receives the self-reference.
pub fn recursive<F>(defs: &mut Definitions, name: &str, body: F) -> Process
where
    F: FnOnce(Process) -> Process,
{
    let d: DefId = defs.declare(name);
    let b = body(Process::var(d));
    defs.define(d, b);
    Process::var(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::counterexample::FailureKind;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    #[test]
    fn run_allows_everything_in_its_set() {
        let mut defs = Definitions::new();
        let set: EventSet = [e(0), e(1)].into_iter().collect();
        let spec = run(&mut defs, "RUN", &set);
        let impl_ = Process::prefix_chain([e(1), e(0), e(1)], Process::Stop);
        assert!(Checker::new()
            .trace_refinement(&spec, &impl_, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn never_catches_forbidden_event() {
        let mut defs = Definitions::new();
        let universe: EventSet = [e(0), e(1), e(2)].into_iter().collect();
        let forbidden = EventSet::singleton(e(2));
        let spec = never(&mut defs, "NEVER", &universe, &forbidden);
        let impl_ = Process::prefix_chain([e(0), e(2)], Process::Stop);
        let v = Checker::new()
            .trace_refinement(&spec, &impl_, &defs)
            .unwrap();
        assert_eq!(
            v.counterexample().unwrap().kind(),
            &FailureKind::TraceViolation { event: Some(e(2)) }
        );
    }

    #[test]
    fn chaos_refines_anything_trace_wise() {
        let mut defs = Definitions::new();
        let set: EventSet = [e(0), e(1)].into_iter().collect();
        let spec = chaos(&mut defs, "CHAOS", &set);
        let impl_ = Process::internal_choice(
            Process::prefix(e(0), Process::Stop),
            Process::prefix(e(1), Process::Stop),
        );
        let c = Checker::new();
        assert!(c.trace_refinement(&spec, &impl_, &defs).unwrap().is_pass());
        assert!(c
            .failures_refinement(&spec, &impl_, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn request_response_rejects_double_response() {
        let mut defs = Definitions::new();
        let spec = request_response(&mut defs, "SP02", e(0), e(1));
        let impl_ = Process::prefix_chain([e(0), e(1), e(1)], Process::Stop);
        let v = Checker::new()
            .trace_refinement(&spec, &impl_, &defs)
            .unwrap();
        assert!(!v.is_pass());
    }

    #[test]
    fn request_response_with_noise_allows_other_traffic() {
        let mut defs = Definitions::new();
        let other = EventSet::singleton(e(2));
        let spec = request_response_with_noise(&mut defs, "SP", e(0), e(1), &other);
        let impl_ = Process::prefix_chain([e(2), e(0), e(2), e(1), e(2)], Process::Stop);
        assert!(Checker::new()
            .trace_refinement(&spec, &impl_, &defs)
            .unwrap()
            .is_pass());
        // But a response without a request is still rejected.
        let bad = Process::prefix(e(1), Process::Stop);
        assert!(!Checker::new()
            .trace_refinement(&spec, &bad, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn precedes_enforces_ordering() {
        let mut defs = Definitions::new();
        let universe: EventSet = [e(0), e(1), e(2)].into_iter().collect();
        let first = EventSet::singleton(e(0));
        let then = EventSet::singleton(e(1));
        let spec = precedes(&mut defs, "PRE", &universe, &first, &then);
        // ok: a then b
        let good = Process::prefix_chain([e(0), e(1)], Process::Stop);
        assert!(Checker::new()
            .trace_refinement(&spec, &good, &defs)
            .unwrap()
            .is_pass());
        // ok: unrelated c first
        let noisy = Process::prefix_chain([e(2), e(0), e(1)], Process::Stop);
        assert!(Checker::new()
            .trace_refinement(&spec, &noisy, &defs)
            .unwrap()
            .is_pass());
        // bad: b before a
        let bad = Process::prefix_chain([e(1), e(0)], Process::Stop);
        assert!(!Checker::new()
            .trace_refinement(&spec, &bad, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn recursive_helper_ties_the_knot() {
        let mut defs = Definitions::new();
        let p = recursive(&mut defs, "LOOP", |me| Process::prefix(e(0), me));
        assert!(Checker::new().deadlock_free(&p, &defs).unwrap().is_pass());
    }
}

/// A discrete-time bounded-response property over a `tock`-timed alphabet
/// (§VII-B of the paper: untimed CSP extended with an explicit `tock`
/// event): after `request`, at most `max_tocks` clock ticks may pass before
/// `response`; `noise` events are unconstrained.
///
/// Checked in the traces model: an implementation that lets the clock tick
/// `max_tocks + 1` times while a request is outstanding performs a `tock`
/// the specification forbids, producing a counterexample ending in `tock`.
pub fn respond_within(
    defs: &mut Definitions,
    name: &str,
    request: EventId,
    response: EventId,
    tock: EventId,
    max_tocks: usize,
    noise: &EventSet,
) -> Process {
    let idle = defs.declare(&format!("{name}_idle"));
    // busy[k] = response still owed, k tocks of budget left.
    let busy: Vec<DefId> = (0..=max_tocks)
        .map(|k| defs.declare(&format!("{name}_busy{k}")))
        .collect();

    let mut idle_branches = vec![
        Process::prefix(request, Process::var(busy[max_tocks])),
        Process::prefix(tock, Process::var(idle)),
    ];
    idle_branches.extend(noise.iter().map(|e| Process::prefix(e, Process::var(idle))));
    defs.define(idle, Process::external_choice_all(idle_branches));

    for k in 0..=max_tocks {
        let mut branches = vec![
            Process::prefix(response, Process::var(idle)),
            // Further requests while busy keep the (older) deadline.
            Process::prefix(request, Process::var(busy[k])),
        ];
        if k > 0 {
            branches.push(Process::prefix(tock, Process::var(busy[k - 1])));
        }
        branches.extend(
            noise
                .iter()
                .map(|e| Process::prefix(e, Process::var(busy[k]))),
        );
        defs.define(busy[k], Process::external_choice_all(branches));
    }
    Process::var(idle)
}

#[cfg(test)]
mod timed_tests {
    use super::*;
    use crate::checker::Checker;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    fn spec(defs: &mut Definitions, budget: usize) -> Process {
        respond_within(defs, "RW", e(0), e(1), e(2), budget, &EventSet::empty())
    }

    #[test]
    fn response_within_budget_passes() {
        let mut defs = Definitions::new();
        let s = spec(&mut defs, 2);
        // req, tock, rsp — one tock used of two.
        let ok = Process::prefix_chain([e(0), e(2), e(1)], Process::Stop);
        assert!(Checker::new()
            .trace_refinement(&s, &ok, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn late_response_is_caught_at_the_tock_that_breaks_the_deadline() {
        let mut defs = Definitions::new();
        let s = spec(&mut defs, 2);
        let late = Process::prefix_chain([e(0), e(2), e(2), e(2), e(1)], Process::Stop);
        let v = Checker::new().trace_refinement(&s, &late, &defs).unwrap();
        let cex = v.counterexample().expect("three tocks exceed the budget");
        // The witness ends exactly when the deadline is broken.
        assert_eq!(cex.trace().len(), 3);
    }

    #[test]
    fn clock_runs_freely_while_idle() {
        let mut defs = Definitions::new();
        let s = spec(&mut defs, 1);
        let idle_ticking = Process::prefix_chain([e(2), e(2), e(2), e(0), e(1)], Process::Stop);
        assert!(Checker::new()
            .trace_refinement(&s, &idle_ticking, &defs)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn translated_timer_ecu_meets_its_deadline() {
        // The translator's tock model: an ECU that arms a timer on request
        // and responds when it fires must answer within one tock.
        let src = "
            variables { message rptSw rpt; message reqSw a; msTimer t; }
            on message reqSw { setTimer(t, 10); }
            on timer t { output(rpt); }
        ";
        let program = capl::parse(src).unwrap();
        let out = translator::Translator::new(translator::TranslateConfig::ecu("ECU"))
            .translate(&program)
            .unwrap();
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        let mut defs = loaded.definitions().clone();
        let req = loaded.alphabet().lookup("rec.reqSw").unwrap();
        let rsp = loaded.alphabet().lookup("send.rptSw").unwrap();
        let tock = loaded.alphabet().lookup("tock").unwrap();
        let s = respond_within(&mut defs, "RW", req, rsp, tock, 1, &EventSet::empty());
        let ecu = loaded.process("ECU_INIT").unwrap();
        let v = Checker::new().trace_refinement(&s, ecu, &defs).unwrap();
        assert!(
            v.is_pass(),
            "{:?}",
            v.counterexample()
                .map(|c| c.display(loaded.alphabet()).to_string())
        );
    }
}
