//! `fdrlite` — a refinement checker for CSP processes.
//!
//! This crate stands in for the FDR tool used by the paper (§IV-D). It offers
//! the checks the paper relies on, over the [`csp`] core:
//!
//! * **Trace refinement** (`SPEC ⊑T IMPL`): [`Checker::trace_refinement`],
//!   the check used for the paper's security properties (e.g. `SP02`).
//! * **Stable-failures refinement** (`SPEC ⊑F IMPL`):
//!   [`Checker::failures_refinement`], FDR's next semantic model, needed to
//!   detect a system that avoids insecure traces only by refusing to respond.
//! * **Deadlock freedom**: [`Checker::deadlock_free`].
//! * **Divergence freedom** (livelock): [`Checker::divergence_free`].
//! * **Determinism**: [`Checker::deterministic`] (nondeterminism is how
//!   information can leak in the CSP security literature).
//!
//! Failed checks come back as a [`Verdict::Fail`] carrying a
//! [`Counterexample`] — the message-sequence witness the paper feeds back to
//! software designers (Fig. 1).
//!
//! # Example
//!
//! Check the paper's §V-B integrity property against a faulty ECU that sends
//! a second, unsolicited report:
//!
//! ```
//! use csp::{Alphabet, Definitions, Process};
//! use fdrlite::{Checker, Verdict};
//!
//! let mut ab = Alphabet::new();
//! let req = ab.intern("rec.reqSw");
//! let rpt = ab.intern("send.rptSw");
//!
//! let mut defs = Definitions::new();
//! let sp02 = defs.declare("SP02");
//! defs.define(sp02, Process::prefix(req, Process::prefix(rpt, Process::var(sp02))));
//! let faulty = Process::prefix_chain([req, rpt, rpt], Process::Stop);
//!
//! let checker = Checker::new();
//! let verdict = checker.trace_refinement(&Process::var(sp02), &faulty, &defs)?;
//! match verdict {
//!     Verdict::Fail(cex) => {
//!         assert_eq!(cex.trace().display(&ab).to_string(), "⟨rec.reqSw, send.rptSw⟩");
//!     }
//!     other => panic!("the unsolicited report must be caught, got {other:?}"),
//! }
//! # Ok::<(), fdrlite::CheckError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod counterexample;
mod error;
mod interrupt;
mod normalise;
mod stats;
mod store;

pub mod hypertrace;
pub mod parallel;
pub mod persist;
pub mod properties;
pub mod supervisor;

pub use checker::{CheckOptions, Checker, CheckerBuilder, RefinementModel};
pub use counterexample::{BudgetReason, Counterexample, FailureKind, Inconclusive, Verdict};
pub use error::CheckError;
pub use interrupt::{clear_interrupt, interrupt_requested, request_interrupt};
pub use normalise::{Acceptance, AcceptanceId, AcceptanceView, NormNodeId, NormalisedLts};
pub use persist::{CheckId, PersistConfig, PersistentCache, ResumePolicy, StorageFaultHook};
pub use stats::CheckStats;
pub use store::{CompiledModel, ModelStore};
