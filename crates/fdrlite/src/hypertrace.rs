//! Hypertrace conformance: many traces, one normal-form walk.
//!
//! Checking `SPEC ⊑T ⟨e₁ … eₙ⟩ → STOP` for thousands of observed traces one
//! at a time re-explores every shared prefix once per trace. Merging the
//! corpus into a **prefix trie** first turns those N linear product walks
//! into a single walk of a DAG: each trie node is visited exactly once,
//! paired with the unique normal-form node the specification reaches after
//! the node's path (the spec side is deterministic by construction, so there
//! is nothing to search — conformance of a linear trace is a lookup chain
//! through [`NormalisedLts::after`]).
//!
//! Per-trace verdicts are recovered from the trie: every ingested trace
//! tags the node its last event reaches, and the node's walk state — still
//! inside the spec, or refuted at some ancestor edge — *is* the verdict.
//! A refuted trace's counterexample is the refusing edge's path prefix plus
//! the refused event, exactly what the product engine reports for the
//! equivalent `⟨trace⟩ → STOP` check (the linear implementation has a
//! unique path, so the engine's shortest witness is that prefix).
//!
//! The walk parallelises by sharding disjoint subtrees over a work-stealing
//! pool: a short breadth-first prefix walk fans the trie out into
//! independent `(trie node, walk state)` tasks, and because a node's verdict
//! is a pure function of the trie and the normal form, the merged result is
//! bit-identical at every thread count.

use std::collections::BTreeMap;
use std::thread;

use crossbeam::deque::{Injector, Steal};
use csp::{EventId, Trace};

use crate::counterexample::{Counterexample, FailureKind, Verdict};
use crate::normalise::{NormNodeId, NormalisedLts};

/// A prefix trie over event sequences: the *hypertrace* of an ingested
/// corpus. Traces sharing a prefix share the trie path for it, so the
/// number of edges is the number of **distinct** prefixes, not the sum of
/// trace lengths.
///
/// Each ingested trace carries a caller-chosen `u32` tag (typically its
/// ingest index); [`check`] reports verdicts keyed by tag.
#[derive(Debug, Default)]
pub struct TraceTrie {
    nodes: Vec<TrieNode>,
    traces: u64,
    total_events: u64,
}

#[derive(Debug)]
struct TrieNode {
    /// Parent node and the event labelling the edge from it; `None` for
    /// the root.
    parent: Option<(u32, EventId)>,
    children: BTreeMap<EventId, u32>,
    /// Tags of the ingested traces whose last event reaches this node.
    terminals: Vec<u32>,
}

impl TrieNode {
    fn new(parent: Option<(u32, EventId)>) -> TrieNode {
        TrieNode {
            parent,
            children: BTreeMap::new(),
            terminals: Vec::new(),
        }
    }
}

impl TraceTrie {
    /// An empty trie (a lone root).
    pub fn new() -> TraceTrie {
        TraceTrie {
            nodes: vec![TrieNode::new(None)],
            traces: 0,
            total_events: 0,
        }
    }

    /// Ingest one trace under `tag`. Tags are opaque to the trie but should
    /// be unique per trace so [`check`] verdicts can be told apart.
    pub fn insert(&mut self, events: &[EventId], tag: u32) {
        let mut node = 0u32;
        for &e in events {
            node = match self.nodes[node as usize].children.get(&e) {
                Some(&child) => child,
                None => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::new(Some((node, e))));
                    self.nodes[node as usize].children.insert(e, child);
                    child
                }
            };
        }
        self.nodes[node as usize].terminals.push(tag);
        self.traces += 1;
        self.total_events += events.len() as u64;
    }

    /// Number of ingested traces.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Sum of the lengths of all ingested traces.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Number of trie nodes, including the root. `node_count() - 1` is the
    /// number of distinct prefixes actually walked.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Prefix-sharing factor: ingested events per distinct trie edge.
    /// `1.0` means no two traces share a prefix; `k` means the walk visits
    /// each distinct prefix once where the per-trace loop would visit it
    /// `k` times on average. `1.0` by convention for an event-free corpus.
    pub fn dedup_ratio(&self) -> f64 {
        let edges = (self.nodes.len() - 1) as f64;
        if edges == 0.0 {
            1.0
        } else {
            self.total_events as f64 / edges
        }
    }

    /// The event path from the root to `node`.
    fn path(&self, mut node: u32) -> Vec<EventId> {
        let mut events = Vec::new();
        while let Some((parent, e)) = self.nodes[node as usize].parent {
            events.push(e);
            node = parent;
        }
        events.reverse();
        events
    }
}

/// The walk state a trie node inherits from its path: either the spec's
/// normal-form node after the path, or the first refusal along it.
#[derive(Clone, Copy)]
enum WalkState {
    /// The spec allows the whole path and sits at this normal-form node.
    Inside(NormNodeId),
    /// The spec refused `event` at the end of `prefix`'s path; every
    /// descendant inherits this first violation.
    Refused { prefix: u32, event: EventId },
}

/// Check every ingested trace of `trie` against `norm` in one DAG walk.
///
/// Returns `(tag, verdict)` pairs sorted by tag: [`Verdict::Pass`] when the
/// trace is a trace of the specification, [`Verdict::Fail`] with a
/// [`FailureKind::TraceViolation`] counterexample otherwise (the witness
/// trace is the accepted prefix, the offending event the first one the
/// spec refuses). The walk is bounded by the trie, so no verdict is ever
/// [`Verdict::Inconclusive`].
///
/// With `threads > 1` disjoint subtrees are sharded over a work-stealing
/// pool; verdicts are bit-identical to the serial walk for any thread
/// count.
pub fn check(norm: &NormalisedLts, trie: &TraceTrie, threads: usize) -> Vec<(u32, Verdict)> {
    let mut verdicts: Vec<(u32, Verdict)> = Vec::with_capacity(trie.traces as usize);

    // Breadth-first prefix walk: resolve verdicts near the root serially
    // while fanning the frontier out into enough independent subtree tasks
    // to keep every worker busy.
    let fanout_target = if threads > 1 { threads * 8 } else { usize::MAX };
    let mut frontier: Vec<(u32, WalkState)> = vec![(0, WalkState::Inside(norm.initial()))];
    let mut next: Vec<(u32, WalkState)> = Vec::new();
    while !frontier.is_empty() && frontier.len() < fanout_target {
        for &(node, state) in &frontier {
            resolve_terminals(trie, node, state, &mut verdicts);
            expand_children(norm, trie, node, state, &mut next);
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }

    if threads > 1 && !frontier.is_empty() {
        let injector: Injector<(u32, WalkState)> = Injector::new();
        for task in frontier {
            injector.push(task);
        }
        let worker_verdicts = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let injector = &injector;
                    scope.spawn(move || {
                        let mut local: Vec<(u32, Verdict)> = Vec::new();
                        let mut stack: Vec<(u32, WalkState)> = Vec::new();
                        loop {
                            match injector.steal() {
                                Steal::Success(task) => {
                                    stack.push(task);
                                    while let Some((node, state)) = stack.pop() {
                                        resolve_terminals(trie, node, state, &mut local);
                                        expand_children(norm, trie, node, state, &mut stack);
                                    }
                                }
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("hypertrace worker panicked"))
                .collect::<Vec<_>>()
        });
        for local in worker_verdicts {
            verdicts.extend(local);
        }
    } else {
        // Serial tail: `frontier` is empty unless `threads == 1` stopped
        // the loop above before fan-out (fanout_target == usize::MAX keeps
        // looping until the frontier drains, so this is a no-op there).
        let mut stack = frontier;
        while let Some((node, state)) = stack.pop() {
            resolve_terminals(trie, node, state, &mut verdicts);
            expand_children(norm, trie, node, state, &mut stack);
        }
    }

    // A trace's verdict is a pure function of the trie and the normal form,
    // so sorting by tag makes the merged output independent of scheduling.
    verdicts.sort_unstable_by_key(|&(tag, _)| tag);
    verdicts
}

/// Emit the verdicts of the traces ending at `node`.
fn resolve_terminals(trie: &TraceTrie, node: u32, state: WalkState, out: &mut Vec<(u32, Verdict)>) {
    let terminals = &trie.nodes[node as usize].terminals;
    if terminals.is_empty() {
        return;
    }
    let verdict = match state {
        WalkState::Inside(_) => Verdict::Pass,
        WalkState::Refused { prefix, event } => Verdict::Fail(Counterexample::new(
            Trace::from_events(trie.path(prefix)),
            FailureKind::TraceViolation { event: Some(event) },
        )),
    };
    for &tag in terminals {
        out.push((tag, verdict.clone()));
    }
}

/// Push `node`'s children with their inherited walk states.
fn expand_children(
    norm: &NormalisedLts,
    trie: &TraceTrie,
    node: u32,
    state: WalkState,
    out: &mut Vec<(u32, WalkState)>,
) {
    for (&event, &child) in &trie.nodes[node as usize].children {
        let child_state = match state {
            WalkState::Inside(at) => match norm.after(at, event) {
                Some(next) => WalkState::Inside(next),
                None => WalkState::Refused {
                    prefix: node,
                    event,
                },
            },
            refused @ WalkState::Refused { .. } => refused,
        };
        out.push((child, child_state));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp::{Alphabet, Lts, Process};

    /// `SPEC = a -> b -> SPEC`, normalised.
    fn spec() -> (NormalisedLts, EventId, EventId) {
        let mut alphabet = Alphabet::new();
        let a = alphabet.intern("a");
        let b = alphabet.intern("b");
        let defs = csp::Definitions::new();
        let p = Process::prefix_chain(vec![a, b], Process::Stop);
        // A finite chain suffices for the unit tests: a -> b -> STOP.
        let lts = Lts::build(p, &defs, 100).unwrap();
        let norm = NormalisedLts::build(&lts, 100).unwrap();
        (norm, a, b)
    }

    #[test]
    fn empty_trace_passes_and_shares_nothing() {
        let (norm, _, _) = spec();
        let mut trie = TraceTrie::new();
        trie.insert(&[], 0);
        assert_eq!(trie.dedup_ratio(), 1.0);
        let verdicts = check(&norm, &trie, 1);
        assert_eq!(verdicts, vec![(0, Verdict::Pass)]);
    }

    #[test]
    fn shared_prefixes_collapse_and_verdicts_split() {
        let (norm, a, b) = spec();
        let mut trie = TraceTrie::new();
        trie.insert(&[a], 0); // conformant prefix
        trie.insert(&[a, b], 1); // conformant
        trie.insert(&[a, a], 2); // refused: after ⟨a⟩ only b is allowed
        trie.insert(&[b], 3); // refused immediately
        assert_eq!(trie.traces(), 4);
        assert_eq!(trie.total_events(), 6);
        // Distinct prefixes: a, ab, aa, b — 4 edges for 6 ingested events.
        assert_eq!(trie.node_count(), 5);
        assert!((trie.dedup_ratio() - 1.5).abs() < 1e-9);

        let verdicts = check(&norm, &trie, 1);
        assert_eq!(verdicts.len(), 4);
        assert_eq!(verdicts[0].1, Verdict::Pass);
        assert_eq!(verdicts[1].1, Verdict::Pass);
        match &verdicts[2].1 {
            Verdict::Fail(cex) => {
                assert_eq!(cex.trace().len(), 1, "accepted prefix is ⟨a⟩");
                assert_eq!(cex.kind(), &FailureKind::TraceViolation { event: Some(a) });
            }
            other => panic!("expected refusal, got {other:?}"),
        }
        match &verdicts[3].1 {
            Verdict::Fail(cex) => {
                assert!(cex.trace().is_empty(), "refused at the very first event");
                assert_eq!(cex.kind(), &FailureKind::TraceViolation { event: Some(b) });
            }
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn descendants_inherit_the_first_refusal() {
        let (norm, a, b) = spec();
        let mut trie = TraceTrie::new();
        // Refused at index 1 (a after a); the longer trace must report the
        // same first violation, not a later one.
        trie.insert(&[a, a, b, b], 7);
        let verdicts = check(&norm, &trie, 1);
        match &verdicts[0].1 {
            Verdict::Fail(cex) => {
                assert_eq!(cex.trace().len(), 1);
                assert_eq!(cex.kind(), &FailureKind::TraceViolation { event: Some(a) });
            }
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn parallel_walk_is_bit_identical_to_serial() {
        let (norm, a, b) = spec();
        let mut trie = TraceTrie::new();
        let mut tag = 0u32;
        // Enough distinct subtrees to actually fan out at 8 threads.
        for first in [a, b] {
            for second in [a, b] {
                for third in [a, b] {
                    for len in 0..4usize {
                        let events = [first, second, third];
                        trie.insert(&events[..len.min(3)], tag);
                        tag += 1;
                    }
                }
            }
        }
        let serial = check(&norm, &trie, 1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, check(&norm, &trie, threads), "threads={threads}");
        }
    }
}
